"""Repo-root pytest hooks shared by ``tests/`` and ``benchmarks/``."""

import importlib.util
import signal
import threading

import pytest

# -- per-test timeout fallback ------------------------------------------------
#
# pyproject.toml sets ``timeout`` for pytest-timeout; when that plugin
# is not installed (minimal environments), register the ini option
# ourselves and enforce it with a SIGALRM-based fallback so a hung test
# still fails instead of wedging the suite.

_HAS_TIMEOUT_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    if not _HAS_TIMEOUT_PLUGIN:
        parser.addini("timeout",
                      "per-test timeout in seconds (SIGALRM fallback)")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    limit = 0.0
    if not _HAS_TIMEOUT_PLUGIN:
        raw = item.config.getini("timeout")
        limit = float(raw) if raw else 0.0
    usable = (limit > 0
              and hasattr(signal, "SIGALRM")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:.0f}s fallback timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
