"""Tests for the event bus."""

import pytest

from repro.core.events import (
    DEFAULT_HISTORY_LIMIT,
    AnomalyEvent,
    CorrectableErrorEvent,
    CrashEvent,
    Event,
    EventBus,
    SensorEvent,
)


def ce(t=0.0, component="core0"):
    return CorrectableErrorEvent(timestamp=t, source="test",
                                 component=component)


class TestRouting:
    def test_exact_type_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe(CorrectableErrorEvent, seen.append)
        bus.publish(ce())
        bus.publish(CrashEvent(timestamp=1.0, source="test"))
        assert len(seen) == 1
        assert isinstance(seen[0], CorrectableErrorEvent)

    def test_base_class_subscription_sees_subclasses(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Event, seen.append)
        bus.publish(ce())
        bus.publish(SensorEvent(timestamp=1.0, source="t", sensor="temp",
                                value=50.0))
        assert len(seen) == 2

    def test_publish_returns_delivery_count(self):
        bus = EventBus()
        bus.subscribe(Event, lambda e: None)
        bus.subscribe(CorrectableErrorEvent, lambda e: None)
        assert bus.publish(ce()) == 2

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe(CorrectableErrorEvent, seen.append)
        bus.publish(ce())
        unsub()
        bus.publish(ce())
        assert len(seen) == 1

    def test_unsubscribe_twice_is_harmless(self):
        bus = EventBus()
        unsub = bus.subscribe(Event, lambda e: None)
        unsub()
        unsub()

    def test_handlers_run_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(CorrectableErrorEvent, lambda e: order.append(1))
        bus.subscribe(CorrectableErrorEvent, lambda e: order.append(2))
        bus.publish(ce())
        assert order == [1, 2]


class TestHistory:
    def test_history_off_by_default(self):
        bus = EventBus()
        bus.publish(ce())
        assert bus.history == []

    def test_history_retains_events(self):
        bus = EventBus()
        bus.keep_history()
        bus.publish(ce(t=1.0))
        bus.publish(ce(t=2.0))
        assert [e.timestamp for e in bus.history] == [1.0, 2.0]

    def test_history_limit_trims_oldest(self):
        bus = EventBus()
        bus.keep_history(limit=2)
        for t in range(5):
            bus.publish(ce(t=float(t)))
        assert [e.timestamp for e in bus.history] == [3.0, 4.0]

    def test_history_bounded_by_default(self):
        bus = EventBus()
        bus.keep_history()
        for t in range(DEFAULT_HISTORY_LIMIT + 10):
            bus.publish(ce(t=float(t)))
        assert len(bus.history) == DEFAULT_HISTORY_LIMIT
        assert bus.history[0].timestamp == 10.0

    def test_unlimited_history_keeps_everything(self):
        bus = EventBus()
        bus.keep_history(unlimited=True)
        for t in range(DEFAULT_HISTORY_LIMIT + 10):
            bus.publish(ce(t=float(t)))
        assert len(bus.history) == DEFAULT_HISTORY_LIMIT + 10

    def test_limit_and_unlimited_conflict(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.keep_history(limit=5, unlimited=True)

    def test_limit_must_be_positive(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.keep_history(limit=0)

    def test_clear_drops_everything(self):
        bus = EventBus()
        bus.keep_history()
        seen = []
        bus.subscribe(Event, seen.append)
        bus.publish(ce())
        bus.clear()
        bus.publish(ce())
        assert len(seen) == 1
        assert bus.history == []


class TestEventTypes:
    def test_events_are_frozen(self):
        event = ce()
        with pytest.raises(AttributeError):
            event.component = "core1"

    def test_anomaly_defaults(self):
        event = AnomalyEvent(timestamp=0.0, source="healthlog",
                             description="errors above threshold")
        assert event.severity == "warning"
