"""Tests for the vectorized fleet campaign and its executors."""

import pytest

from repro.core.exceptions import ConfigurationError, PersistenceError
from repro.fleet import (
    FleetCampaign,
    FleetCampaignConfig,
    FleetConfig,
    run_fleet_campaign,
)
from repro.persistence.snapshot import canonical_json


def small_config(**overrides):
    fleet = overrides.pop("fleet", None) or FleetConfig(
        n_nodes=overrides.pop("n_nodes", 8),
        seed=overrides.pop("seed", 0))
    defaults = dict(fleet=fleet, duration_s=1800.0,
                    arrivals_per_hour=240.0, mean_lifetime_s=600.0,
                    telemetry_every_steps=5)
    defaults.update(overrides)
    return FleetCampaignConfig(**defaults)


def report_json(**kwargs):
    jobs = kwargs.pop("jobs", 1)
    config = kwargs.pop("config", None) or small_config(**kwargs)
    return canonical_json(run_fleet_campaign(config, jobs=jobs))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_config(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            small_config(mean_lifetime_s=0.0)
        with pytest.raises(ConfigurationError):
            small_config(stepper="jit")
        with pytest.raises(ConfigurationError):
            small_config(max_vcpus=99)
        with pytest.raises(ConfigurationError):
            small_config(shards=9)  # more shards than nodes

    def test_round_trip_and_report_echo(self):
        config = small_config(shards=2, stepper="scalar")
        assert FleetCampaignConfig.from_dict(config.as_dict()) == config
        echo = config.as_report_dict()
        assert "shards" not in echo and "stepper" not in echo

    def test_n_steps(self):
        assert small_config(duration_s=1800.0).n_steps == 30


class TestExecutionInvariance:
    def test_report_invariant_to_shards_jobs_stepper(self):
        baseline = report_json()
        assert report_json(config=small_config(shards=3)) == baseline
        assert report_json(config=small_config(stepper="scalar")) \
            == baseline
        assert report_json(config=small_config(shards=4),
                           jobs=2) == baseline

    def test_report_depends_on_seed_and_size(self):
        baseline = report_json()
        assert report_json(seed=1) != baseline
        assert report_json(n_nodes=6) != baseline


class TestCampaignLoop:
    def test_totals_and_series(self):
        report = run_fleet_campaign(small_config())
        totals = report["totals"]
        assert totals["steps"] == 30
        assert totals["admitted"] > 0
        assert 0 < totals["completed"] <= totals["admitted"]
        assert totals["active_vcpus_final"] >= 0
        assert totals["energy_j"] > 0
        assert len(report["series"]) == 6
        ep = report["energy_proportionality"]
        assert 0.0 < ep["dynamic_range"] < 1.0
        assert ep["proportionality_index"] is not None
        assert "report_sha256" in report

    def test_rejections_under_overload(self):
        config = small_config(n_nodes=1, arrivals_per_hour=2000.0,
                              mean_lifetime_s=7200.0)
        report = run_fleet_campaign(config)
        assert report["totals"]["rejected"] > 0

    def test_jobs_validation(self):
        with pytest.raises(ConfigurationError):
            FleetCampaign(small_config(), jobs=0)


class TestSnapshotResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        config = small_config()
        baseline = canonical_json(run_fleet_campaign(config))

        first = FleetCampaign(config, snapshot_dir=tmp_path)
        first.run(until_step=13)
        first.take_snapshot()
        first.close()

        second = FleetCampaign(config, snapshot_dir=tmp_path)
        assert second.resume() is True
        assert second.step_index == 13
        second.run()
        resumed = canonical_json(second.report())
        second.close()
        assert resumed == baseline

    def test_resume_across_shard_counts(self, tmp_path):
        # Execution knobs may change across a resume; the report not.
        config = small_config(shards=2)
        first = FleetCampaign(config, snapshot_dir=tmp_path)
        first.run(until_step=10)
        first.take_snapshot()
        first.close()

        second = FleetCampaign(small_config(shards=4),
                               snapshot_dir=tmp_path)
        assert second.resume() is True
        second.run()
        resumed = canonical_json(second.report())
        second.close()
        assert resumed == canonical_json(
            run_fleet_campaign(small_config()))

    def test_resume_rejects_different_campaign(self, tmp_path):
        first = FleetCampaign(small_config(), snapshot_dir=tmp_path)
        first.run(until_step=5)
        first.take_snapshot()
        first.close()

        other = FleetCampaign(small_config(arrivals_per_hour=60.0),
                              snapshot_dir=tmp_path)
        with pytest.raises(PersistenceError):
            other.resume()
        other.close()

    def test_resume_without_snapshot_starts_fresh(self, tmp_path):
        campaign = FleetCampaign(small_config(), snapshot_dir=tmp_path)
        assert campaign.resume() is False
        campaign.close()

    def test_periodic_snapshots_written(self, tmp_path):
        campaign = FleetCampaign(small_config(), snapshot_dir=tmp_path,
                                 snapshot_every_steps=10)
        campaign.run()
        campaign.close()
        resumer = FleetCampaign(small_config(), snapshot_dir=tmp_path)
        assert resumer.resume() is True
        assert resumer.step_index == 30
        resumer.close()

    def test_snapshot_requires_store(self):
        campaign = FleetCampaign(small_config())
        with pytest.raises(PersistenceError):
            campaign.take_snapshot()
        with pytest.raises(PersistenceError):
            campaign.resume()
        campaign.close()
