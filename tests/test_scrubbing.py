"""Tests for the ECC exposure (static weak cells + transients) model."""

import math

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.dram import Dimm, MemoryDomain
from repro.hardware.scrubbing import (
    EccExposureModel,
    ScrubPolicy,
    expected_static_pairs,
    scrub_policy_table,
    transient_rate_per_bit_s,
)

YEAR_S = 365.25 * 24 * 3600.0


@pytest.fixture
def relaxed_domain():
    domain = MemoryDomain("d0", [Dimm(dimm_id=0)], seed=1)
    domain.set_refresh_interval(5.0)   # the paper's 78x point, BER ~1e-9
    return domain


class TestStaticPairing:
    def test_small_populations_never_pair(self):
        assert expected_static_pairs(0, 10 ** 10) == 0.0
        assert expected_static_pairs(1, 10 ** 10) == 0.0

    def test_pairs_grow_quadratically(self):
        small = expected_static_pairs(100, 10 ** 11)
        large = expected_static_pairs(200, 10 ** 11)
        assert large / small == pytest.approx(199 / 49.5, rel=0.05)

    def test_paper_point_is_statically_safe(self, relaxed_domain):
        """At BER 1e-9 over 8 GB: ~69 weak cells, ~2e-6 expected dead
        words — the pairing argument behind 'ECC can handle it'."""
        assessment = EccExposureModel().assess(relaxed_domain)
        assert 30 < assessment.weak_cells < 150
        assert assessment.static_pair_words < 1e-4
        assert assessment.statically_safe

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_static_pairs(-1, 100)
        with pytest.raises(ConfigurationError):
            expected_static_pairs(10, 0)


class TestMaxSafeBer:
    def test_sits_between_measured_and_quoted_capability(self,
                                                         relaxed_domain):
        """The domain-level static-BER ceiling lies orders above the
        5 s point's 1e-9 and below the per-word 1e-6 quote."""
        ceiling = EccExposureModel().max_safe_ber(
            relaxed_domain.capacity_bits)
        assert 1e-9 < ceiling < 1e-6

    def test_tighter_budget_lowers_ceiling(self, relaxed_domain):
        model = EccExposureModel()
        loose = model.max_safe_ber(relaxed_domain.capacity_bits, 0.1)
        tight = model.max_safe_ber(relaxed_domain.capacity_bits, 0.001)
        assert tight < loose

    def test_validation(self, relaxed_domain):
        with pytest.raises(ConfigurationError):
            EccExposureModel().max_safe_ber(0)
        with pytest.raises(ConfigurationError):
            EccExposureModel().max_safe_ber(100, max_expected_pairs=0.0)


class TestTransients:
    def test_fit_conversion(self):
        rate = transient_rate_per_bit_s(25.0)
        # 25 FIT/Mbit = 25 / (1e9 h * 2^20 bits) per bit.
        assert rate == pytest.approx(
            25.0 / (1e9 * 3600.0 * 1024 * 1024), rel=1e-9)
        with pytest.raises(ConfigurationError):
            transient_rate_per_bit_s(-1.0)

    def test_mttue_beyond_server_lifetime(self, relaxed_domain):
        """The paper's relaxed point survives: MTTUE >> 5 years even
        with daily scrubbing."""
        model = EccExposureModel(ScrubPolicy(scrub_interval_s=86400.0))
        assessment = model.assess(relaxed_domain)
        assert assessment.mean_time_to_ue_s() > 100 * YEAR_S

    def test_page_retirement_removes_static_term(self, relaxed_domain):
        base = EccExposureModel(
            ScrubPolicy(retire_weak_pages=False)).assess(relaxed_domain)
        retired = EccExposureModel(
            ScrubPolicy(retire_weak_pages=True)).assess(relaxed_domain)
        assert base.transient_on_static_rate_s > 0
        assert retired.transient_on_static_rate_s == 0.0
        assert retired.total_ue_rate_s < base.total_ue_rate_s

    def test_longer_scrub_window_raises_pair_rate(self, relaxed_domain):
        fast = EccExposureModel(
            ScrubPolicy(scrub_interval_s=600.0)).assess(relaxed_domain)
        slow = EccExposureModel(
            ScrubPolicy(scrub_interval_s=604800.0)).assess(relaxed_domain)
        assert slow.transient_pair_rate_s > fast.transient_pair_rate_s

    def test_nominal_refresh_domain_has_no_weak_cells(self):
        domain = MemoryDomain("d0", [Dimm(dimm_id=0)], seed=1)
        assessment = EccExposureModel().assess(domain)
        assert assessment.weak_cells < 1e-6
        assert assessment.transient_on_static_rate_s < 1e-20


class TestPolicyTable:
    def test_rows_ordered_by_exposure(self, relaxed_domain):
        rows = scrub_policy_table(relaxed_domain)
        assert len(rows) == 4
        ue_rates = [rate for _, rate, _ in rows]
        assert ue_rates == sorted(ue_rates)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            ScrubPolicy(scrub_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ScrubPolicy(bandwidth_overhead=1.0)
