"""Tests for the telemetry side-channel attack toolkit."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.security.sidechannel import (
    PhaseInferenceAttack,
    attack_accuracy,
    threshold_classify,
)


class TestClassifier:
    def test_separates_bimodal_trace(self):
        rng = np.random.default_rng(0)
        low = rng.normal(10.0, 0.5, 50)
        high = rng.normal(30.0, 0.5, 50)
        samples = list(low) + list(high)
        labels = threshold_classify(samples)
        assert set(labels[:50]) == {0}
        assert set(labels[50:]) == {1}

    def test_unimodal_trace_splits_arbitrarily(self):
        rng = np.random.default_rng(1)
        samples = list(rng.normal(20.0, 0.1, 100))
        labels = threshold_classify(samples)
        # No structure to find: both labels present, roughly balanced
        # around the noise midpoint.
        assert 0 in labels and 1 in labels

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            threshold_classify([1.0])


class TestAccuracy:
    def test_perfect_recovery(self):
        assert attack_accuracy([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0

    def test_label_invariance(self):
        assert attack_accuracy([1, 1, 0, 0], [0, 0, 1, 1]) == 1.0

    def test_chance_level(self):
        assert attack_accuracy([0, 1, 0, 1], [0, 0, 1, 1]) == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            attack_accuracy([0], [0, 1])


class TestAttack:
    def test_recovers_clean_signal(self):
        attack = PhaseInferenceAttack("test")
        rng = np.random.default_rng(2)
        for i in range(100):
            phase = 1 if (i // 10) % 2 else 0
            signal = 30.0 if phase else 12.0
            attack.observe(signal + rng.normal(0, 0.5), phase)
        result = attack.run()
        assert result.accuracy > 0.95
        assert result.effective
        assert result.n_samples == 100

    def test_flat_signal_is_chance(self):
        attack = PhaseInferenceAttack("flat")
        rng = np.random.default_rng(3)
        for i in range(200):
            phase = 1 if (i // 10) % 2 else 0
            attack.observe(20.0 + rng.normal(0, 0.01), phase)
        result = attack.run()
        assert result.accuracy < 0.7
        assert not result.effective

    def test_needs_enough_samples(self):
        attack = PhaseInferenceAttack("x")
        attack.observe(1.0, 0)
        with pytest.raises(ConfigurationError):
            attack.run()

    def test_truth_must_be_binary(self):
        attack = PhaseInferenceAttack("x")
        with pytest.raises(ConfigurationError):
            attack.observe(1.0, 2)
