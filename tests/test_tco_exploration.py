"""Tests for the TCO design-space exploration."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.tco import (
    AGGRESSIVE_EOP_POLICY,
    BASELINE_ARM_SERVER,
    CONSERVATIVE_POLICY,
    DatacenterSpec,
    DesignSpaceExplorer,
    EDGE_SITE,
    MODERATE_EOP_POLICY,
    MarginPolicy,
    cheapest_meeting_availability,
    cost_availability_pareto,
)


@pytest.fixture
def explorer():
    return DesignSpaceExplorer(required_capacity_units=1000.0,
                               capacity_per_server=10.0)


@pytest.fixture
def design_space(explorer):
    return explorer.explore(
        sites=(DatacenterSpec(), EDGE_SITE),
        servers=(BASELINE_ARM_SERVER,),
    )


class TestPricing:
    def test_server_count_covers_capacity(self, explorer):
        point = explorer.price(DatacenterSpec(), BASELINE_ARM_SERVER,
                               CONSERVATIVE_POLICY)
        assert point.n_servers == 100  # 1000 units / 10 per server

    def test_failure_overhead_needs_spare_servers(self, explorer):
        aggressive = explorer.price(DatacenterSpec(), BASELINE_ARM_SERVER,
                                    AGGRESSIVE_EOP_POLICY)
        conservative = explorer.price(DatacenterSpec(),
                                      BASELINE_ARM_SERVER,
                                      CONSERVATIVE_POLICY)
        assert aggressive.n_servers > conservative.n_servers

    def test_eop_policies_cut_cost_despite_spares(self, explorer):
        conservative = explorer.price(DatacenterSpec(),
                                      BASELINE_ARM_SERVER,
                                      CONSERVATIVE_POLICY)
        moderate = explorer.price(DatacenterSpec(), BASELINE_ARM_SERVER,
                                  MODERATE_EOP_POLICY)
        assert moderate.tco_per_capacity_usd < \
            conservative.tco_per_capacity_usd

    def test_aggression_trades_availability(self, explorer):
        conservative = explorer.price(DatacenterSpec(),
                                      BASELINE_ARM_SERVER,
                                      CONSERVATIVE_POLICY)
        aggressive = explorer.price(DatacenterSpec(), BASELINE_ARM_SERVER,
                                    AGGRESSIVE_EOP_POLICY)
        assert aggressive.effective_availability < \
            conservative.effective_availability


class TestExploration:
    def test_full_grid_priced(self, design_space):
        assert len(design_space) == 2 * 1 * 3  # sites x servers x policies

    def test_empty_axis_rejected(self, explorer):
        with pytest.raises(ConfigurationError):
            explorer.explore(sites=(), servers=(BASELINE_ARM_SERVER,))

    def test_pareto_front_non_dominated(self, design_space):
        front = cost_availability_pareto(design_space)
        assert front
        for a in front:
            assert not any(b.dominates(a) for b in front)

    def test_pareto_front_sorted_by_cost(self, design_space):
        front = cost_availability_pareto(design_space)
        costs = [p.tco_per_capacity_usd for p in front]
        assert costs == sorted(costs)

    def test_cheapest_meeting_availability(self, design_space):
        strict = cheapest_meeting_availability(design_space, 0.9998)
        loose = cheapest_meeting_availability(design_space, 0.99)
        assert strict.effective_availability >= 0.9998
        assert loose.tco_per_capacity_usd <= strict.tco_per_capacity_usd

    def test_impossible_availability_rejected(self, design_space):
        with pytest.raises(ConfigurationError):
            cheapest_meeting_availability(design_space, 0.9999999)


class TestPolicyValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            MarginPolicy("x", energy_gain=0.5, failure_overhead=0.0,
                         recovered_yield=0.9)
        with pytest.raises(ConfigurationError):
            MarginPolicy("x", energy_gain=2.0, failure_overhead=0.6,
                         recovered_yield=0.9)

    def test_bad_explorer_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignSpaceExplorer(required_capacity_units=0.0)
