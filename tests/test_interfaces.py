"""Tests for the layered monitoring interface (innovation iv)."""

import pytest

from repro.core.clock import SimClock
from repro.core.events import EventBus
from repro.core.interfaces import (
    AccessDenied,
    MonitoringInterface,
    Scope,
)
from repro.daemons.healthlog import HealthLog
from repro.hardware import build_uniserver_node


@pytest.fixture
def interface():
    clock = SimClock()
    bus = EventBus()
    platform = build_uniserver_node()
    healthlog = HealthLog(platform, bus, clock)
    return MonitoringInterface(platform, healthlog)


class TestHostScope:
    def test_info_vector_host_only(self, interface):
        vector = interface.info_vector(Scope.HOST)
        assert vector.node == interface.platform.name
        for scope in (Scope.CLOUD, Scope.GUEST):
            with pytest.raises(AccessDenied):
                interface.info_vector(scope)

    def test_raw_sensor_host_only(self, interface):
        reading = interface.raw_sensor(Scope.HOST, 0)
        assert set(reading) == {"voltage_v", "temperature_c", "power_w",
                                "frequency_hz"}
        with pytest.raises(AccessDenied):
            interface.raw_sensor(Scope.GUEST, 0)


class TestCloudScope:
    def test_node_status_for_cloud(self, interface):
        status = interface.node_status(Scope.CLOUD)
        assert status.mean_voltage_fraction == pytest.approx(1.0)
        assert status.worst_refresh_relaxation == pytest.approx(1.0)

    def test_node_status_denied_to_guests(self, interface):
        with pytest.raises(AccessDenied):
            interface.node_status(Scope.GUEST)

    def test_node_status_reflects_relaxation(self, interface):
        interface.platform.memory.domain("channel1")\
            .set_refresh_interval(1.5)
        status = interface.node_status(Scope.CLOUD)
        assert status.worst_refresh_relaxation == pytest.approx(
            1.5 / 0.064, rel=0.01)


class TestGuestScope:
    def test_guest_telemetry_is_quantised(self, interface):
        telemetry = interface.guest_telemetry(Scope.GUEST)
        bucket = MonitoringInterface.GUEST_POWER_BUCKET_W
        band = MonitoringInterface.GUEST_TEMPERATURE_BAND_C
        assert telemetry.power_bucket_w % bucket == 0
        assert telemetry.temperature_band_c % band == 0

    def test_guest_telemetry_hides_precision(self, interface):
        """Quantisation is coarser than the raw sensor resolution."""
        raw = interface.raw_sensor(Scope.HOST, 0)
        telemetry = interface.guest_telemetry(Scope.GUEST)
        # Raw power is not a multiple of the guest bucket in general.
        assert telemetry.power_bucket_w <= interface.platform\
            .total_power_w() + 1e-9

    def test_any_scope_gets_guest_telemetry(self, interface):
        for scope in Scope:
            assert interface.guest_telemetry(scope).node == \
                interface.platform.name


class TestCapabilitiesAndAudit:
    def test_capabilities_shrink_with_scope(self, interface):
        host = set(interface.capabilities(Scope.HOST))
        cloud = set(interface.capabilities(Scope.CLOUD))
        guest = set(interface.capabilities(Scope.GUEST))
        assert guest < cloud < host

    def test_every_access_is_audited(self, interface):
        interface.info_vector(Scope.HOST)
        interface.node_status(Scope.CLOUD)
        interface.guest_telemetry(Scope.GUEST)
        scopes = [scope for _, scope, _ in interface.audit_log]
        assert scopes == [Scope.HOST, Scope.CLOUD, Scope.GUEST]

    def test_denied_access_not_audited(self, interface):
        with pytest.raises(AccessDenied):
            interface.info_vector(Scope.GUEST)
        assert interface.audit_log == []
