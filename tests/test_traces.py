"""Tests for synthetic datacenter arrival traces."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads.traces import (
    ArrivalEvent,
    TraceConfig,
    TraceGenerator,
    arrivals_per_hour,
)

DAY_S = 24 * 3600.0


@pytest.fixture(scope="module")
def day_trace():
    return TraceGenerator(TraceConfig(base_rate_per_hour=20.0),
                          seed=9).generate(DAY_S)


class TestConfig:
    def test_rate_peaks_at_peak_hour(self):
        config = TraceConfig(peak_hour=14.0)
        peak = config.rate_at(14.0 * 3600.0)
        trough = config.rate_at(2.0 * 3600.0)
        assert peak > trough

    def test_burst_multiplies_rate(self):
        config = TraceConfig()
        t = 12 * 3600.0
        assert config.rate_at(t, in_burst=True) == pytest.approx(
            config.rate_at(t, in_burst=False) * config.burst_multiplier)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(base_rate_per_hour=0.0)
        with pytest.raises(ConfigurationError):
            TraceConfig(diurnal_amplitude=1.0)
        with pytest.raises(ConfigurationError):
            TraceConfig(tier_weights=(0.5, 0.5, 0.5))


class TestGeneration:
    def test_mean_rate_close_to_configured(self, day_trace):
        # 20/hour x 24 hours = 480 expected; bursts add a little.
        assert 380 <= len(day_trace) <= 650

    def test_arrivals_sorted_and_in_range(self, day_trace):
        times = [e.timestamp for e in day_trace]
        assert times == sorted(times)
        assert all(0 <= t < DAY_S for t in times)

    def test_names_unique(self, day_trace):
        names = [e.vm_name for e in day_trace]
        assert len(set(names)) == len(names)

    def test_deterministic_given_seed(self):
        a = TraceGenerator(seed=3).generate(3600.0 * 6)
        b = TraceGenerator(seed=3).generate(3600.0 * 6)
        assert [e.timestamp for e in a] == [e.timestamp for e in b]

    def test_all_tiers_appear(self, day_trace):
        tiers = {e.tier for e in day_trace}
        assert tiers == {"gold", "silver", "bronze"}

    def test_lifetimes_positive_with_floor(self, day_trace):
        assert all(e.lifetime_s >= 60.0 for e in day_trace)

    def test_diurnal_shape_visible(self, day_trace):
        """Peak-hour traffic should clearly exceed the small hours."""
        hourly = arrivals_per_hour(day_trace, DAY_S)
        peak_window = sum(hourly[12:17])
        night_window = sum(hourly[0:5])
        assert peak_window > 1.5 * night_window

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceGenerator().generate(0.0)


class TestHistogram:
    def test_counts_sum_to_events(self, day_trace):
        hourly = arrivals_per_hour(day_trace, DAY_S)
        assert sum(hourly) == len(day_trace)
        assert len(hourly) == 24

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            arrivals_per_hour([], 0.0)
