"""Tests for the CPU core crash model."""

import pytest

from repro.core.eop import OperatingPoint
from repro.core.exceptions import ConfigurationError, MachineCrash
from repro.hardware.core_model import CoreModel, CoreParameters
from repro.workloads.base import StressProfile


def params(**overrides):
    defaults = dict(
        vmin_base_v=0.75, delta_v=0.01, droop_span=0.05,
        max_frequency_hz=2.6e9, sensitivity_floor=0.0,
        run_noise_sigma_v=0.0,
    )
    defaults.update(overrides)
    return CoreParameters(**defaults)


def profile(droop=0.5, sens=0.5, activity=0.5):
    return StressProfile(
        droop_intensity=droop, core_sensitivity=sens,
        activity_factor=activity, cache_pressure=0.5, dram_pressure=0.5,
    )


class TestCrashVoltage:
    def test_gentle_workload_crashes_at_static_vmin(self):
        core = CoreModel(0, params(delta_v=0.0))
        v = core.crash_voltage_v(profile(droop=0.0, sens=0.0))
        assert v == pytest.approx(0.75)

    def test_droop_raises_crash_voltage(self):
        core = CoreModel(0, params())
        gentle = core.crash_voltage_v(profile(droop=0.1))
        harsh = core.crash_voltage_v(profile(droop=0.9))
        assert harsh > gentle

    def test_full_droop_matches_span(self):
        core = CoreModel(0, params(delta_v=0.0, droop_span=0.08))
        v = core.crash_voltage_v(profile(droop=1.0, sens=0.0))
        assert v == pytest.approx(0.75 / 0.92)

    def test_core_delta_expressed_by_sensitive_workloads(self):
        weak = CoreModel(0, params(delta_v=0.02))
        strong = CoreModel(1, params(delta_v=-0.02))
        w = profile(droop=0.0, sens=1.0)
        assert weak.crash_voltage_v(w) - strong.crash_voltage_v(w) == \
            pytest.approx(0.04)

    def test_sensitivity_floor_masks_low_exposure(self):
        core = CoreModel(0, params(delta_v=0.02, sensitivity_floor=0.5))
        low = core.crash_voltage_v(profile(droop=0.0, sens=0.4))
        base = core.crash_voltage_v(profile(droop=0.0, sens=0.0))
        assert low == pytest.approx(base)
        high = core.crash_voltage_v(profile(droop=0.0, sens=1.0))
        assert high > base

    def test_lower_frequency_lowers_vmin(self):
        core = CoreModel(0, params())
        full = core.static_vmin_v(2.6e9)
        half = core.static_vmin_v(1.3e9)
        assert half < full

    def test_frequency_above_fmax_rejected(self):
        core = CoreModel(0, params())
        with pytest.raises(ConfigurationError):
            core.static_vmin_v(3.0e9)

    def test_aging_raises_crash_voltage(self):
        core = CoreModel(0, params())
        before = core.crash_voltage_v(profile())
        core.age(3.2e8, voltage_v=1.1, temperature_c=85.0)  # ~10 harsh years
        after = core.crash_voltage_v(profile())
        assert after > before


class TestRunBehaviour:
    def test_run_above_crash_survives(self):
        core = CoreModel(0, params())
        point = OperatingPoint(0.9, 2.6e9)
        assert core.check_run(point, profile()) is True

    def test_run_below_crash_fails(self):
        core = CoreModel(0, params())
        point = OperatingPoint(0.5, 2.6e9)
        assert core.check_run(point, profile()) is False

    def test_raise_on_crash(self):
        core = CoreModel(0, params())
        with pytest.raises(MachineCrash) as excinfo:
            core.check_run(OperatingPoint(0.5, 2.6e9), profile(),
                           raise_on_crash=True)
        assert excinfo.value.component == "core0"

    def test_noise_makes_crash_point_vary(self):
        core = CoreModel(0, params(run_noise_sigma_v=0.003))
        samples = {round(core.sample_crash_voltage_v(profile()), 6)
                   for _ in range(20)}
        assert len(samples) > 10

    def test_noiseless_samples_equal_expected(self):
        core = CoreModel(0, params())
        assert core.sample_crash_voltage_v(profile()) == \
            core.crash_voltage_v(profile())


class TestCrashProbability:
    def test_probability_monotone_in_voltage(self):
        core = CoreModel(0, params(run_noise_sigma_v=0.003))
        w = profile()
        probs = [
            core.crash_probability(OperatingPoint(v, 2.6e9), w)
            for v in (0.74, 0.78, 0.82, 0.86)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_far_above_crash_is_near_zero(self):
        core = CoreModel(0, params(run_noise_sigma_v=0.002))
        p = core.crash_probability(OperatingPoint(0.95, 2.6e9), profile())
        assert p < 1e-9

    def test_far_below_crash_is_near_one(self):
        core = CoreModel(0, params(run_noise_sigma_v=0.002))
        p = core.crash_probability(OperatingPoint(0.6, 2.6e9), profile())
        assert p > 1 - 1e-9


class TestIsolation:
    def test_isolate_and_deisolate(self):
        core = CoreModel(0, params())
        assert not core.isolated
        core.isolate()
        assert core.isolated
        core.deisolate()
        assert not core.isolated


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            params(vmin_base_v=-0.1)
        with pytest.raises(ConfigurationError):
            params(droop_span=0.6)
        with pytest.raises(ConfigurationError):
            params(sensitivity_floor=1.0)

    def test_negative_core_id_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreModel(-1, params())
