"""Tests for the per-node runtime: RNG streams, metrics, node wiring."""

import pytest

from repro.core import SimClock, UniServerNode
from repro.core.exceptions import ConfigurationError
from repro.core.runtime import (
    HistogramStats,
    MetricsRegistry,
    NodeRuntime,
    spawn_runtimes,
)


class TestRngStreams:
    def test_same_stream_name_is_cached(self):
        runtime = NodeRuntime(seed=1)
        assert runtime.rng("faults") is runtime.rng("faults")

    def test_named_streams_are_independent(self):
        runtime = NodeRuntime(seed=1)
        a = runtime.rng("faults").random(8)
        b = runtime.rng("hypervisor").random(8)
        assert list(a) != list(b)

    def test_streams_reproducible_across_runtimes(self):
        first = NodeRuntime(seed=7).rng("faults").random(8)
        second = NodeRuntime(seed=7).rng("faults").random(8)
        assert list(first) == list(second)

    def test_streams_differ_across_seeds(self):
        first = NodeRuntime(seed=7).rng("faults").random(8)
        second = NodeRuntime(seed=8).rng("faults").random(8)
        assert list(first) != list(second)

    def test_stream_identity_independent_of_request_order(self):
        forward = NodeRuntime(seed=3)
        backward = NodeRuntime(seed=3)
        forward.rng("a")
        forward.rng("b")
        backward.rng("b")
        backward.rng("a")
        assert list(forward.rng("b").random(4)) == \
            list(backward.rng("b").random(4))

    def test_spawned_runtimes_share_clock_not_streams(self):
        runtimes = spawn_runtimes(3, seed=5)
        assert len({id(r.clock) for r in runtimes}) == 1
        draws = [tuple(r.rng("faults").random(4)) for r in runtimes]
        assert len(set(draws)) == 3

    def test_spawn_runtimes_needs_at_least_one(self):
        with pytest.raises(ConfigurationError):
            spawn_runtimes(0)

    def test_spawn_child_shares_clock(self):
        parent = NodeRuntime(seed=2)
        child = parent.spawn_child("child0")
        assert child.clock is parent.clock
        assert child.bus is not parent.bus
        assert child.metrics is not parent.metrics

    def test_now_tracks_clock(self):
        clock = SimClock()
        runtime = NodeRuntime(clock=clock)
        clock.advance_by(12.5)
        assert runtime.now == 12.5


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("hypervisor.ticks")
        registry.inc("hypervisor.ticks", 2.0)
        assert registry.counter("hypervisor.ticks") == 3.0

    def test_counters_refuse_negative_amounts(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.inc("hypervisor.ticks", -1.0)

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0.0

    def test_gauges_keep_latest_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("hypervisor.energy_j", 1.0)
        registry.set_gauge("hypervisor.energy_j", 2.5)
        assert registry.gauge("hypervisor.energy_j") == 2.5
        assert registry.gauge("unset") is None

    def test_histograms_summarise_moments(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("daemons.healthlog.power_w", value)
        stats = registry.histogram("daemons.healthlog.power_w")
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.min_value == 1.0
        assert stats.max_value == 3.0

    def test_histogram_registers_on_first_access(self):
        registry = MetricsRegistry()
        stats = registry.histogram("daemons.predictor.latency_s")
        assert stats.count == 0
        # The returned summary is the live registered series, not a
        # detached throwaway: observations through it are visible.
        stats.observe(2.0)
        assert registry.histogram("daemons.predictor.latency_s") is stats
        assert "daemons.predictor.latency_s" in registry.series_names()
        assert registry.snapshot()["histograms"][
            "daemons.predictor.latency_s"]["count"] == 1

    def test_empty_histogram_dict_is_all_zero(self):
        assert HistogramStats().as_dict() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_layers_are_top_level_namespaces(self):
        registry = MetricsRegistry()
        registry.inc("hardware.faults.crash")
        registry.set_gauge("hypervisor.energy_j", 1.0)
        registry.observe("daemons.healthlog.power_w", 5.0)
        assert registry.layers() == ["daemons", "hardware", "hypervisor"]

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.inc("b.two")
        registry.inc("a.one")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.one", "b.two"]
        assert set(snapshot) == {"counters", "gauges", "histograms"}

    def test_clear_drops_all_series(self):
        registry = MetricsRegistry()
        registry.inc("a.one")
        registry.clear()
        assert registry.series_names() == []


class TestNodeWiring:
    def test_uniserver_node_layers_share_runtime(self):
        node = UniServerNode(seed=1)
        assert node.healthlog.clock is node.runtime.clock
        assert node.hypervisor.bus is node.runtime.bus
        assert node.healthlog.metrics is node.runtime.metrics
        assert node.isolation.metrics is node.runtime.metrics
        assert node.qos.metrics is node.runtime.metrics

    def test_conflicting_clock_and_runtime_rejected(self):
        runtime = NodeRuntime()
        with pytest.raises(ConfigurationError):
            UniServerNode(clock=SimClock(), runtime=runtime)

    def test_node_run_reports_across_layers(self):
        node = UniServerNode(seed=1)
        node.pre_deploy()
        node.deploy()
        node.run(120.0)
        layers = node.metrics.layers()
        assert "daemons" in layers
        assert "hypervisor" in layers
        assert "hardware" in layers


class TestComputeNodeWrapsUniServerNode:
    def test_compute_node_carries_the_full_stack(self):
        from repro.cloudmgr import ComputeNode

        node = ComputeNode("n0", SimClock(), seed=4)
        assert isinstance(node.node, UniServerNode)
        assert node.predictor is node.node.predictor
        assert node.isolation is node.node.isolation
        assert node.qos is node.node.qos
        assert node.node.deployed

    def test_characterized_node_matches_manual_lifecycle(self):
        from repro.cloudmgr import ComputeNode

        wrapped = ComputeNode("n0", runtime=NodeRuntime(name="n0", seed=9),
                              characterize=True)
        manual = UniServerNode(runtime=NodeRuntime(name="n0", seed=9))
        manual.pre_deploy()
        manual.deploy()
        manual.train_predictor(include_campaign=False)
        wrapped_points = [
            wrapped.platform.core_point(c.core_id)
            for c in wrapped.platform.chip.cores
        ]
        manual_points = [
            manual.platform.core_point(c.core_id)
            for c in manual.platform.chip.cores
        ]
        assert wrapped_points == manual_points
        assert wrapped.metrics_snapshot() == manual.metrics.snapshot()

    def test_uncharacterized_node_boots_at_nominal(self):
        from repro.cloudmgr import ComputeNode

        node = ComputeNode("n0", SimClock(), seed=4)
        nominal = node.platform.chip.spec.nominal
        for core in node.platform.chip.cores:
            assert node.platform.core_point(core.core_id) == nominal

    def test_conflicting_clock_and_runtime_rejected(self):
        from repro.cloudmgr import ComputeNode

        with pytest.raises(ConfigurationError):
            ComputeNode("n0", SimClock(), runtime=NodeRuntime(name="n0"))
