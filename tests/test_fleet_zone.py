"""Tests for zone controllers and the fleet scheduler router."""

import pytest

from repro.cloudmgr import ComputeNode
from repro.cloudmgr.simulation import (
    TraceDrivenSimulation,
    run_rack_experiment,
    vm_from_event,
)
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    FleetScheduler,
    ZoneController,
    build_zoned_rack,
    rack_report,
    run_zoned_rack_experiment,
)
from repro.persistence.snapshot import canonical_json
from repro.resilience.chaos import FaultPlan
from repro.workloads.traces import TraceConfig, TraceGenerator


def chaos_plan():
    return FaultPlan.random([f"node{i}" for i in range(6)],
                            2 * 3600.0, rate_per_hour=6.0, seed=3,
                            intensity=0.8)


def monolith_json(**kwargs):
    experiment = run_rack_experiment(**kwargs)
    return canonical_json(
        rack_report(experiment.cloud, experiment.stats))


def zoned_json(shards, **kwargs):
    experiment = run_zoned_rack_experiment(shards=shards, **kwargs)
    return canonical_json(
        rack_report(experiment.cloud, experiment.stats))


class TestZonedMonolithIdentity:
    def test_clean_run_identical_across_shard_counts(self):
        kwargs = dict(n_nodes=4, duration_s=3600.0, seed=0,
                      base_rate_per_hour=24.0)
        baseline = monolith_json(**kwargs)
        assert zoned_json(1, **kwargs) == baseline
        assert zoned_json(2, **kwargs) == baseline
        assert zoned_json(4, **kwargs) == baseline

    def test_chaos_run_identical_and_exercised(self):
        kwargs = dict(n_nodes=6, duration_s=2 * 3600.0, seed=3,
                      base_rate_per_hour=30.0,
                      fault_plan=chaos_plan())
        experiment = run_zoned_rack_experiment(shards=3, **kwargs)
        report = rack_report(experiment.cloud, experiment.stats)
        # The run must actually exercise the resilience machinery, or
        # the identity below proves nothing about failover routing.
        assert report["controller"]["node_crashes"] > 0
        assert (report["controller"]["failovers"]
                + report["controller"]["evacuations"]) > 0
        assert canonical_json(report) == monolith_json(**kwargs)


class TestCrossZoneOwnership:
    def test_each_vm_tracked_by_exactly_one_zone(self):
        experiment = run_zoned_rack_experiment(
            n_nodes=6, shards=3, duration_s=2 * 3600.0, seed=3,
            base_rate_per_hour=30.0, fault_plan=chaos_plan())
        fleet = experiment.cloud
        seen = {}
        for zone in fleet.zones:
            for name in zone.tracker.tracked_vms():
                assert name not in seen, (
                    f"{name} tracked by {seen[name]} and {zone.zone}")
                seen[name] = zone.zone
        # Every resident VM's tracker record lives in its hosting zone.
        for zone in fleet.zones:
            for node in zone.node_list():
                for vm in node.hypervisor.vms:
                    if vm.name in seen:
                        assert seen[vm.name] == zone.zone


class TestSnapshotResume:
    def test_mid_campaign_state_round_trip(self):
        duration = 2 * 3600.0
        seed = 1
        trace = TraceGenerator(
            TraceConfig(base_rate_per_hour=30.0), seed=seed)
        events = trace.generate(duration)
        by_name = {event.vm_name: event for event in events}

        def build(shards):
            clock = SimClock()
            fleet = build_zoned_rack(4, shards, clock, seed=seed)
            return clock, fleet, TraceDrivenSimulation(
                fleet, events, step_s=60.0)

        _, reference_fleet, reference_sim = build(shards=2)
        reference_sim.run(duration)
        baseline = canonical_json(
            rack_report(reference_fleet, reference_sim.stats))

        clock_a, fleet_a, sim_a = build(shards=2)
        while sim_a.now < duration / 2:
            sim_a.step_once()
        saved = {
            "clock": clock_a.state_dict(),
            "fleet": fleet_a.state_dict(),
            "simulation": sim_a.state_dict(),
        }

        clock_b, fleet_b, sim_b = build(shards=2)
        clock_b.load_state_dict(saved["clock"])
        fleet_b.load_state_dict(
            saved["fleet"],
            lambda name: vm_from_event(by_name[name]))
        sim_b.load_state_dict(saved["simulation"])
        while sim_b.now < duration:
            sim_b.step_once()
        assert canonical_json(
            rack_report(fleet_b, sim_b.stats)) == baseline


class TestFleetSchedulerSurface:
    def test_validation(self):
        clock = SimClock()
        with pytest.raises(ConfigurationError):
            FleetScheduler([])
        nodes = [ComputeNode(f"node{i}", clock, seed=i)
                 for i in range(2)]
        a = ZoneController(clock, [nodes[0]], zone="zone0")
        b = ZoneController(clock, [nodes[1]], zone="zone0")
        with pytest.raises(ConfigurationError):
            FleetScheduler([a, b])  # duplicate names
        c = ZoneController(SimClock(), [ComputeNode("other", SimClock(),
                                                    seed=9)],
                           zone="zone1")
        with pytest.raises(ConfigurationError):
            FleetScheduler([a, c])  # different clocks
        d = ZoneController(clock, [nodes[0]], zone="zone1")
        with pytest.raises(ConfigurationError):
            FleetScheduler([a, d])  # node in two zones

    def test_summaries_and_describe(self):
        fleet = build_zoned_rack(4, 2, SimClock(), seed=0)
        summaries = fleet.zone_summaries()
        assert sorted(summaries) == ["zone0", "zone1"]
        assert all(s["nodes"] == 2 for s in summaries.values())
        text = fleet.describe()
        assert "2 zones" in text and "zone1" in text
        assert len(fleet.node_list()) == 4
        assert fleet.zone_of("node3").zone == "zone1"
        with pytest.raises(KeyError):
            fleet.zone_of("node9")

    def test_standalone_zone_is_a_cloud_controller(self):
        clock = SimClock()
        nodes = [ComputeNode(f"node{i}", clock, seed=i)
                 for i in range(2)]
        zone = ZoneController(clock, nodes, zone="solo")
        zone.step(60.0)
        assert zone.stats.steps == 1
        assert zone.zone_summary()["zone"] == "solo"
