"""Tests for the StressLog daemon."""

import pytest

from repro.core.clock import SimClock
from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S
from repro.core.events import AnomalyEvent, EventBus, MarginUpdateEvent
from repro.core.exceptions import ConfigurationError, StressTestError
from repro.daemons.stresslog import StressLog, StressTargets
from repro.hardware import build_uniserver_node


@pytest.fixture
def stresslog():
    clock = SimClock()
    platform = build_uniserver_node()
    return StressLog(platform, clock)


class TestTargets:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StressTargets(failure_budget=0.0)
        with pytest.raises(ConfigurationError):
            StressTargets(guard_margin_v=-0.01)
        with pytest.raises(ConfigurationError):
            StressTargets(refresh_derating=1.5)


class TestCoreCharacterisation:
    def test_safe_point_sits_above_observed_crash(self, stresslog):
        vector = stresslog.characterize()
        for margin in vector.margins:
            if not margin.component.startswith("core"):
                continue
            assert margin.observed_crash_voltage_v is not None
            assert margin.safe_point.voltage_v >= \
                margin.observed_crash_voltage_v

    def test_safe_point_below_nominal(self, stresslog):
        """The whole point: EOPs reclaim margin below nominal."""
        nominal_v = stresslog.platform.chip.spec.nominal.voltage_v
        vector = stresslog.characterize()
        core_margins = [m for m in vector.margins
                        if m.component.startswith("core")]
        assert all(m.safe_point.voltage_v < nominal_v for m in core_margins)
        assert all(m.relative_power < 1.0 for m in core_margins)

    def test_per_core_margins_differ(self, stresslog):
        """Heterogeneity: each core gets its own characterised point."""
        vector = stresslog.characterize()
        voltages = {m.safe_point.voltage_v for m in vector.margins
                    if m.component.startswith("core")}
        assert len(voltages) > 1

    def test_failure_probability_is_small_at_safe_point(self, stresslog):
        vector = stresslog.characterize()
        for margin in vector.margins:
            if margin.component.startswith("core"):
                assert margin.failure_probability < 1e-2


class TestDomainCharacterisation:
    def test_relaxed_domains_characterised(self, stresslog):
        vector = stresslog.characterize()
        domain_margins = [m for m in vector.margins
                          if m.component.startswith("channel")]
        assert len(domain_margins) == 3  # reliable channel0 excluded
        for margin in domain_margins:
            assert margin.safe_point.refresh_interval_s > \
                NOMINAL_REFRESH_INTERVAL_S
            assert margin.observed_ber is not None
            assert margin.observed_ber <= stresslog.targets.refresh_ber_target * 1.01

    def test_reliable_domain_not_touched(self, stresslog):
        vector = stresslog.characterize()
        names = vector.component_names()
        assert "channel0" not in names
        assert stresslog.platform.memory.domain(
            "channel0").refresh_interval_s == NOMINAL_REFRESH_INTERVAL_S

    def test_characterisation_restores_current_settings(self, stresslog):
        """The offline campaign must not leave test settings applied."""
        stresslog.characterize()
        for domain in stresslog.platform.memory.domains():
            assert domain.refresh_interval_s == NOMINAL_REFRESH_INTERVAL_S


class TestCycleManagement:
    def test_history_and_eop_table_populate(self, stresslog):
        vector = stresslog.characterize()
        assert stresslog.history == [vector]
        assert len(stresslog.eop_table) == len(vector.margins)

    def test_margin_events_published(self):
        clock = SimClock()
        bus = EventBus()
        platform = build_uniserver_node()
        sl = StressLog(platform, clock, bus=bus)
        events = []
        bus.subscribe(MarginUpdateEvent, events.append)
        vector = sl.characterize()
        assert len(events) == len(vector.margins)

    def test_anomaly_trigger_runs_cycle(self):
        clock = SimClock()
        bus = EventBus()
        platform = build_uniserver_node()
        sl = StressLog(platform, clock, bus=bus)
        sl.attach_anomaly_trigger(bus)
        bus.publish(AnomalyEvent(timestamp=0.0, source="healthlog",
                                 description="x", severity="critical"))
        assert len(sl.history) == 1
        assert sl.history[0].trigger == "anomaly"

    def test_warning_anomalies_ignored(self):
        clock = SimClock()
        bus = EventBus()
        platform = build_uniserver_node()
        sl = StressLog(platform, clock, bus=bus)
        sl.attach_anomaly_trigger(bus)
        bus.publish(AnomalyEvent(timestamp=0.0, source="healthlog",
                                 description="x", severity="warning"))
        assert sl.history == []

    def test_periodic_schedule(self):
        clock = SimClock()
        platform = build_uniserver_node()
        sl = StressLog(platform, clock)
        sl.schedule_periodic(100.0)
        clock.advance_to(350.0)
        assert len(sl.history) == 3
        assert all(v.trigger == "periodic" for v in sl.history)

    def test_offline_flag_cleared_after_cycle(self, stresslog):
        stresslog.characterize()
        assert stresslog.offline is False

    def test_mean_power_saving_positive(self, stresslog):
        vector = stresslog.characterize()
        assert vector.mean_power_saving() > 0.05
