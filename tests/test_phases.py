"""Tests for phased workloads."""

import pytest

from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError
from repro.hardware import ChipModel, arm_server_soc_spec, \
    build_uniserver_node
from repro.hypervisor import Hypervisor, VirtualMachine
from repro.workloads import spec_workload
from repro.workloads.base import StressProfile
from repro.workloads.phases import (
    Phase,
    burst_style_workload,
    compress_style_workload,
    make_phased,
)


def profile(droop):
    return StressProfile(droop, 0.5, 0.5, 0.5, 0.5)


class TestConstruction:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            make_phased("x", [Phase(profile(0.1), 0.5),
                              Phase(profile(0.9), 0.4)])

    def test_needs_phases(self):
        with pytest.raises(ConfigurationError):
            make_phased("x", [])

    def test_summary_profile_is_weighted_mean(self):
        workload = make_phased("x", [Phase(profile(0.0), 0.75),
                                     Phase(profile(1.0), 0.25)])
        assert workload.profile.droop_intensity == pytest.approx(0.25)

    def test_phase_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            Phase(profile(0.5), 0.0)


class TestPhaseLookup:
    @pytest.fixture
    def workload(self):
        return make_phased("x", [
            Phase(profile(0.1), 0.2, "read"),
            Phase(profile(0.8), 0.6, "compute"),
            Phase(profile(0.2), 0.2, "write"),
        ])

    def test_profile_at_progress(self, workload):
        assert workload.profile_at(0.0).droop_intensity == 0.1
        assert workload.profile_at(0.5).droop_intensity == 0.8
        assert workload.profile_at(0.95).droop_intensity == 0.2
        assert workload.profile_at(1.0).droop_intensity == 0.2

    def test_phase_boundaries(self, workload):
        assert workload.phase_at(0.19).name == "read"
        assert workload.phase_at(0.21).name == "compute"
        assert workload.phase_at(0.81).name == "write"

    def test_worst_phase(self, workload):
        assert workload.worst_phase().name == "compute"

    def test_progress_validation(self, workload):
        with pytest.raises(ConfigurationError):
            workload.profile_at(1.5)

    def test_stationary_workload_is_phase_invariant(self):
        workload = spec_workload("mcf")
        assert workload.profile_at(0.0) == workload.profile_at(0.9)


class TestPrebuiltShapes:
    def test_compress_style_has_three_phases(self):
        workload = compress_style_workload()
        assert len(workload.phases) == 3
        assert workload.worst_phase().name == "compress"

    def test_burst_average_understates_burst(self):
        """The trap for static margins: the mean profile looks benign,
        the burst phase does not."""
        workload = burst_style_workload(quiet_fraction=0.8)
        mean_droop = workload.profile.droop_intensity
        burst_droop = workload.worst_phase().profile.droop_intensity
        assert burst_droop > 2 * mean_droop

    def test_burst_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            burst_style_workload(quiet_fraction=1.0)


class TestHypervisorIntegration:
    def test_burst_phase_crashes_a_margin_set_for_the_average(self):
        """A point safe for the workload's *average* profile fails when
        the burst phase arrives — the hypervisor samples phases."""
        clock = SimClock()
        platform = build_uniserver_node()
        hv = Hypervisor(platform, clock, seed=2)
        hv.boot()
        workload = burst_style_workload(duration_cycles=1e12,
                                        quiet_fraction=0.5)
        core = platform.chip.core(0)
        mean_crash = core.crash_voltage_v(workload.profile)
        burst_crash = core.crash_voltage_v(
            workload.worst_phase().profile)
        assert burst_crash > mean_crash
        # Margin set for the average: safe in quiet, fatal in burst.
        risky = platform.chip.spec.nominal.with_voltage(
            mean_crash + 0.005)
        platform.set_all_core_points(risky)
        vm = VirtualMachine(name="bursty", workload=workload)
        hv.create_vm(vm)
        for _ in range(300):
            hv.tick()
        assert hv.stats.vm_crashes_masked > 0

    def test_margin_for_worst_phase_survives(self):
        clock = SimClock()
        platform = build_uniserver_node()
        hv = Hypervisor(platform, clock, seed=2)
        hv.boot()
        workload = burst_style_workload(duration_cycles=1e12,
                                        quiet_fraction=0.5)
        core = platform.chip.core(0)
        safe_v = core.crash_voltage_v(
            workload.worst_phase().profile) + 0.015
        platform.set_all_core_points(
            platform.chip.spec.nominal.with_voltage(safe_v))
        vm = VirtualMachine(name="bursty", workload=workload)
        hv.create_vm(vm)
        for _ in range(300):
            hv.tick()
        assert hv.stats.vm_crashes_masked == 0
