"""Tests for the cache SECDED error model."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.cache import CacheModel, CacheParameters
from repro.hardware.ecc import DecodeStatus
from repro.hardware.faults import FaultClass
from repro.workloads.base import StressProfile


def pressure_profile(cache=0.5):
    return StressProfile(
        droop_intensity=0.5, core_sensitivity=0.5, activity_factor=0.5,
        cache_pressure=cache, dram_pressure=0.5,
    )


class TestExpectedErrors:
    def test_expected_count_decays_with_headroom(self):
        cache = CacheModel()
        crash = 0.75
        counts = [cache.expected_errors(crash + h, crash)
                  for h in (0.002, 0.006, 0.012, 0.020)]
        assert counts == sorted(counts, reverse=True)

    def test_onset_margin_calibration(self):
        """Expected count crosses 1 at the configured onset margin."""
        params = CacheParameters(onset_margin_v=0.011)
        cache = CacheModel(params)
        at_onset = cache.expected_errors(0.75 + 0.011, 0.75)
        assert at_onset == pytest.approx(1.0, rel=0.01)

    def test_below_crash_saturates(self):
        params = CacheParameters(max_errors_per_run=500)
        cache = CacheModel(params)
        assert cache.expected_errors(0.70, 0.75) == 500.0

    def test_cache_pressure_scales_exposure(self):
        cache = CacheModel()
        low = cache.expected_errors(0.755, 0.75, pressure_profile(0.0))
        high = cache.expected_errors(0.755, 0.75, pressure_profile(1.0))
        assert high > low


class TestRunSampling:
    def test_non_reporting_platform_shows_nothing(self):
        """The i7-3970X row of Table 2: no ECC events exposed."""
        cache = CacheModel(CacheParameters(ecc_reporting=False))
        result = cache.run(0.751, 0.75, pressure_profile())
        assert result.correctable == 0 and result.uncorrectable == 0

    def test_far_above_crash_is_clean(self):
        cache = CacheModel(seed=1)
        result = cache.run(0.95, 0.75)
        assert result.total == 0

    def test_near_crash_produces_errors(self):
        cache = CacheModel(seed=2)
        totals = [cache.run(0.752, 0.75).total for _ in range(50)]
        assert max(totals) >= 1

    def test_deterministic_given_seed(self):
        a = [CacheModel(seed=3).run(0.755, 0.75).total for _ in range(1)]
        b = [CacheModel(seed=3).run(0.755, 0.75).total for _ in range(1)]
        assert a == b

    def test_double_bit_fraction_zero_means_all_correctable(self):
        cache = CacheModel(CacheParameters(double_bit_fraction=0.0), seed=4)
        result = cache.run(0.751, 0.75)
        assert result.uncorrectable == 0


class TestFaultRecords:
    def test_records_match_counts(self):
        cache = CacheModel(seed=5)
        result = cache.run(0.7505, 0.75)
        records = cache.fault_records(result, timestamp=1.0,
                                      component="core0")
        ce = [r for r in records if r.fault_class is FaultClass.CORRECTABLE]
        ue = [r for r in records
              if r.fault_class is FaultClass.UNCORRECTABLE]
        assert len(ce) == result.correctable
        assert len(ue) == result.uncorrectable


class TestSecdedDemo:
    def test_single_flip_is_corrected(self):
        cache = CacheModel()
        result = cache.demonstrate_secded(0xDEAD, flip_bits=(5,))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == 0xDEAD

    def test_double_flip_is_uncorrectable(self):
        cache = CacheModel()
        result = cache.demonstrate_secded(0xDEAD, flip_bits=(5, 17))
        assert result.status is DecodeStatus.UNCORRECTABLE


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParameters(onset_margin_v=0.0)
        with pytest.raises(ConfigurationError):
            CacheParameters(double_bit_fraction=1.5)
        with pytest.raises(ConfigurationError):
            CacheParameters(max_errors_per_run=0)
