"""Tests for the hypervisor object catalog."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hypervisor.objects import (
    CATEGORY_PROFILES,
    CategoryProfile,
    ObjectCatalog,
    SENSITIVE_CATEGORIES,
    TOTAL_OBJECTS,
)


@pytest.fixture(scope="module")
def catalog():
    return ObjectCatalog(seed=3)


class TestCatalogStructure:
    def test_total_matches_paper(self, catalog):
        """Section 6.C: 16 820 statically allocated objects."""
        assert len(catalog) == TOTAL_OBJECTS == 16_820

    def test_profiles_sum_to_total(self):
        assert sum(p.n_objects for p in CATEGORY_PROFILES) == TOTAL_OBJECTS

    def test_eleven_categories(self, catalog):
        assert len(catalog.categories()) == 11
        for name in ("block", "drivers", "fs", "init", "kernel", "mm",
                     "net", "pci", "power", "security", "vdso"):
            assert name in catalog.categories()

    def test_object_ids_dense(self, catalog):
        ids = [o.object_id for o in catalog]
        assert ids == list(range(TOTAL_OBJECTS))

    def test_category_counts_match_profiles(self, catalog):
        for profile in CATEGORY_PROFILES:
            assert len(catalog.objects_in(profile.name)) == profile.n_objects

    def test_crucial_fraction_respected(self, catalog):
        for profile in CATEGORY_PROFILES:
            crucial = catalog.crucial_count(profile.name)
            expected = round(profile.n_objects * profile.crucial_fraction)
            assert crucial == expected

    def test_loaded_activation_exceeds_unloaded(self):
        """The load-amplification mechanism behind Figure 4."""
        for profile in CATEGORY_PROFILES:
            assert profile.activation_loaded > profile.activation_unloaded


class TestSensitivity:
    def test_sensitive_categories_match_paper(self):
        """Section 6.C: fs, kernel, net (and mm) are the sensitive ones."""
        assert "fs" in SENSITIVE_CATEGORIES
        assert "kernel" in SENSITIVE_CATEGORIES
        assert "net" in SENSITIVE_CATEGORIES

    def test_sensitive_objects_cover_most_crucial(self, catalog):
        sensitive_crucial = sum(
            1 for o in catalog.sensitive_objects() if o.crucial)
        assert sensitive_crucial / catalog.crucial_count() > 0.6


class TestLookup:
    def test_get_by_id(self, catalog):
        obj = catalog.get(100)
        assert obj.object_id == 100

    def test_get_out_of_range(self, catalog):
        with pytest.raises(KeyError):
            catalog.get(TOTAL_OBJECTS)

    def test_unknown_category(self, catalog):
        with pytest.raises(KeyError):
            catalog.objects_in("netfilter")

    def test_sizes_are_positive(self, catalog):
        assert all(o.size_bytes >= 16 for o in catalog)
        assert catalog.total_size_bytes() > 0

    def test_deterministic_given_seed(self):
        a = ObjectCatalog(seed=5)
        b = ObjectCatalog(seed=5)
        assert [o.crucial for o in a] == [o.crucial for o in b]


class TestValidation:
    def test_bad_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoryProfile("x", 0, 0.5, 0.5, 0.1)
        with pytest.raises(ConfigurationError):
            CategoryProfile("x", 10, 1.5, 0.5, 0.1)

    def test_wrong_total_rejected(self):
        bad = (CategoryProfile("only", 100, 0.5, 0.5, 0.1),)
        with pytest.raises(ConfigurationError):
            ObjectCatalog(profiles=bad)
