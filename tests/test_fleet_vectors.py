"""Tests for the counter-based RNG and vectorized fleet stepping."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.runtime import spawn_runtimes
from repro.fleet import (
    FleetConfig,
    FleetVectors,
    build_fleet_state,
    counter_gaussian,
    counter_uniform,
    fleet_counter_keys,
    runtime_counter_key,
    shard_bounds,
    splitmix64,
)
from repro.fleet.state import DYNAMIC_FIELDS, FleetState


def assert_states_identical(a, b):
    for name, _ in DYNAMIC_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestCounterRNG:
    def test_splitmix64_repeatable_and_spread(self):
        bits = splitmix64(np.arange(1024, dtype=np.uint64))
        again = splitmix64(np.arange(1024, dtype=np.uint64))
        assert np.array_equal(bits, again)
        assert len(np.unique(bits)) == 1024  # no collisions on a ramp

    def test_uniform_range_and_salt_sensitivity(self):
        keys = np.arange(4096, dtype=np.uint64)
        u = counter_uniform(keys, np.uint64(7), 3)
        assert float(u.min()) >= 0.0
        assert float(u.max()) < 1.0
        other = counter_uniform(keys, np.uint64(8), 3)
        assert not np.array_equal(u, other)  # step salt matters
        assert abs(float(u.mean()) - 0.5) < 0.02

    def test_gaussian_moments(self):
        draws = counter_gaussian(np.arange(20000, dtype=np.uint64), 1)
        assert np.all(np.isfinite(draws))
        assert abs(float(draws.mean())) < 0.03
        assert abs(float(draws.std()) - 1.0) < 0.03


class TestKeyDerivation:
    def test_keys_match_scalar_runtime_streams(self):
        # Node i of a scalar rack and row i of a vector fleet must
        # derive the same "fleet.vectors" stream key from one seed.
        runtimes = spawn_runtimes(5, seed=7)
        keys = fleet_counter_keys(5, 7)
        for i, runtime in enumerate(runtimes):
            assert keys[i] == runtime_counter_key(runtime)

    def test_keys_distinct_across_nodes_and_seeds(self):
        a = fleet_counter_keys(16, 0)
        b = fleet_counter_keys(16, 1)
        assert len(set(a.tolist())) == 16
        assert set(a.tolist()).isdisjoint(b.tolist())


class TestShardBounds:
    def test_contiguous_cover(self):
        bounds = shard_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        assert [hi - lo for lo, hi in bounds] == [4, 3, 3]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(4, 0)
        with pytest.raises(ConfigurationError):
            shard_bounds(4, 5)


class TestVectorStepping:
    def test_scalar_loop_matches_vector_step(self):
        config = FleetConfig(n_nodes=6, seed=3)
        vectors = FleetVectors(config)
        whole = build_fleet_state(config)
        per_node = build_fleet_state(config)
        rng = np.random.default_rng(42)
        for t in range(25):
            used = rng.integers(0, config.vcpus_per_node + 1, size=6)
            whole.used_vcpus[:] = used
            per_node.used_vcpus[:] = used
            vectors.step(whole, t)
            for i in range(6):
                vectors.step_node(per_node, i, t)
            assert_states_identical(whole, per_node)

    def test_arbitrary_shard_split_matches(self):
        config = FleetConfig(n_nodes=7, seed=1)
        vectors = FleetVectors(config)
        whole = build_fleet_state(config)
        sharded = build_fleet_state(config)
        views = [sharded.view(lo, hi)
                 for lo, hi in shard_bounds(7, 3)]
        for t in range(15):
            whole.used_vcpus[:] = (t * 3) % (config.vcpus_per_node + 1)
            sharded.used_vcpus[:] = whole.used_vcpus
            vectors.step(whole, t)
            for view in views:
                vectors.step(view, t)
            assert_states_identical(whole, sharded)

    def test_governor_demotes_and_readopts(self):
        config = FleetConfig(n_nodes=32, seed=0,
                             error_budget_per_window=0,
                             review_every_steps=2,
                             probation_steps=4)
        vectors = FleetVectors(config)
        state = build_fleet_state(config)
        state.used_vcpus[:] = config.vcpus_per_node  # full load
        for t in range(40):
            vectors.step(state, t)
        assert int(state.demotions.sum()) > 0
        assert int(state.adoptions.sum()) > 0

    def test_energy_and_temperature_advance(self):
        config = FleetConfig(n_nodes=4, seed=0)
        vectors = FleetVectors(config)
        state = build_fleet_state(config)
        vectors.step(state, 0)
        assert np.all(state.power_w > 0)
        assert np.all(state.energy_j == state.power_w * config.step_s)
        assert np.all(state.temperature_c > config.ambient_c)


class TestStateRoundTrip:
    def test_state_dict_round_trip(self):
        config = FleetConfig(n_nodes=5, seed=9)
        vectors = FleetVectors(config)
        state = build_fleet_state(config)
        state.used_vcpus[:] = 3
        for t in range(12):
            vectors.step(state, t)
        saved = state.state_dict()

        restored = build_fleet_state(config)
        restored.load_state_dict(saved)
        assert_states_identical(state, restored)
        # Continuing from the restored state stays identical.
        vectors.step(state, 12)
        vectors.step(restored, 12)
        assert_states_identical(state, restored)

    def test_load_rejects_wrong_size(self):
        config = FleetConfig(n_nodes=5, seed=0)
        state = build_fleet_state(config)
        saved = build_fleet_state(
            FleetConfig(n_nodes=4, seed=0)).state_dict()
        with pytest.raises(ConfigurationError):
            state.load_state_dict(saved)


class TestEquilibriumAnchors:
    def test_monotonic_in_util_and_margin_saves_power(self):
        vectors = FleetVectors(FleetConfig())
        idle = vectors.equilibrium_power_w(0.0, margin_on=False)
        peak = vectors.equilibrium_power_w(1.0, margin_on=False)
        assert 0.0 < idle < peak
        assert (vectors.equilibrium_power_w(1.0, margin_on=True)
                < peak)

    def test_anchor_is_deterministic(self):
        vectors = FleetVectors(FleetConfig())
        assert (vectors.equilibrium_power_w(0.5, margin_on=True)
                == vectors.equilibrium_power_w(0.5, margin_on=True))


class TestViewSemantics:
    def test_view_shares_memory(self):
        state = build_fleet_state(FleetConfig(n_nodes=6, seed=0))
        view = state.view(2, 5)
        assert isinstance(view, FleetState)
        view.used_vcpus[:] = 7
        assert np.array_equal(state.used_vcpus[2:5], [7, 7, 7])
        assert state.used_vcpus[0] == 0


class TestTieredFleet:
    def tiered_config(self, **kwargs):
        defaults = dict(n_nodes=6, seed=3, strong_dimms_per_node=1,
                        normal_dimms_per_node=2)
        defaults.update(kwargs)
        return FleetConfig(**defaults)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(strong_dimms_per_node=-1)
        with pytest.raises(ConfigurationError):
            FleetConfig(dimms_per_node=8, strong_dimms_per_node=5,
                        normal_dimms_per_node=4)
        with pytest.raises(ConfigurationError):
            FleetConfig(refresh_normal_s=0.01)  # below nominal
        with pytest.raises(ConfigurationError):
            FleetConfig(refresh_normal_s=10.0)  # above relaxed
        assert not FleetConfig().tiered
        assert self.tiered_config().tiered

    def test_untiered_fleet_keeps_tier_fields_zero(self):
        config = FleetConfig(n_nodes=4, seed=1)
        vectors = FleetVectors(config)
        state = build_fleet_state(config)
        for t in range(20):
            vectors.step(state, t)
        for name in ("refresh_energy_strong_j", "refresh_energy_normal_j",
                     "refresh_energy_relaxed_j", "retention_errors_normal",
                     "retention_errors_relaxed"):
            assert not np.any(getattr(state, name)), name

    def test_tiered_step_matches_per_node_and_sharded(self):
        config = self.tiered_config()
        vectors = FleetVectors(config)
        whole = build_fleet_state(config)
        per_node = build_fleet_state(config)
        sharded = build_fleet_state(config)
        views = [sharded.view(lo, hi) for lo, hi in shard_bounds(6, 4)]
        for t in range(30):
            used = (t * 5) % (config.vcpus_per_node + 1)
            for s in (whole, per_node, sharded):
                s.used_vcpus[:] = used
            vectors.step(whole, t)
            for i in range(6):
                vectors.step_node(per_node, i, t)
            for view in views:
                vectors.step(view, t)
            assert_states_identical(whole, per_node)
            assert_states_identical(whole, sharded)

    def test_tier_energy_accumulates_under_margins(self):
        config = self.tiered_config(adopt_margins=True)
        vectors = FleetVectors(config)
        state = build_fleet_state(config)
        for t in range(50):
            vectors.step(state, t)
        assert np.all(state.refresh_energy_strong_j > 0)
        assert np.all(state.refresh_energy_normal_j > 0)
        assert np.all(state.refresh_energy_relaxed_j > 0)
        # Per-DIMM refresh energy falls down the tiers: strong lanes pay
        # nominal-rate refresh, relaxed lanes a fraction of it.
        per_strong = state.refresh_energy_strong_j.sum() / 1
        per_normal = state.refresh_energy_normal_j.sum() / 2
        per_relaxed = state.refresh_energy_relaxed_j.sum() / 1
        assert per_strong > per_normal > per_relaxed

    def test_tiered_margin_power_below_nominal(self):
        config = self.tiered_config(adopt_margins=True)
        vectors = FleetVectors(config)
        on = build_fleet_state(config)
        off = build_fleet_state(config)
        off.margin_on[:] = False
        vectors.step(on, 0)
        vectors.step(off, 0)
        assert np.all(on.power_w < off.power_w)

    def test_pre_tier_snapshot_loads_with_zero_fill(self):
        config = self.tiered_config()
        vectors = FleetVectors(config)
        state = build_fleet_state(config)
        for t in range(10):
            vectors.step(state, t)
        saved = state.state_dict()
        for name in ("refresh_energy_strong_j", "refresh_energy_normal_j",
                     "refresh_energy_relaxed_j", "retention_errors_normal",
                     "retention_errors_relaxed"):
            del saved[name]  # a snapshot from before the tier refactor
        restored = build_fleet_state(config)
        restored.load_state_dict(saved)
        assert not np.any(restored.retention_errors_normal)
        assert np.array_equal(restored.energy_j, state.energy_j)
