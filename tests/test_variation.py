"""Tests for process-variation models and population binning."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.variation import (
    DEFAULT_BINS,
    Bin,
    VariationModel,
    VariationParameters,
    bin_population,
    binning_yield,
    per_core_recoverable_fraction,
    sample_population,
)


class TestSampling:
    def test_deterministic_given_seed(self):
        a = sample_population(20, 4, seed=7)
        b = sample_population(20, 4, seed=7)
        assert [c.core_vmin_factor for c in a] == \
            [c.core_vmin_factor for c in b]

    def test_different_seeds_differ(self):
        a = sample_population(20, 4, seed=1)
        b = sample_population(20, 4, seed=2)
        assert [c.core_vmin_factor for c in a] != \
            [c.core_vmin_factor for c in b]

    def test_chip_ids_are_sequential(self):
        population = sample_population(10, 2, seed=0)
        assert [c.chip_id for c in population] == list(range(10))

    def test_factors_center_near_one(self):
        population = sample_population(500, 8, seed=3)
        all_vmin = [f for c in population for f in c.core_vmin_factor]
        assert np.mean(all_vmin) == pytest.approx(1.0, abs=0.01)

    def test_chips_are_heterogeneous(self):
        """Figure 1's premise: no two chips are alike."""
        population = sample_population(100, 4, seed=5)
        worst = {round(c.worst_vmin_factor(), 6) for c in population}
        assert len(worst) > 95

    def test_vmin_fmax_anticorrelation(self):
        """Slow silicon needs more voltage: the joint draw is negative."""
        population = sample_population(2000, 1, seed=9)
        vmin = np.array([c.core_vmin_factor[0] for c in population])
        fmax = np.array([c.core_fmax_factor[0] for c in population])
        rho = np.corrcoef(vmin, fmax)[0, 1]
        assert rho < -0.3

    def test_needs_at_least_one_core(self):
        with pytest.raises(ConfigurationError):
            VariationModel(seed=0).sample_chip(0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            VariationParameters(d2d_vmin_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            VariationParameters(vmin_fmax_correlation=2.0)


class TestChipSample:
    def test_worst_and_spread(self):
        population = sample_population(1, 4, seed=0)
        chip = population[0]
        assert chip.worst_vmin_factor() == max(chip.core_vmin_factor)
        assert chip.core_to_core_vmin_spread() == pytest.approx(
            max(chip.core_vmin_factor) - min(chip.core_vmin_factor))
        assert chip.worst_fmax_factor() == min(chip.core_fmax_factor)


class TestBinning:
    def test_every_chip_lands_in_exactly_one_bin(self):
        population = sample_population(300, 8, seed=1)
        binned = bin_population(population)
        total = sum(len(chips) for chips in binned.values())
        assert total == 300

    def test_binning_uses_worst_core(self):
        population = sample_population(200, 8, seed=2)
        binned = bin_population(population)
        for b in DEFAULT_BINS:
            for chip in binned[b.name]:
                assert chip.worst_vmin_factor() <= b.max_vmin_factor

    def test_discards_exceed_last_bin(self):
        population = sample_population(500, 8, seed=3)
        binned = bin_population(population)
        ceiling = max(b.max_vmin_factor for b in DEFAULT_BINS)
        for chip in binned["discard"]:
            assert chip.worst_vmin_factor() > ceiling

    def test_yield_between_zero_and_one(self):
        population = sample_population(500, 8, seed=4)
        y = binning_yield(bin_population(population))
        assert 0.5 < y < 1.0

    def test_empty_population_yield(self):
        assert binning_yield({"discard": []}) == 0.0


class TestRecovery:
    def test_recoverable_fraction_bounds(self):
        population = sample_population(2000, 8, seed=6)
        fraction = per_core_recoverable_fraction(population)
        assert 0.0 <= fraction <= 1.0

    def test_most_discards_recoverable_with_many_cores(self):
        """With 8 cores, a discard is usually dragged down by 1-2 weak
        cores — per-core EOPs recover the part (Section 5.A)."""
        population = sample_population(3000, 8, seed=7)
        fraction = per_core_recoverable_fraction(population)
        assert fraction > 0.5

    def test_no_discards_means_zero(self):
        population = sample_population(10, 2, seed=8)
        assert per_core_recoverable_fraction(
            population, discard_vmin_factor=10.0) == 0.0
