"""Tests for the LDBC-SNB-like graph workload."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads.ldbc import (
    InteractiveDriver,
    generate_social_graph,
    ldbc_workload,
    memory_trace_mb,
)


@pytest.fixture(scope="module")
def database():
    return generate_social_graph(scale_factor=0.1, seed=4)


@pytest.fixture
def driver(database):
    return InteractiveDriver(database, seed=1)


class TestGraphGeneration:
    def test_scale_controls_size(self):
        small = generate_social_graph(scale_factor=0.05, seed=0)
        large = generate_social_graph(scale_factor=0.2, seed=0)
        assert large.n_persons > small.n_persons

    def test_deterministic_given_seed(self):
        a = generate_social_graph(scale_factor=0.05, seed=7)
        b = generate_social_graph(scale_factor=0.05, seed=7)
        assert a.n_friendships == b.n_friendships
        assert a.n_posts == b.n_posts

    def test_degree_distribution_is_heavy_tailed(self, database):
        degrees = sorted(
            (database.graph.degree(n) for n in database.graph.nodes),
            reverse=True)
        mean = sum(degrees) / len(degrees)
        assert degrees[0] > 4 * mean  # hubs exist

    def test_forums_partition_some_members(self, database):
        assert len(database.forums) >= 5
        members = {p for forum in database.forums for p in forum}
        assert len(members) > database.n_persons * 0.5

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigurationError):
            generate_social_graph(scale_factor=0.0)


class TestQueries:
    def test_friends_of_friends_excludes_self_and_friends(self, driver,
                                                          database):
        person = max(database.graph.nodes,
                     key=lambda n: database.graph.degree(n))
        fof = driver.friends_of_friends(person)
        friends = set(database.graph.neighbors(person))
        assert person not in fof
        assert not friends.intersection(fof)
        assert len(fof) > 0

    def test_friendship_path_is_valid(self, driver, database):
        nodes = list(database.graph.nodes)
        path = driver.friendship_path(nodes[0], nodes[50])
        if path is not None:
            for a, b in zip(path, path[1:]):
                assert database.graph.has_edge(a, b)

    def test_popular_in_forum_is_sorted_by_posts(self, driver, database):
        top = driver.popular_in_forum(0, top_k=5)
        counts = [len(database.posts.get(p, [])) for p in top]
        assert counts == sorted(counts, reverse=True)

    def test_profile_lookup(self, driver, database):
        person = list(database.graph.nodes)[0]
        profile = driver.person_profile(person)
        assert profile["friends"] == database.graph.degree(person)

    def test_add_post_appends(self, driver, database):
        person = list(database.graph.nodes)[0]
        before = len(database.posts.get(person, []))
        driver.add_post(person)
        assert len(database.posts[person]) == before + 1

    def test_add_friendship_idempotent(self, driver, database):
        nodes = list(database.graph.nodes)
        a, b = nodes[0], nodes[1]
        database.graph.add_edge(a, b)
        assert driver.add_friendship(a, b) is False
        assert driver.add_friendship(a, a) is False


class TestDriverSessions:
    def test_session_counts_add_up(self, driver):
        stats = driver.run_session(n_operations=150)
        assert stats.total_operations == 150
        assert stats.short_reads > stats.complex_reads  # 80/10/10 mix
        assert stats.vertices_touched > 0

    def test_bad_mix_rejected(self, database):
        with pytest.raises(ConfigurationError):
            InteractiveDriver(database, mix=(0.5, 0.2, 0.2))


class TestMemoryTrace:
    def test_trace_ramps_then_fluctuates(self):
        trace = memory_trace_mb(1000.0, 100, seed=2)
        assert trace[0] < trace[30]                    # load ramp
        assert trace[30] == pytest.approx(1000.0, rel=0.15)
        assert np.std(trace[40:]) > 0                  # churn

    def test_trace_never_below_baseline(self):
        trace = memory_trace_mb(1000.0, 200, seed=3,
                                baseline_fraction=0.35)
        assert trace.min() >= 350.0 - 1e-9

    def test_rejects_short_traces(self):
        with pytest.raises(ConfigurationError):
            memory_trace_mb(1000.0, 1)


class TestWorkloadWrapper:
    def test_demand_scales_with_factor(self):
        small = ldbc_workload(scale_factor=1.0)
        large = ldbc_workload(scale_factor=4.0)
        assert large.demand.memory_mb == pytest.approx(
            4 * small.demand.memory_mb)
        assert "ldbc" in small.name
