"""Tests for workload abstractions, SPEC suite and DRAM patterns."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads import (
    ALL_PATTERNS,
    ALL_VIRUSES,
    IDLE,
    MARCHING,
    RANDOM,
    SPEC_NAMES,
    StressProfile,
    Workload,
    WorkloadSuite,
    generate_pattern_data,
    pattern_by_name,
    spec_suite,
    spec_workload,
    virus_suite,
)


class TestStressProfile:
    def test_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            StressProfile(1.5, 0.5, 0.5, 0.5, 0.5)
        with pytest.raises(ConfigurationError):
            StressProfile(0.5, -0.1, 0.5, 0.5, 0.5)

    def test_blend_interpolates(self):
        a = IDLE.profile
        b = StressProfile(1.0, 1.0, 1.0, 1.0, 1.0)
        mid = a.blend(b, 0.5)
        assert mid.droop_intensity == pytest.approx(
            (a.droop_intensity + 1.0) / 2)

    def test_blend_endpoints(self):
        a = IDLE.profile
        b = StressProfile(1.0, 1.0, 1.0, 1.0, 1.0)
        assert a.blend(b, 0.0) == a
        assert a.blend(b, 1.0) == b

    def test_overall_stress_orders_idle_below_virus(self):
        virus = ALL_VIRUSES[0].profile
        assert virus.overall_stress() > IDLE.profile.overall_stress()


class TestWorkload:
    def test_scaled_multiplies_duration(self):
        w = spec_workload("bzip2", duration_cycles=1e9)
        assert w.scaled(3.0).duration_cycles == pytest.approx(3e9)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            spec_workload("bzip2").scaled(0.0)

    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            Workload(name="", profile=IDLE.profile)


class TestSuite:
    def test_spec_suite_has_papers_benchmarks(self):
        suite = spec_suite()
        assert set(suite.names()) == set(SPEC_NAMES)
        assert len(suite) == 8

    def test_lookup_unknown_raises_with_hint(self):
        suite = spec_suite()
        with pytest.raises(KeyError) as excinfo:
            suite.get("linpack")
        assert "bzip2" in str(excinfo.value)

    def test_duplicate_names_rejected(self):
        w = spec_workload("mcf")
        with pytest.raises(ConfigurationError):
            WorkloadSuite("dup", [w, w])

    def test_most_stressful_is_zeusmp(self):
        """zeusmp is the paper suite's heaviest stressor by design."""
        assert spec_suite().most_stressful().name == "zeusmp"

    def test_virus_suite_outstresses_spec(self):
        """Section 3.B: viruses are a pathogenic worst case above any
        real-life workload, on every stress axis they target."""
        spec_max_droop = max(
            w.profile.droop_intensity for w in spec_suite())
        virus_max_droop = max(
            w.profile.droop_intensity for w in virus_suite())
        assert virus_max_droop > spec_max_droop
        spec_max_cache = max(
            w.profile.cache_pressure for w in spec_suite())
        virus_max_cache = max(
            w.profile.cache_pressure for w in virus_suite())
        assert virus_max_cache > spec_max_cache

    def test_spec_profiles_are_diverse(self):
        """The 8 benchmarks were chosen for 'diverse behaviors'."""
        suite = spec_suite()
        droop = [w.profile.droop_intensity for w in suite]
        assert max(droop) - min(droop) > 0.5
        sens = [w.profile.core_sensitivity for w in suite]
        assert max(sens) - min(sens) > 0.3


class TestPatterns:
    def test_catalog_lookup(self):
        assert pattern_by_name("random") is RANDOM
        with pytest.raises(KeyError):
            pattern_by_name("nonsense")

    def test_random_coverage_grows_with_passes(self):
        c1 = RANDOM.cumulative_coverage(1)
        c4 = RANDOM.cumulative_coverage(4)
        c16 = RANDOM.cumulative_coverage(16)
        assert c1 < c4 < c16 <= 1.0

    def test_marching_is_full_coverage_in_one_pass(self):
        assert MARCHING.cumulative_coverage(1) == 1.0
        assert MARCHING.cumulative_coverage(10) == 1.0

    def test_generate_data_shapes(self):
        for pattern in ALL_PATTERNS:
            data = generate_pattern_data(pattern, 16, seed=1)
            assert len(data) == 16

    def test_checkerboard_alternates(self):
        data = generate_pattern_data(pattern_by_name("checkerboard"), 4)
        assert data[0] != data[1]
        assert data[0] == data[2]

    def test_random_data_is_seed_deterministic(self):
        a = generate_pattern_data(RANDOM, 32, seed=9)
        b = generate_pattern_data(RANDOM, 32, seed=9)
        assert (a == b).all()
