"""Tests for the VM lifecycle."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hypervisor.vm import VirtualMachine, VMState, make_vm_fleet
from repro.workloads import ldbc_workload, spec_workload


@pytest.fixture
def vm():
    return VirtualMachine(name="vm0",
                          workload=spec_workload("bzip2",
                                                 duration_cycles=1e9))


class TestLifecycle:
    def test_starts_pending(self, vm):
        assert vm.state is VMState.PENDING
        assert not vm.is_active

    def test_start_then_run_to_completion(self, vm):
        vm.start()
        assert vm.state is VMState.RUNNING
        done = vm.execute(5e8)
        assert not done
        assert vm.progress == pytest.approx(0.5)
        done = vm.execute(6e8)
        assert done
        assert vm.state is VMState.COMPLETED

    def test_cannot_start_twice(self, vm):
        vm.start()
        with pytest.raises(ConfigurationError):
            vm.start()

    def test_cannot_execute_when_not_running(self, vm):
        with pytest.raises(ConfigurationError):
            vm.execute(1e8)

    def test_pause_resume(self, vm):
        vm.start()
        vm.pause()
        assert vm.state is VMState.PAUSED
        with pytest.raises(ConfigurationError):
            vm.execute(1e8)
        vm.resume()
        assert vm.state is VMState.RUNNING

    def test_fail_and_restart_resets_progress(self, vm):
        vm.start()
        vm.execute(5e8)
        vm.fail()
        assert vm.state is VMState.FAILED
        vm.restart()
        assert vm.state is VMState.RUNNING
        assert vm.executed_cycles == 0.0
        assert vm.restarts == 1

    def test_fail_on_completed_is_noop(self, vm):
        vm.start()
        vm.execute(2e9)
        vm.fail()
        assert vm.state is VMState.COMPLETED

    def test_restart_requires_failed(self, vm):
        vm.start()
        with pytest.raises(ConfigurationError):
            vm.restart()

    def test_progress_capped_at_one(self, vm):
        vm.start()
        vm.execute(5e9)
        assert vm.progress == 1.0


class TestMemoryUsage:
    def test_memory_includes_guest_os(self):
        vm = VirtualMachine(name="x", workload=ldbc_workload(),
                            guest_os_mb=500.0)
        assert vm.memory_usage_mb(progress=0.0) >= 500.0

    def test_memory_grows_during_load_phase(self):
        vm = VirtualMachine(name="x", workload=ldbc_workload())
        early = vm.memory_usage_mb(progress=0.01)
        loaded = vm.memory_usage_mb(progress=0.5)
        assert loaded > early

    def test_negative_guest_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine(name="x", workload=ldbc_workload(),
                           guest_os_mb=-1.0)


class TestFleet:
    def test_fleet_names_and_seeds_differ(self):
        fleet = make_vm_fleet(ldbc_workload(), 4)
        assert [vm.name for vm in fleet] == ["vm0", "vm1", "vm2", "vm3"]
        traces = [tuple(vm.application_memory_mb(20)) for vm in fleet]
        assert len(set(traces)) == 4

    def test_fleet_guest_memory(self):
        fleet = make_vm_fleet(ldbc_workload(), 2, guest_os_mb=1024.0)
        assert all(vm.guest_os_mb == 1024.0 for vm in fleet)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            make_vm_fleet(ldbc_workload(), 0)

    def test_vm_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine(name="", workload=ldbc_workload())
        with pytest.raises(ConfigurationError):
            VirtualMachine(name="x", workload=ldbc_workload(), vcpus=0)
