"""Calibration tests: the Section 6 campaigns must reproduce the paper.

These are the headline reproduction checks — each asserts the *shape* of
a paper result (see EXPERIMENTS.md for the exact paper-vs-measured
numbers).
"""

import pytest

from repro.characterization import (
    COMMERCIAL_DRAM_BER_TARGET,
    RefreshRelaxationCampaign,
    UndervoltingCampaign,
    refresh_share_vs_density,
    run_population_study,
)
from repro.core.exceptions import ConfigurationError
from repro.hardware import (
    ChipModel,
    intel_i5_4200u_spec,
    intel_i7_3970x_spec,
    standard_server_memory,
)
from repro.hardware.ecc import SECDED_BER_CAPABILITY
from repro.workloads import spec_suite


@pytest.fixture(scope="module")
def i5_campaign():
    chip = ChipModel(intel_i5_4200u_spec(), seed=11)
    return UndervoltingCampaign(chip, spec_suite()).run()


@pytest.fixture(scope="module")
def i7_campaign():
    chip = ChipModel(intel_i7_3970x_spec(), seed=22)
    return UndervoltingCampaign(chip, spec_suite()).run()


class TestTable2I5:
    """Paper Table 2, i5-4200U column: crash -10 %..-11.2 %,
    core-to-core 0 %..2.7 %, ECC errors 1..17."""

    def test_crash_offset_range(self, i5_campaign):
        low, high = i5_campaign.crash_offset_range()
        assert low == pytest.approx(0.100, abs=0.008)
        assert high == pytest.approx(0.112, abs=0.008)

    def test_core_to_core_range(self, i5_campaign):
        low, high = i5_campaign.core_variation_range()
        assert low == pytest.approx(0.0, abs=0.004)
        assert high == pytest.approx(0.027, abs=0.006)

    def test_ecc_errors_exposed(self, i5_campaign):
        counts = i5_campaign.ecc_count_range()
        assert counts is not None
        low, high = counts
        assert low == 1
        assert 10 <= high <= 30

    def test_ecc_onset_fifteen_millivolts_above_crash(self, i5_campaign):
        margin = i5_campaign.mean_ecc_onset_margin_v()
        assert margin == pytest.approx(0.015, abs=0.004)

    def test_table_rows_render(self, i5_campaign):
        rows = i5_campaign.table2_rows()
        assert len(rows) == 3
        assert rows[0][0].startswith("crash points")


class TestTable2I7:
    """Paper Table 2, i7-3970X column: crash -8.4 %..-15.4 %,
    core-to-core 3.7 %..8 %, no ECC exposure."""

    def test_crash_offset_range(self, i7_campaign):
        low, high = i7_campaign.crash_offset_range()
        assert low == pytest.approx(0.084, abs=0.008)
        assert high == pytest.approx(0.154, abs=0.008)

    def test_core_to_core_range(self, i7_campaign):
        low, high = i7_campaign.core_variation_range()
        assert low == pytest.approx(0.037, abs=0.008)
        assert high == pytest.approx(0.080, abs=0.010)

    def test_no_ecc_exposure(self, i7_campaign):
        assert i7_campaign.ecc_count_range() is None
        assert i7_campaign.mean_ecc_onset_margin_v() is None

    def test_high_end_part_has_wider_variation(self, i5_campaign,
                                               i7_campaign):
        """The 6-core part exposes more heterogeneity than the 2-core."""
        assert i7_campaign.core_variation_range()[1] > \
            i5_campaign.core_variation_range()[1]


class TestCampaignMechanics:
    def test_three_runs_per_benchmark_core(self, i5_campaign):
        assert len(i5_campaign.sweeps) == 8 * 2 * 3

    def test_crash_voltages_quantised_to_step(self, i5_campaign):
        for sweep in i5_campaign.sweeps[:10]:
            steps = (i5_campaign.nominal_voltage_v
                     - sweep.crash_voltage_v) / i5_campaign.step_v
            assert steps == pytest.approx(round(steps), abs=1e-6)

    def test_bad_configuration_rejected(self, i5_chip, spec_benchmarks):
        with pytest.raises(ConfigurationError):
            UndervoltingCampaign(i5_chip, spec_benchmarks, step_v=0.0)
        with pytest.raises(ConfigurationError):
            UndervoltingCampaign(i5_chip, spec_benchmarks,
                                 runs_per_benchmark=0)


class TestDramCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        memory = standard_server_memory(seed=5)
        campaign = RefreshRelaxationCampaign(memory, "channel1")
        return campaign.run()

    def test_error_free_up_to_1500ms(self, result):
        """Section 6.B: refresh can relax 64 ms -> 1.5 s with no errors."""
        assert result.max_error_free_interval_s() >= 1.5

    def test_five_second_ber_within_commercial_target(self, result):
        step = result.step_at(5.0)
        assert step.relaxation_factor == pytest.approx(78.1, abs=0.2)
        assert 1e-10 < step.cumulative_ber < 3e-9
        assert step.cumulative_ber <= COMMERCIAL_DRAM_BER_TARGET * 3
        assert step.within_secded_capability

    def test_secded_headroom_is_three_orders(self, result):
        """Paper: SECDED handles up to 1e-6, three orders above the 5 s
        BER."""
        step = result.step_at(5.0)
        assert SECDED_BER_CAPABILITY / step.cumulative_ber > 100

    def test_refresh_power_saving_grows_with_interval(self, result):
        savings = [result.refresh_power_saving_fraction(i)
                   for i in (0.128, 0.512, 1.5, 5.0)]
        assert savings == sorted(savings)
        assert savings[-1] > 0.95

    def test_campaign_restores_original_interval(self, result):
        memory = standard_server_memory(seed=6)
        campaign = RefreshRelaxationCampaign(memory, "channel2")
        campaign.run()
        assert memory.domain("channel2").refresh_interval_s == \
            pytest.approx(0.064)

    def test_reliable_domain_refused(self):
        memory = standard_server_memory(seed=7)
        with pytest.raises(ConfigurationError):
            RefreshRelaxationCampaign(memory, "channel0")


class TestRefreshShareTable:
    def test_shares_match_paper_anchors(self):
        rows = refresh_share_vs_density()
        by_density = {row.density_gbit: row for row in rows}
        assert by_density[2.0].refresh_share_nominal == pytest.approx(
            0.09, abs=0.005)
        assert by_density[32.0].refresh_share_nominal >= 0.34

    def test_relaxation_nearly_eliminates_share(self):
        rows = refresh_share_vs_density(relaxed_interval_s=1.5)
        assert all(row.refresh_share_relaxed < 0.03 for row in rows)
        assert all(
            row.refresh_share_relaxed < row.refresh_share_nominal / 10
            for row in rows
        )


class TestPopulationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_population_study(n_chips=800, n_cores=8, seed=42)

    def test_population_spreads_over_bins(self, study):
        counts = study.bin_counts()
        occupied = [name for name, n in counts.items() if n > 0]
        assert len(occupied) >= 4

    def test_yield_loss_exists(self, study):
        assert study.classical_yield() < 1.0

    def test_uniserver_recovers_discards(self, study):
        assert study.recoverable_discard_fraction() > 0.3

    def test_margin_waste_is_significant(self, study):
        """Worst-part provisioning wastes a few percent of voltage on the
        average core — the margin UniServer reclaims."""
        assert study.per_core_margin_waste() > 0.02

    def test_histogram_covers_population(self, study):
        counts, edges = study.vmin_factor_histogram()
        assert counts.sum() == study.n_chips
        assert len(edges) == len(counts) + 1

    def test_small_population_rejected(self):
        with pytest.raises(ConfigurationError):
            run_population_study(n_chips=5)
