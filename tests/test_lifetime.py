"""Tests for the lifetime/aging simulation."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.lifetime import LifetimeSimulator


@pytest.fixture(scope="module")
def periodic_result():
    sim = LifetimeSimulator(recharacterize_every_months=3.0, seed=4)
    return sim.run(years=5.0, epoch_months=6.0)


@pytest.fixture(scope="module")
def frozen_result():
    sim = LifetimeSimulator(recharacterize_every_months=None, seed=4)
    return sim.run(years=5.0, epoch_months=6.0)


class TestAgingTrajectory:
    def test_epochs_cover_the_lifetime(self, periodic_result):
        assert len(periodic_result.epochs) == 10
        assert periodic_result.final().age_years == pytest.approx(5.0)

    def test_drift_grows_monotonically(self, periodic_result):
        drifts = [e.mean_vmin_drift_mv for e in periodic_result.epochs]
        assert drifts == sorted(drifts)
        assert drifts[-1] > 5.0  # meaningful drift after 5 years

    def test_drift_is_sublinear(self, periodic_result):
        """BTI power law: the second half adds less than the first."""
        drifts = [e.mean_vmin_drift_mv for e in periodic_result.epochs]
        first_half = drifts[len(drifts) // 2 - 1]
        assert drifts[-1] < 2 * first_half


class TestRecharacterisationValue:
    def test_periodic_keeps_node_safe(self, periodic_result):
        assert periodic_result.first_unsafe_epoch(0.01) is None
        assert periodic_result.final().crash_rate <= 0.01

    def test_frozen_margins_go_unsafe(self, frozen_result):
        unsafe = frozen_result.first_unsafe_epoch(0.01)
        assert unsafe is not None
        assert frozen_result.final().crash_rate > 0.01

    def test_periodic_headroom_tracks_drift(self, periodic_result,
                                            frozen_result):
        assert periodic_result.final().mean_margin_headroom_mv > \
            frozen_result.final().mean_margin_headroom_mv

    def test_recharacterisation_counts(self, periodic_result,
                                       frozen_result):
        assert periodic_result.total_recharacterizations() > 5
        assert frozen_result.total_recharacterizations() == 1

    def test_safety_costs_a_little_power(self, periodic_result,
                                         frozen_result):
        """Tracking aging means retreating the margins: the safe node
        runs slightly hotter than the frozen (unsafe) one."""
        assert periodic_result.final().mean_relative_power >= \
            frozen_result.final().mean_relative_power
        # ...but stays far below nominal.
        assert periodic_result.final().mean_relative_power < 0.85


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LifetimeSimulator(recharacterize_every_months=0.0)
        with pytest.raises(ConfigurationError):
            LifetimeSimulator(crash_trials_per_epoch=1)

    def test_bad_run_arguments(self):
        sim = LifetimeSimulator(seed=1)
        with pytest.raises(ConfigurationError):
            sim.run(years=0.0)
        with pytest.raises(ConfigurationError):
            sim.run(years=1.0, epoch_months=0.0)

    def test_empty_result_rejected(self):
        from repro.core.lifetime import LifetimeResult
        with pytest.raises(ConfigurationError):
            LifetimeResult().final()
