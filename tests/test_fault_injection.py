"""Tests for the Figure 4 fault-injection campaign."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hypervisor.checkpoint import CheckpointManager
from repro.hypervisor.fault_injection import (
    FaultInjectionCampaign,
    run_figure4_campaign,
)
from repro.hypervisor.objects import ObjectCatalog, TOTAL_OBJECTS


@pytest.fixture(scope="module")
def figure4():
    return run_figure4_campaign(seed=7)


class TestCampaignMechanics:
    def test_every_object_injected_five_times(self, figure4):
        report = figure4.loaded_report
        assert report.total_injections == TOTAL_OBJECTS * 5

    def test_deterministic_given_seed(self):
        a = FaultInjectionCampaign(seed=3).run(loaded=True)
        b = FaultInjectionCampaign(seed=3).run(loaded=True)
        assert a.fatal_by_category == b.fatal_by_category

    def test_all_categories_reported(self, figure4):
        assert set(figure4.loaded_report.fatal_by_category) == \
            set(ObjectCatalog().categories())

    def test_executions_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjectionCampaign().run(loaded=True, executions=0)


class TestFigure4Shape:
    def test_load_amplification_is_order_of_magnitude(self, figure4):
        """Paper: 'an order of magnitude more Hypervisor crashes in the
        presence of active VMs'."""
        amplification = figure4.load_amplification()
        assert 5.0 < amplification < 30.0

    def test_fs_kernel_mm_net_are_most_sensitive(self, figure4):
        assert set(figure4.sensitive_categories(4)) == \
            {"fs", "kernel", "mm", "net"}

    def test_sensitivity_is_load_invariant(self, figure4):
        """Paper: 'the sensitive data structures appear to be the same,
        irrespective of the load'."""
        assert figure4.sensitivity_is_load_invariant(4)

    def test_init_and_vdso_are_nearly_inert(self, figure4):
        loaded = figure4.loaded_report.fatal_by_category
        assert loaded["init"] < loaded["fs"] / 20
        assert loaded["vdso"] < loaded["fs"] / 20

    def test_loaded_failures_scale_matches_paper_axis(self, figure4):
        """Figure 4's left axis tops out around 3 500 (fs with load)."""
        fs_loaded = figure4.loaded_report.fatal_by_category["fs"]
        assert 2500 < fs_loaded < 4000

    def test_unloaded_failures_scale_matches_paper_axis(self, figure4):
        """Figure 4's right axis tops out around 250."""
        worst_unloaded = max(
            figure4.unloaded_report.fatal_by_category.values())
        assert 100 < worst_unloaded < 400

    def test_crucial_marking_only_from_fatal_outcomes(self, figure4):
        report = figure4.loaded_report
        catalog = ObjectCatalog(seed=7)
        for object_id in list(report.crucial_objects)[:200]:
            assert catalog.get(object_id).crucial

    def test_fatal_rate_per_category(self, figure4):
        report = figure4.loaded_report
        assert report.fatal_rate("fs") > report.fatal_rate("vdso")
        assert 0 <= report.fatal_rate() <= 1


class TestCheckpointProtection:
    def test_checkpoints_eliminate_protected_fatalities(self):
        """Selective checkpointing converts fs/kernel/mm/net fatal
        outcomes into recoveries (the A3 resilience mechanism)."""
        catalog = ObjectCatalog(seed=11)
        campaign = FaultInjectionCampaign(catalog=catalog, seed=11)
        unprotected = campaign.run(loaded=True)
        protected = campaign.run(
            loaded=True,
            checkpoints=CheckpointManager(catalog))
        assert protected.total_fatal < unprotected.total_fatal * 0.35
        assert protected.total_recovered > 0
        for category in ("fs", "kernel", "mm", "net"):
            assert protected.fatal_by_category[category] == 0

    def test_unprotected_categories_still_fail(self):
        catalog = ObjectCatalog(seed=11)
        campaign = FaultInjectionCampaign(catalog=catalog, seed=11)
        protected = campaign.run(
            loaded=True, checkpoints=CheckpointManager(catalog))
        assert protected.fatal_by_category["drivers"] > 0
