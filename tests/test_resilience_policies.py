"""Tests for the graceful-degradation policy primitives."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    DegradationConfig,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay_s=10.0, multiplier=2.0,
                             max_delay_s=35.0, jitter_fraction=0.0)
        assert policy.delay_s(1) == 10.0
        assert policy.delay_s(2) == 20.0
        assert policy.delay_s(3) == 35.0  # capped, not 40
        assert policy.delay_s(4) == 35.0

    def test_jitter_stays_within_fraction_and_is_seeded(self):
        policy = RetryPolicy(base_delay_s=100.0, jitter_fraction=0.25)
        delays = [policy.delay_s(1, np.random.default_rng(7))
                  for _ in range(5)]
        # Same seeded generator every time: deterministic jitter.
        assert len(set(delays)) == 1
        assert 75.0 <= delays[0] <= 125.0
        spread = {policy.delay_s(1, np.random.default_rng(s))
                  for s in range(20)}
        assert len(spread) > 1  # jitter actually varies across streams

    def test_should_retry_respects_attempt_cap(self):
        policy = RetryPolicy(max_attempts=3, budget_s=1e9)
        assert policy.should_retry(1, first_attempt_at=0.0, now=10.0)
        assert policy.should_retry(2, first_attempt_at=0.0, now=10.0)
        assert not policy.should_retry(3, first_attempt_at=0.0, now=10.0)

    def test_should_retry_respects_elapsed_budget(self):
        policy = RetryPolicy(max_attempts=100, budget_s=60.0)
        assert policy.should_retry(1, first_attempt_at=0.0, now=59.0)
        assert not policy.should_retry(1, first_attempt_at=0.0, now=60.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(budget_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=1).delay_s(0)


class TestCircuitBreaker:
    def test_trips_after_threshold_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=100.0)
        breaker.record_failure(now=1.0)
        breaker.record_failure(now=2.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.record_failure(now=3.0) is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allows(now=50.0)

    def test_cooldown_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(now=0.0)
        assert breaker.allows(now=100.0)  # HALF_OPEN probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allows(now=101.0)  # probe outstanding

    def test_probe_failure_reopens_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(now=0.0)
        assert breaker.allows(now=100.0)
        breaker.record_failure(now=100.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert breaker.allows(now=200.0)
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows(now=201.0)
        assert breaker.consecutive_failures == 0

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(failure_threshold=0, cooldown_s=100.0)
        assert not breaker.enabled
        for t in range(10):
            breaker.record_failure(now=float(t))
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows(now=100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=-1)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=0.0)


class TestDegradationConfig:
    def test_on_enables_the_full_ladder(self):
        config = DegradationConfig.on()
        assert config.suspect_after_missed < config.down_after_missed
        assert config.retry.max_attempts > 1
        assert config.breaker_threshold > 0
        assert config.stale_info_fallback_s is not None
        assert config.failover_after_s is not None

    def test_off_is_the_naive_controller(self):
        config = DegradationConfig.off()
        assert config.retry.max_attempts == 1
        assert config.breaker_threshold == 0
        assert config.stale_info_fallback_s is None
        assert config.failover_after_s is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationConfig(suspect_after_missed=0)
        with pytest.raises(ConfigurationError):
            DegradationConfig(suspect_after_missed=3, down_after_missed=2)
        with pytest.raises(ConfigurationError):
            DegradationConfig(stale_info_fallback_s=0.0)
        with pytest.raises(ConfigurationError):
            DegradationConfig(failover_after_s=-1.0)
