"""Tests for per-bank cache characterisation and resizing."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.cache_banks import (
    BankedCache,
    CacheBank,
    ResizePolicy,
)


@pytest.fixture
def cache():
    return BankedCache(n_banks=16, bank_kb=128.0, design_vmin_v=0.72,
                       vmin_sigma_v=0.02, seed=2)


class TestBankStructure:
    def test_banks_have_distinct_vmins(self, cache):
        """The heterogeneity premise: every bank is different."""
        vmins = {b.vmin_v for b in cache.banks}
        assert len(vmins) == cache.n_banks

    def test_deterministic_given_seed(self):
        a = BankedCache(seed=5)
        b = BankedCache(seed=5)
        assert [x.vmin_v for x in a.banks] == [x.vmin_v for x in b.banks]

    def test_total_capacity(self, cache):
        assert cache.total_capacity_kb == pytest.approx(16 * 128.0)

    def test_worst_and_best_bracket_design(self, cache):
        assert cache.best_bank_vmin_v() < 0.72 < cache.worst_bank_vmin_v()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BankedCache(n_banks=0)
        with pytest.raises(ConfigurationError):
            BankedCache(bank_kb=0.0)


class TestCharacterisation:
    def test_revealed_vmin_at_or_above_true(self, cache):
        results = cache.characterize(measurement_noise_v=0.0, seed=1)
        for bank, verdict in zip(cache.banks, results):
            assert verdict.revealed_vmin_v >= bank.vmin_v - 1e-9

    def test_revealed_vmin_quantised_to_step(self, cache):
        step = 0.005
        results = cache.characterize(step_v=step,
                                     measurement_noise_v=0.0, seed=1)
        for verdict in results:
            ratio = verdict.revealed_vmin_v / step
            assert ratio == pytest.approx(round(ratio), abs=1e-6)

    def test_safe_voltage_adds_guard(self, cache):
        results = cache.characterize(guard_margin_v=0.015, seed=1)
        for verdict in results:
            assert verdict.safe_voltage_v == pytest.approx(
                verdict.revealed_vmin_v + 0.015)


class TestResizing:
    def test_full_capacity_at_high_voltage(self, cache):
        assert cache.capacity_fraction_at(0.90) == 1.0
        assert cache.miss_rate_at(0.90) == pytest.approx(0.02)

    def test_capacity_monotone_in_voltage(self, cache):
        fractions = [cache.capacity_fraction_at(v)
                     for v in (0.60, 0.68, 0.72, 0.78, 0.90)]
        assert fractions == sorted(fractions)

    def test_miss_rate_grows_as_banks_disable(self, cache):
        full = cache.miss_rate_at(0.90)
        resized = cache.miss_rate_at(0.71)
        assert resized > full

    def test_no_banks_means_bypass(self, cache):
        assert cache.capacity_fraction_at(0.50) == 0.0
        assert cache.miss_rate_at(0.50) == 1.0

    def test_resize_curve_rows(self, cache):
        curve = cache.resize_curve([0.90, 0.72, 0.60])
        assert len(curve) == 3
        assert curve[0][0] == 0.90  # descending voltage order

    def test_bad_miss_rate_rejected(self, cache):
        with pytest.raises(ConfigurationError):
            cache.miss_rate_at(0.8, base_miss_rate=0.0)


class TestResizePolicy:
    def test_policy_accepts_deeper_voltage_with_loose_cap(self, cache):
        strict = ResizePolicy(max_miss_rate=0.021)
        loose = ResizePolicy(max_miss_rate=0.5)
        candidates = [0.80, 0.76, 0.72, 0.70, 0.68]
        assert loose.min_voltage(cache, candidates) <= \
            strict.min_voltage(cache, candidates)

    def test_policy_falls_back_to_worst_bank(self, cache):
        policy = ResizePolicy(max_miss_rate=0.021)
        # Only hopeless candidates: fall back to whole-cache Vmin.
        assert policy.min_voltage(cache, [0.50]) == \
            cache.worst_bank_vmin_v()

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            ResizePolicy(max_miss_rate=0.0)
