"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.  Each is imported from the examples/
directory and its ``main()`` run with output captured.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "characterize_cpu",
    "dram_relaxation",
    "fault_injection_study",
    "edge_datacenter",
    "lifetime_aging",
    "security_assessment",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 200, f"example {name} produced almost no output"


def test_quickstart_reports_savings(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "energy saving" in out
    assert "StressLog" in out


def test_security_example_never_throttles_benchmarks(capsys):
    _load("security_assessment").main()
    out = capsys.readouterr().out
    assert "8/8 SPEC-like guests pass unthrottled" in out
    assert "power-virus guest flagged: True" in out
