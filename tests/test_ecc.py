"""Tests for the Hamming SECDED(72, 64) implementation.

These exercise *code properties*, not model assumptions: every single-bit
flip must be corrected at its exact position, every double-bit flip must
be flagged uncorrectable, and clean words must decode clean.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.hardware.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    decode,
    encode,
    inject_bit_flips,
    secded_word_failure_probability,
)

WORDS = st.integers(min_value=0, max_value=2 ** DATA_BITS - 1)
BITS = st.integers(min_value=0, max_value=CODEWORD_BITS - 1)


class TestEncode:
    def test_rejects_out_of_range_data(self):
        with pytest.raises(ConfigurationError):
            encode(2 ** 64)
        with pytest.raises(ConfigurationError):
            encode(-1)

    def test_codeword_fits_72_bits(self):
        for word in (0, 1, 2 ** 64 - 1, 0xDEADBEEFCAFEBABE):
            assert 0 <= encode(word) < 2 ** CODEWORD_BITS

    @given(WORDS)
    @settings(max_examples=50)
    def test_clean_roundtrip(self, word):
        result = decode(encode(word))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == word

    def test_distinct_words_have_distinct_codewords(self):
        seen = {encode(w) for w in range(512)}
        assert len(seen) == 512


class TestSingleBitErrors:
    def test_every_position_is_corrected(self):
        word = 0xA5A5A5A5A5A5A5A5
        codeword = encode(word)
        for bit in range(CODEWORD_BITS):
            corrupted = inject_bit_flips(codeword, [bit])
            result = decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED, f"bit {bit}"
            assert result.data == word, f"bit {bit}"
            assert result.flipped_bit == bit

    @given(WORDS, BITS)
    @settings(max_examples=100)
    def test_random_single_flip_corrected(self, word, bit):
        corrupted = inject_bit_flips(encode(word), [bit])
        result = decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == word


class TestDoubleBitErrors:
    @given(WORDS, st.tuples(BITS, BITS).filter(lambda t: t[0] != t[1]))
    @settings(max_examples=100)
    def test_double_flip_detected_not_miscorrected(self, word, bits):
        corrupted = inject_bit_flips(encode(word), list(bits))
        result = decode(corrupted)
        assert result.status is DecodeStatus.UNCORRECTABLE

    def test_exhaustive_double_flips_on_one_word(self):
        codeword = encode(0x0123456789ABCDEF)
        for i in range(0, CODEWORD_BITS, 7):
            for j in range(i + 1, CODEWORD_BITS, 5):
                result = decode(inject_bit_flips(codeword, [i, j]))
                assert result.status is DecodeStatus.UNCORRECTABLE


class TestInjection:
    def test_flip_is_involutive(self):
        codeword = encode(42)
        once = inject_bit_flips(codeword, [13])
        twice = inject_bit_flips(once, [13])
        assert twice == codeword

    def test_rejects_out_of_range_bit(self):
        with pytest.raises(ConfigurationError):
            inject_bit_flips(encode(0), [72])


class TestFailureProbability:
    def test_zero_ber_is_zero(self):
        assert secded_word_failure_probability(0.0) == 0.0

    def test_monotone_in_ber(self):
        probs = [secded_word_failure_probability(b)
                 for b in (1e-9, 1e-7, 1e-5, 1e-3)]
        assert probs == sorted(probs)

    def test_small_ber_scales_quadratically(self):
        p1 = secded_word_failure_probability(1e-6)
        p2 = secded_word_failure_probability(2e-6)
        assert p2 / p1 == pytest.approx(4.0, rel=0.01)

    def test_rejects_non_probability(self):
        with pytest.raises(ConfigurationError):
            secded_word_failure_probability(1.5)

    def test_decode_rejects_out_of_range_codeword(self):
        with pytest.raises(ConfigurationError):
            decode(2 ** CODEWORD_BITS)
