"""Tests for the Hamming SECDED(72, 64) implementation.

These exercise *code properties*, not model assumptions: every single-bit
flip must be corrected at its exact position, every double-bit flip must
be flagged uncorrectable, and clean words must decode clean.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.hardware.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    decode,
    encode,
    inject_bit_flips,
    secded_word_failure_probability,
)

WORDS = st.integers(min_value=0, max_value=2 ** DATA_BITS - 1)
BITS = st.integers(min_value=0, max_value=CODEWORD_BITS - 1)


class TestEncode:
    def test_rejects_out_of_range_data(self):
        with pytest.raises(ConfigurationError):
            encode(2 ** 64)
        with pytest.raises(ConfigurationError):
            encode(-1)

    def test_codeword_fits_72_bits(self):
        for word in (0, 1, 2 ** 64 - 1, 0xDEADBEEFCAFEBABE):
            assert 0 <= encode(word) < 2 ** CODEWORD_BITS

    @given(WORDS)
    @settings(max_examples=50)
    def test_clean_roundtrip(self, word):
        result = decode(encode(word))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == word

    def test_distinct_words_have_distinct_codewords(self):
        seen = {encode(w) for w in range(512)}
        assert len(seen) == 512


class TestSingleBitErrors:
    def test_every_position_is_corrected(self):
        word = 0xA5A5A5A5A5A5A5A5
        codeword = encode(word)
        for bit in range(CODEWORD_BITS):
            corrupted = inject_bit_flips(codeword, [bit])
            result = decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED, f"bit {bit}"
            assert result.data == word, f"bit {bit}"
            assert result.flipped_bit == bit

    @given(WORDS, BITS)
    @settings(max_examples=100)
    def test_random_single_flip_corrected(self, word, bit):
        corrupted = inject_bit_flips(encode(word), [bit])
        result = decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == word


class TestDoubleBitErrors:
    @given(WORDS, st.tuples(BITS, BITS).filter(lambda t: t[0] != t[1]))
    @settings(max_examples=100)
    def test_double_flip_detected_not_miscorrected(self, word, bits):
        corrupted = inject_bit_flips(encode(word), list(bits))
        result = decode(corrupted)
        assert result.status is DecodeStatus.UNCORRECTABLE

    def test_exhaustive_double_flips_on_one_word(self):
        codeword = encode(0x0123456789ABCDEF)
        for i in range(0, CODEWORD_BITS, 7):
            for j in range(i + 1, CODEWORD_BITS, 5):
                result = decode(inject_bit_flips(codeword, [i, j]))
                assert result.status is DecodeStatus.UNCORRECTABLE


class TestInjection:
    def test_flip_is_involutive(self):
        codeword = encode(42)
        once = inject_bit_flips(codeword, [13])
        twice = inject_bit_flips(once, [13])
        assert twice == codeword

    def test_rejects_out_of_range_bit(self):
        with pytest.raises(ConfigurationError):
            inject_bit_flips(encode(0), [72])


class TestFailureProbability:
    def test_zero_ber_is_zero(self):
        assert secded_word_failure_probability(0.0) == 0.0

    def test_monotone_in_ber(self):
        probs = [secded_word_failure_probability(b)
                 for b in (1e-9, 1e-7, 1e-5, 1e-3)]
        assert probs == sorted(probs)

    def test_small_ber_scales_quadratically(self):
        p1 = secded_word_failure_probability(1e-6)
        p2 = secded_word_failure_probability(2e-6)
        assert p2 / p1 == pytest.approx(4.0, rel=0.01)

    def test_rejects_non_probability(self):
        with pytest.raises(ConfigurationError):
            secded_word_failure_probability(1.5)

    def test_decode_rejects_out_of_range_codeword(self):
        with pytest.raises(ConfigurationError):
            decode(2 ** CODEWORD_BITS)


class TestSchemeModels:
    def test_secded_detects_but_never_corrects_doubles(self):
        from repro.hardware.ecc import SECDED
        assert SECDED.corrects([17])
        for pair in ([0, 1], [3, 4], [10, 40], [70, 71]):
            assert not SECDED.corrects(pair), pair
        assert SECDED.detect == 2

    def test_sec_daec_corrects_only_adjacent_doubles(self):
        from repro.hardware.ecc import SEC_DAEC
        assert SEC_DAEC.corrects([0, 1])
        assert SEC_DAEC.corrects([41, 42])
        assert not SEC_DAEC.corrects([41, 43])
        assert not SEC_DAEC.corrects([0, 72])
        assert not SEC_DAEC.corrects([1, 2, 3])

    def test_bch_overhead_math(self):
        from repro.hardware.ecc import BCH_DEC, BCH_TEC
        # Shortened BCH over GF(2^7): t·7 parity bits for 64 data bits.
        assert BCH_DEC.parity_bits == 2 * 7
        assert BCH_TEC.parity_bits == 3 * 7
        assert BCH_DEC.word_bits == 78
        assert BCH_TEC.word_bits == 85
        assert BCH_DEC.overhead_fraction == pytest.approx(14 / 64)
        assert BCH_DEC.corrects([5, 50])
        assert not BCH_DEC.corrects([5, 30, 50])
        assert BCH_TEC.corrects([5, 30, 50])

    def test_scheme_lookup(self):
        from repro.hardware.ecc import SEC_DAEC, scheme_by_name
        assert scheme_by_name("sec-daec") is SEC_DAEC
        with pytest.raises(ConfigurationError):
            scheme_by_name("chipkill")

    def test_corrects_rejects_out_of_word_positions(self):
        from repro.hardware.ecc import SECDED
        with pytest.raises(ConfigurationError):
            SECDED.corrects([72])

    def test_ue_probability_monotone_in_ber(self):
        from repro.hardware.ecc import ECC_SCHEMES
        for scheme in ECC_SCHEMES:
            probs = [scheme.uncorrectable_word_probability(b)
                     for b in (1e-12, 1e-9, 1e-6, 1e-3)]
            assert probs == sorted(probs), scheme.name

    def test_adjacent_fraction_shrinks_sec_daec_ue(self):
        from repro.hardware.ecc import SEC_DAEC, SECDED
        ber = 1e-6
        clustered = SEC_DAEC.uncorrectable_word_probability(
            ber, adjacent_fraction=0.9)
        uniform = SEC_DAEC.uncorrectable_word_probability(ber)
        assert clustered < uniform
        assert clustered < SECDED.uncorrectable_word_probability(ber)
        with pytest.raises(ConfigurationError):
            SEC_DAEC.uncorrectable_word_probability(
                ber, adjacent_fraction=1.5)


class TestSelector:
    def test_stricter_target_never_picks_weaker_scheme(self):
        from repro.hardware.ecc import (
            RETENTION_ADJACENT_FRACTION,
            EccSelector,
        )
        selector = EccSelector(
            adjacent_fraction=RETENTION_ADJACENT_FRACTION)
        ber = 1e-9
        targets = [1e-12, 1e-16, 1e-20, 1e-22]
        picks = [selector.select(ber, t) for t in targets]
        energies = [s.energy_pj_per_access for s in picks]
        assert energies == sorted(energies)

    def test_unmeetable_target_rejected(self):
        from repro.hardware.ecc import EccSelector
        with pytest.raises(ConfigurationError):
            EccSelector().select(0.2, 1e-30)

    def test_invalid_target_rejected(self):
        from repro.hardware.ecc import EccSelector
        with pytest.raises(ConfigurationError):
            EccSelector().select(1e-9, 0.0)

    def test_empty_selector_rejected(self):
        from repro.hardware.ecc import EccSelector
        with pytest.raises(ConfigurationError):
            EccSelector(schemes=())

    def test_selection_table_covers_all_schemes(self):
        from repro.hardware.ecc import ECC_SCHEMES, EccSelector
        table = EccSelector().selection_table(1e-9)
        assert len(table) == len(ECC_SCHEMES)
        assert [row["energy_pj_per_access"] for row in table] == sorted(
            row["energy_pj_per_access"] for row in table)
