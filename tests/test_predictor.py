"""Tests for the failure Predictor daemon."""

import numpy as np
import pytest

from repro.core.eop import OperatingPoint
from repro.core.exceptions import ConfigurationError, PredictionError
from repro.characterization import UndervoltingCampaign
from repro.daemons.predictor import (
    FailureDataset,
    LogisticModel,
    Predictor,
    dataset_from_campaign,
    make_features,
)
from repro.hardware import ChipModel, intel_i5_4200u_spec
from repro.workloads import spec_suite, spec_workload


@pytest.fixture(scope="module")
def campaign_data():
    chip = ChipModel(intel_i5_4200u_spec(), seed=17)
    suite = spec_suite()
    campaign = UndervoltingCampaign(chip, suite).run()
    dataset = dataset_from_campaign(campaign, suite, chip.spec.nominal)
    return chip, suite, dataset


class TestDataset:
    def test_campaign_dataset_has_both_classes(self, campaign_data):
        _, _, dataset = campaign_data
        assert 0.0 < dataset.crash_fraction() < 0.2

    def test_crash_examples_one_per_sweep(self, campaign_data):
        chip, suite, dataset = campaign_data
        n_sweeps = 8 * chip.n_cores * 3
        assert sum(dataset.labels) == n_sweeps

    def test_empty_dataset_rejected(self):
        with pytest.raises(PredictionError):
            FailureDataset().as_arrays()

    def test_feature_row_shape(self):
        nominal = OperatingPoint(1.0, 2e9)
        row = make_features(nominal.with_voltage(0.9), nominal,
                            spec_workload("mcf").profile)
        assert row.shape == (6,)
        assert row[0] == pytest.approx(-0.1)


class TestLogisticModel:
    def test_learns_linearly_separable_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(float)
        model = LogisticModel(epochs=500)
        model.fit(x, y)
        assert model.accuracy(x, y) > 0.95

    def test_single_class_rejected(self):
        x = np.ones((10, 2))
        with pytest.raises(PredictionError):
            LogisticModel().fit(x, np.zeros(10))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(PredictionError):
            LogisticModel().predict_proba(np.zeros(2))

    def test_probabilities_in_unit_interval(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(float)
        model = LogisticModel().fit(x, y)
        probs = model.predict_proba(x)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_bad_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            LogisticModel(learning_rate=0)
        with pytest.raises(ConfigurationError):
            LogisticModel(epochs=0)


class TestPredictorEndToEnd:
    @pytest.fixture(scope="class")
    def trained(self, campaign_data):
        chip, suite, dataset = campaign_data
        predictor = Predictor(chip.spec.nominal)
        predictor.ingest(dataset)
        predictor.train()
        return chip, predictor

    def test_accuracy_on_training_data(self, campaign_data):
        chip, _, dataset = campaign_data
        predictor = Predictor(chip.spec.nominal)
        predictor.ingest(dataset)
        model = predictor.train()
        x, y = dataset.as_arrays()
        assert model.accuracy(x, y) > 0.9

    def test_voltage_weight_is_dominant_and_positive_risk(self, trained):
        """Lower voltage => higher crash probability; the standardised
        voltage-offset weight must be strongly negative."""
        _, predictor = trained
        weights = predictor.model.feature_weights()
        assert weights["voltage_offset"] < 0
        assert abs(weights["voltage_offset"]) == max(
            abs(w) for w in weights.values())

    def test_predicted_probability_monotone_in_voltage(self, trained):
        chip, predictor = trained
        profile = spec_workload("zeusmp").profile
        nominal = chip.spec.nominal
        probs = [
            predictor.predict_failure(nominal.with_voltage(v), profile)
            for v in (0.84, 0.80, 0.76, 0.72)
        ]
        assert probs == sorted(probs)

    def test_advice_high_performance_keeps_frequency(self, trained):
        chip, predictor = trained
        advice = predictor.advise(spec_workload("mcf"),
                                  mode="high-performance",
                                  failure_budget=0.02)
        assert advice.point.frequency_hz == chip.spec.nominal.frequency_hz
        assert advice.point.voltage_v < chip.spec.nominal.voltage_v
        assert advice.predicted_failure_probability <= 0.02

    def test_advice_low_power_beats_high_performance_on_power(self, trained):
        chip, predictor = trained
        low = predictor.advise(spec_workload("mcf"), mode="low-power",
                               failure_budget=0.02)
        high = predictor.advise(spec_workload("mcf"),
                                mode="high-performance",
                                failure_budget=0.02)
        assert low.point.frequency_hz < chip.spec.nominal.frequency_hz
        assert low.relative_power < high.relative_power < 1.0

    def test_stressful_workload_gets_shallower_point(self, trained):
        """The advisor must respect workload droop: zeusmp cannot go as
        deep as mcf."""
        _, predictor = trained
        gentle = predictor.advise(spec_workload("mcf"),
                                  mode="high-performance",
                                  failure_budget=0.02)
        harsh = predictor.advise(spec_workload("zeusmp"),
                                 mode="high-performance",
                                 failure_budget=0.02)
        assert harsh.point.voltage_v > gentle.point.voltage_v

    def test_unknown_mode_rejected(self, trained):
        _, predictor = trained
        with pytest.raises(ConfigurationError):
            predictor.advise(spec_workload("mcf"), mode="turbo")

    def test_advice_before_training_rejected(self, campaign_data):
        chip, _, _ = campaign_data
        fresh = Predictor(chip.spec.nominal)
        with pytest.raises(PredictionError):
            fresh.advise(spec_workload("mcf"))

    def test_impossible_budget_falls_back_to_nominal(self, trained):
        chip, predictor = trained
        advice = predictor.advise(spec_workload("zeusmp"),
                                  mode="high-performance",
                                  failure_budget=1e-30)
        assert advice.point == chip.spec.nominal
