"""Tests for hypervisor QoS enforcement."""

import pytest

from repro.cloudmgr.sla import BRONZE, GOLD, SILVER
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError
from repro.daemons.infovector import ComponentMargin, MarginVector
from repro.hardware import build_uniserver_node
from repro.hypervisor import Hypervisor, VirtualMachine
from repro.hypervisor.qos import (
    QoSGuard,
    QoSRequirement,
    requirement_from_sla,
)
from repro.workloads import spec_workload


@pytest.fixture
def setup():
    clock = SimClock()
    platform = build_uniserver_node()
    hypervisor = Hypervisor(platform, clock, seed=4)
    hypervisor.boot()
    guard = QoSGuard(hypervisor)
    return platform, hypervisor, guard


def margin(component, point, pfail=1e-9):
    return ComponentMargin(
        component=component, safe_point=point,
        failure_probability=pfail, relative_power=0.7,
        stress_workload="virus",
    )


def vector(*margins):
    return MarginVector(timestamp=0.0, node="n", margins=tuple(margins))


class TestRequirements:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QoSRequirement(min_frequency_fraction=0.0)
        with pytest.raises(ConfigurationError):
            QoSRequirement(max_failure_probability=0.0)

    def test_from_sla(self):
        gold = requirement_from_sla(GOLD)
        bronze = requirement_from_sla(BRONZE)
        assert gold.min_frequency_fraction > bronze.min_frequency_fraction
        assert gold.max_failure_probability < \
            bronze.max_failure_probability


class TestCoreConstraints:
    def test_empty_core_is_unconstrained(self, setup):
        platform, hypervisor, guard = setup
        assert guard.core_frequency_floor(0) == 0.0
        assert guard.core_failure_ceiling(0) == 1.0

    def test_strictest_resident_wins(self, setup):
        platform, hypervisor, guard = setup
        gold_vm = VirtualMachine(name="gold", workload=spec_workload("mcf"))
        bronze_vm = VirtualMachine(name="bronze",
                                   workload=spec_workload("mcf"))
        hypervisor.create_vm(gold_vm)
        hypervisor.create_vm(bronze_vm)
        # Force both onto core 0 for the test.
        hypervisor._assignments["gold"] = 0
        hypervisor._assignments["bronze"] = 0
        guard.register("gold", requirement_from_sla(GOLD))
        guard.register("bronze", requirement_from_sla(BRONZE))
        assert guard.core_frequency_floor(0) == \
            GOLD.min_frequency_fraction
        assert guard.core_failure_ceiling(0) == GOLD.failure_budget

    def test_unregister(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="x", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        guard.register("x", requirement_from_sla(GOLD))
        guard.unregister("x")
        assert guard.requirement_for("x") is None


class TestMarginFiltering:
    def test_frequency_violating_margin_dropped(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="gold", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        core_id = hypervisor._assignments["gold"]
        guard.register("gold", requirement_from_sla(GOLD))  # floor 0.95
        nominal = platform.chip.spec.nominal
        slow = nominal.scaled(voltage_factor=0.85,
                              frequency_factor=0.6)
        filtered = guard.filter_margins(
            vector(margin(f"core{core_id}", slow)))
        assert filtered.margins == ()

    def test_voltage_only_margin_admitted(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="gold", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        core_id = hypervisor._assignments["gold"]
        guard.register("gold", requirement_from_sla(GOLD))
        nominal = platform.chip.spec.nominal
        undervolted = nominal.with_voltage(nominal.voltage_v * 0.88)
        filtered = guard.filter_margins(
            vector(margin(f"core{core_id}", undervolted, pfail=1e-9)))
        assert len(filtered.margins) == 1

    def test_reliability_cap_enforced(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="gold", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        core_id = hypervisor._assignments["gold"]
        guard.register("gold", requirement_from_sla(GOLD))  # cap 1e-7
        nominal = platform.chip.spec.nominal
        risky = margin(f"core{core_id}",
                       nominal.with_voltage(nominal.voltage_v * 0.85),
                       pfail=1e-5)
        assert guard.filter_margins(vector(risky)).margins == ()

    def test_unoccupied_cores_unconstrained(self, setup):
        platform, hypervisor, guard = setup
        nominal = platform.chip.spec.nominal
        slow = nominal.scaled(voltage_factor=0.85, frequency_factor=0.6)
        filtered = guard.filter_margins(vector(margin("core7", slow)))
        assert len(filtered.margins) == 1

    def test_domain_margins_pass_through(self, setup):
        platform, hypervisor, guard = setup
        nominal = platform.chip.spec.nominal
        relaxed = margin("channel1", nominal.with_refresh(1.5))
        assert len(guard.filter_margins(vector(relaxed)).margins) == 1

    def test_unoccupied_core_margin_passes_and_adopts(self, setup):
        """Satellite: a core with no resident VMs is unconstrained all
        the way through a governor transaction."""
        from repro.eop import EOPGovernor

        platform, hypervisor, guard = setup
        nominal = platform.chip.spec.nominal
        slow = nominal.scaled(voltage_factor=0.85, frequency_factor=0.6)
        governor = EOPGovernor(hypervisor, qos=guard)
        txn = governor.adopt(vector(margin("core7", slow)))
        assert txn.adopted == ["core7"]
        assert platform.core_point(7).frequency_hz == slow.frequency_hz

    def test_gold_tier_vetoes_aggressive_margin(self, setup):
        """Satellite: the gold floor vetoes a slow margin end to end —
        the governor transaction adopts nothing."""
        from repro.eop import EOPGovernor, EOPState

        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="gold", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        core_id = hypervisor._assignments["gold"]
        guard.register("gold", requirement_from_sla(GOLD))
        nominal = platform.chip.spec.nominal
        slow = nominal.scaled(voltage_factor=0.85, frequency_factor=0.6)
        governor = EOPGovernor(hypervisor, qos=guard)
        txn = governor.adopt(vector(margin(f"core{core_id}", slow)))
        assert txn.adopted == []
        assert platform.core_point(core_id) == nominal
        assert governor.record(f"core{core_id}") is None  # filtered out
        assert governor.counts()[EOPState.ADOPTED.value] == 0

    def test_unknown_component_margin_passes_filter(self, setup):
        """Satellite: margins naming unknown components survive the QoS
        filter untouched (adoption decides later), and malformed core
        names do not crash the core-id parse."""
        platform, hypervisor, guard = setup
        nominal = platform.chip.spec.nominal
        odd = vector(margin("fpga0", nominal.with_voltage(0.9)),
                     margin("coreX", nominal.with_voltage(0.9)))
        filtered = guard.filter_margins(odd)
        assert [m.component for m in filtered.margins] == ["fpga0", "coreX"]

    def test_unknown_component_skipped_by_governor(self, setup):
        """The governor drops unknown components from the transaction
        instead of raising."""
        from repro.eop import EOPGovernor

        platform, hypervisor, guard = setup
        nominal = platform.chip.spec.nominal
        governor = EOPGovernor(hypervisor, qos=guard)
        txn = governor.adopt(vector(margin("fpga0", nominal)))
        assert txn.adopted == []
        assert txn.skipped == ["fpga0"]
        assert governor.metrics.counter("eop.unknown_component") == 1.0


class TestCloudIntegration:
    def test_launch_registers_requirement(self):
        from repro.cloudmgr import CloudController, ComputeNode
        clock = SimClock()
        nodes = [ComputeNode(f"n{i}", clock, seed=i) for i in range(2)]
        cloud = CloudController(clock, nodes)
        vm = VirtualMachine(name="gold",
                            workload=spec_workload("mcf",
                                                   duration_cycles=1e12))
        placement = cloud.launch(vm, GOLD)
        node = cloud.nodes[placement.node]
        requirement = node.qos.requirement_for("gold")
        assert requirement is not None
        assert requirement.min_frequency_fraction == \
            GOLD.min_frequency_fraction

    def test_requirement_travels_with_migration(self):
        from repro.cloudmgr import CloudController, ComputeNode
        clock = SimClock()
        nodes = [ComputeNode(f"n{i}", clock, seed=i) for i in range(2)]
        cloud = CloudController(clock, nodes)
        vm = VirtualMachine(name="gold",
                            workload=spec_workload("mcf",
                                                   duration_cycles=1e13))
        placement = cloud.launch(vm, GOLD)
        source = cloud.nodes[placement.node]
        destination = next(n for n in nodes if n.name != source.name)
        cloud.migrations.migrate("gold", source, destination, GOLD)
        assert source.qos.requirement_for("gold") is None
        assert destination.qos.requirement_for("gold") is not None

    def test_completion_unregisters(self):
        from repro.cloudmgr import CloudController, ComputeNode
        clock = SimClock()
        nodes = [ComputeNode(f"n{i}", clock, seed=i) for i in range(2)]
        cloud = CloudController(clock, nodes)
        vm = VirtualMachine(name="quick",
                            workload=spec_workload("mcf",
                                                   duration_cycles=1e9))
        placement = cloud.launch(vm, SILVER)
        node = cloud.nodes[placement.node]
        cloud.run(5.0)
        assert node.qos.requirement_for("quick") is None


class TestAudit:
    def test_clean_configuration_has_no_violations(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="gold", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        guard.register("gold", requirement_from_sla(GOLD))
        assert guard.audit() == []

    def test_frequency_violation_detected(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="gold", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        core_id = hypervisor._assignments["gold"]
        guard.register("gold", requirement_from_sla(GOLD))
        nominal = platform.chip.spec.nominal
        platform.set_core_point(core_id, nominal.scaled(
            voltage_factor=0.9, frequency_factor=0.6))
        kinds = {v.kind for v in guard.audit()}
        assert "frequency" in kinds

    def test_reliability_violation_detected(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="gold", workload=spec_workload("zeusmp"))
        hypervisor.create_vm(vm)
        core_id = hypervisor._assignments["gold"]
        guard.register("gold", requirement_from_sla(GOLD))
        nominal = platform.chip.spec.nominal
        platform.set_core_point(
            core_id, nominal.with_voltage(nominal.voltage_v * 0.76))
        kinds = {v.kind for v in guard.audit()}
        assert "reliability" in kinds

    def test_unregistered_vms_not_audited(self, setup):
        platform, hypervisor, guard = setup
        vm = VirtualMachine(name="anon", workload=spec_workload("mcf"))
        hypervisor.create_vm(vm)
        nominal = platform.chip.spec.nominal
        platform.set_all_core_points(nominal.scaled(
            voltage_factor=0.9, frequency_factor=0.5))
        assert guard.audit() == []
