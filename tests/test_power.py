"""Tests for the core and DRAM power models."""

import pytest

from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S, OperatingPoint
from repro.core.exceptions import ConfigurationError
from repro.hardware.power import (
    CorePowerModel,
    DramPowerModel,
    energy_for_work,
)


@pytest.fixture
def model():
    return CorePowerModel(nominal_voltage_v=1.0)


@pytest.fixture
def nominal():
    return OperatingPoint(1.0, 2.0e9)


class TestCorePower:
    def test_dynamic_scales_with_v_squared_f(self, model, nominal):
        half = nominal.scaled(voltage_factor=0.7, frequency_factor=0.5)
        ratio = (model.dynamic_power_w(half)
                 / model.dynamic_power_w(nominal))
        assert ratio == pytest.approx(0.49 * 0.5)

    def test_paper_section_6d_arithmetic(self, model, nominal):
        """50 % frequency at -30 % voltage => ~75 % less power,
        ~50 % less energy for the same cycles."""
        edge = nominal.scaled(voltage_factor=0.7, frequency_factor=0.5)
        power_ratio = model.relative_dynamic_power(edge, nominal)
        energy_ratio = model.relative_dynamic_energy(edge, nominal)
        assert power_ratio == pytest.approx(0.245, abs=0.005)   # -75 %
        assert energy_ratio == pytest.approx(0.49, abs=0.01)    # -50 %

    def test_leakage_grows_with_voltage(self, model, nominal):
        low = model.leakage_power_w(nominal.with_voltage(0.8))
        high = model.leakage_power_w(nominal.with_voltage(1.1))
        assert high > model.leakage_power_w(nominal) > low

    def test_leakage_grows_with_temperature(self, model, nominal):
        cold = model.leakage_power_w(nominal, temperature_c=30.0)
        hot = model.leakage_power_w(nominal, temperature_c=80.0)
        assert hot > cold

    def test_total_is_sum(self, model, nominal):
        total = model.total_power_w(nominal, activity=0.5,
                                    temperature_c=50.0)
        expected = (model.dynamic_power_w(nominal, 0.5)
                    + model.leakage_power_w(nominal, 50.0))
        assert total == pytest.approx(expected)

    def test_activity_bounds(self, model, nominal):
        with pytest.raises(ConfigurationError):
            model.dynamic_power_w(nominal, activity=1.5)

    def test_idle_dynamic_power_is_zero(self, model, nominal):
        assert model.dynamic_power_w(nominal, activity=0.0) == 0.0


class TestEnergyForWork:
    def test_energy_is_power_times_duration(self, model, nominal):
        cycles = 2.0e9  # one second at 2 GHz
        energy = energy_for_work(model, nominal, cycles, activity=1.0)
        assert energy == pytest.approx(
            model.total_power_w(nominal, 1.0), rel=1e-9)

    def test_leakage_penalises_slow_execution(self, nominal):
        """With dominant leakage, racing to idle beats deep DVFS."""
        leaky = CorePowerModel(
            effective_capacitance_f=1e-10, leakage_at_nominal_w=20.0,
            nominal_voltage_v=1.0,
        )
        slow = nominal.scaled(voltage_factor=0.9, frequency_factor=0.25)
        fast = energy_for_work(leaky, nominal, 1e9)
        crawl = energy_for_work(leaky, slow, 1e9)
        assert crawl > fast

    def test_negative_cycles_rejected(self, model, nominal):
        with pytest.raises(ConfigurationError):
            energy_for_work(model, nominal, -1.0)


class TestDramPower:
    def test_refresh_share_2gbit_is_nine_percent(self):
        """Paper 6.B: refresh is 9 % of a 2 Gb device's power."""
        share = DramPowerModel(density_gbit=2.0).refresh_share()
        assert share == pytest.approx(0.09, abs=0.005)

    def test_refresh_share_32gbit_exceeds_34_percent(self):
        """Paper 6.B: >34 % projected for future 32 Gb devices."""
        share = DramPowerModel(density_gbit=32.0).refresh_share()
        assert share >= 0.34

    def test_refresh_share_monotone_in_density(self):
        shares = [DramPowerModel(density_gbit=d).refresh_share()
                  for d in (2, 4, 8, 16, 32)]
        assert shares == sorted(shares)

    def test_refresh_power_inverse_in_interval(self):
        model = DramPowerModel()
        nominal = model.refresh_power_w(NOMINAL_REFRESH_INTERVAL_S)
        relaxed = model.refresh_power_w(NOMINAL_REFRESH_INTERVAL_S * 10)
        assert relaxed == pytest.approx(nominal / 10)

    def test_relaxation_to_1500ms_saves_95_percent_of_refresh(self):
        model = DramPowerModel()
        saving = model.refresh_saving_w(1.5)
        assert saving / model.refresh_power_w() == pytest.approx(
            1 - 0.064 / 1.5, rel=1e-6)

    def test_at_density_preserves_coefficients(self):
        base = DramPowerModel(density_gbit=2.0)
        scaled = base.at_density(8.0)
        assert scaled.refresh_power_per_gbit_w == base.refresh_power_per_gbit_w
        assert scaled.density_gbit == 8.0

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            DramPowerModel().refresh_power_w(0.0)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(ConfigurationError):
            DramPowerModel(density_gbit=0.0)
