"""Tests for the chaos engine and the heartbeat health view."""

import pytest

from repro.cloudmgr import ComputeNode
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError
from repro.resilience import (
    ChaosEngine,
    FaultKind,
    FaultPlan,
    FaultSpec,
    NodeHealthView,
    NodeStatus,
)


def make_node(name="node0", seed=0):
    return ComputeNode(name, SimClock(), seed=seed)


class TestFaultSpec:
    def test_windowed_kinds_need_a_duration(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.HEARTBEAT_LOSS, "node0", start_s=10.0)
        spec = FaultSpec(FaultKind.NODE_CRASH, "node0", start_s=10.0)
        assert not spec.active(9.0)
        assert spec.active(10.0) and spec.active(1e9)

    def test_window_bounds(self):
        spec = FaultSpec(FaultKind.TELEMETRY_DROPOUT, "node0",
                         start_s=10.0, duration_s=5.0, magnitude=0.5)
        assert not spec.active(9.9)
        assert spec.active(10.0) and spec.active(14.9)
        assert not spec.active(15.0)

    def test_magnitude_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.TELEMETRY_DROPOUT, "node0",
                      start_s=0.0, duration_s=1.0, magnitude=1.5)


class TestFaultPlan:
    def test_random_plan_is_seed_deterministic(self):
        nodes = ["node0", "node1", "node2", "node3"]
        first = FaultPlan.random(nodes, 3600.0, seed=5)
        second = FaultPlan.random(nodes, 3600.0, seed=5)
        other = FaultPlan.random(nodes, 3600.0, seed=6)
        assert first.specs == second.specs
        assert first.specs != other.specs
        assert len(first) > 0

    def test_for_node_filters(self):
        plan = FaultPlan.random(["a", "b"], 7200.0, seed=1,
                                rate_per_hour=6.0)
        for spec in plan.for_node("a"):
            assert spec.node == "a"
        assert len(plan.for_node("a")) + len(plan.for_node("b")) \
            == len(plan)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random([], 100.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.random(["a"], 0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.random(["a"], 100.0, intensity=0.0)


class TestChaosEngine:
    def test_daemon_faults_follow_their_windows(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.HEALTHLOG_STALL, "node0", 10.0, 20.0),
            FaultSpec(FaultKind.PREDICTOR_CRASH, "node0", 10.0, 20.0),
            FaultSpec(FaultKind.STUCK_RECOVERY, "node0", 10.0, 20.0),
        ]))
        engine.apply([node], now=0.0)
        assert not node.healthlog.stalled and not node.predictor_down
        engine.apply([node], now=15.0)
        assert node.healthlog.stalled
        assert node.predictor_down
        assert node.recovery_stuck
        engine.apply([node], now=30.0)
        assert not node.healthlog.stalled and not node.predictor_down
        assert not node.recovery_stuck

    def test_node_crash_fires_exactly_once(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.NODE_CRASH, "node0", 10.0),
        ]))
        engine.apply([node], now=10.0)
        assert node.hypervisor.crashed
        node.hypervisor.reboot()
        engine.apply([node], now=20.0)
        assert not node.hypervisor.crashed  # one-shot, no re-crash

    def test_crash_loop_recrashes_within_window(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.CRASH_LOOP, "node0", 0.0, 100.0),
        ]))
        engine.apply([node], now=0.0)
        assert node.hypervisor.crashed
        node.hypervisor.reboot()
        engine.apply([node], now=50.0)
        assert node.hypervisor.crashed  # loops while the window lasts
        node.hypervisor.reboot()
        engine.apply([node], now=100.0)
        assert not node.hypervisor.crashed

    def test_heartbeat_loss_swallows_the_beat(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.HEARTBEAT_LOSS, "node0", 0.0, 100.0),
        ]))
        beat = node.heartbeat()
        assert beat is not None
        assert engine.filter_heartbeat(node, beat, now=50.0) is None
        assert engine.filter_heartbeat(node, beat, now=150.0) is beat

    def test_dropout_strips_payload_but_keeps_liveness(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.TELEMETRY_DROPOUT, "node0", 0.0, 100.0,
                      magnitude=1.0),
        ]))
        beat = node.heartbeat()
        filtered = engine.filter_heartbeat(node, beat, now=50.0)
        assert filtered is not None  # liveness survives
        assert filtered.risk is None
        assert filtered.vm_samples == ()
        assert filtered.node == beat.node

    def test_corruption_perturbs_metrics_within_bounds(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.TELEMETRY_CORRUPTION, "node0", 0.0,
                      100.0, magnitude=1.0),
        ]))
        beat = node.heartbeat()
        corrupted = engine.filter_heartbeat(node, beat, now=50.0)
        assert corrupted is not None
        assert 0.0 <= corrupted.metrics.utilization <= 1.0
        assert 0.0 <= corrupted.metrics.reliability <= 1.0
        assert corrupted.metrics.power_w >= 0.0
        # Capacity numbers are not corrupted (they gate placement).
        assert corrupted.metrics.free_vcpus == beat.metrics.free_vcpus

    def test_migration_failure_is_window_scoped(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.MIGRATION_FAILURE, "node0", 0.0, 100.0,
                      magnitude=1.0),
        ]))
        assert engine.migration_should_fail(node, "node1", now=50.0)
        assert not engine.migration_should_fail(node, "node1", now=150.0)
        assert engine.injections[FaultKind.MIGRATION_FAILURE.value] == 1

    def test_injection_counts_accumulate(self):
        node = make_node()
        engine = ChaosEngine(FaultPlan([
            FaultSpec(FaultKind.HEARTBEAT_LOSS, "node0", 0.0, 100.0),
        ]))
        beat = node.heartbeat()
        engine.filter_heartbeat(node, beat, now=10.0)
        engine.filter_heartbeat(node, beat, now=20.0)
        assert engine.injections[FaultKind.HEARTBEAT_LOSS.value] == 2
        assert "heartbeat_loss=2" in engine.describe()


class TestNodeHealthView:
    def test_suspicion_ladder(self):
        health = NodeHealthView(suspect_after_missed=2,
                                down_after_missed=3)
        view = health.register("node0")
        assert view.state is NodeStatus.HEALTHY
        assert health.note_missed("node0") is NodeStatus.HEALTHY
        assert health.note_missed("node0") is NodeStatus.SUSPECT
        assert health.note_missed("node0") is NodeStatus.DOWN

    def test_heartbeat_resets_the_ladder(self):
        health = NodeHealthView()
        health.register("node0")
        node = make_node()
        for _ in range(5):
            health.note_missed("node0")
        assert health.view("node0").state is NodeStatus.DOWN
        previous = health.observe(node.heartbeat())
        assert previous is NodeStatus.DOWN
        assert health.view("node0").state is NodeStatus.HEALTHY
        assert health.view("node0").missed == 0

    def test_quarantine_is_sticky_until_release(self):
        health = NodeHealthView()
        health.register("node0")
        node = make_node()
        health.quarantine("node0")
        health.observe(node.heartbeat())  # a heartbeat is not parole
        assert health.view("node0").state is NodeStatus.QUARANTINED
        health.note_missed("node0")
        assert health.view("node0").state is NodeStatus.QUARANTINED
        health.release("node0")
        assert health.view("node0").state is NodeStatus.DOWN
        health.observe(node.heartbeat())
        assert health.view("node0").state is NodeStatus.HEALTHY

    def test_schedulable_requires_health_and_data(self):
        health = NodeHealthView()
        health.register("node0")
        health.register("node1")
        node = make_node()
        health.observe(node.heartbeat())
        names = [v.name for v in health.schedulable_views()]
        assert names == ["node0"]  # node1 never heartbeated

    def test_views_are_name_sorted(self):
        health = NodeHealthView()
        for name in ("b", "a", "c"):
            health.register(name)
        assert [v.name for v in health.views()] == ["a", "b", "c"]

    def test_duplicate_registration_rejected(self):
        health = NodeHealthView()
        health.register("node0")
        with pytest.raises(ConfigurationError):
            health.register("node0")

    def test_view_reservations_debit_capacity(self):
        health = NodeHealthView()
        health.register("node0")
        node = make_node()
        health.observe(node.heartbeat())
        view = health.view("node0")
        before = view.free_vcpus()
        view.reserve(2, 1024.0)
        assert view.free_vcpus() == before - 2
        # The next heartbeat clears optimistic reservations.
        health.observe(node.heartbeat())
        assert view.free_vcpus() == before


class TestNodeViewWindowedReliability:
    @staticmethod
    def _view_with_reports(reports):
        from dataclasses import replace

        health = NodeHealthView()
        health.register("node0")
        view = health.view("node0")
        template = make_node().heartbeat()
        for stamp, reliability in reports:
            view.observe(replace(
                template, timestamp=stamp,
                metrics=replace(template.metrics,
                                reliability=reliability)))
        return view

    def test_window_excludes_old_reports(self):
        view = self._view_with_reports(
            [(0.0, 0.5), (1000.0, 0.9), (2000.0, 0.95)])
        # Anchored at the newest report (t=2000): a 1500 s window
        # covers t >= 500 and must not see the 0.5 dip at t=0.
        assert view.reliability(window_s=1500.0) == 0.9
        assert view.reliability(window_s=50.0) == 0.95

    def test_window_returns_minimum_inside(self):
        view = self._view_with_reports(
            [(0.0, 0.5), (1000.0, 0.9), (2000.0, 0.95)])
        assert view.reliability(window_s=3600.0) == 0.5
        assert view.reliability() == 0.5  # default window is 3600 s

    def test_window_must_be_positive(self):
        view = self._view_with_reports([(0.0, 1.0)])
        with pytest.raises(ConfigurationError):
            view.reliability(window_s=0.0)

    def test_reports_survive_state_dict_round_trip(self):
        view = self._view_with_reports([(0.0, 0.4), (100.0, 0.9)])
        restored = NodeHealthView()
        restored.register("node0")
        restored.view("node0").load_state_dict(view.state_dict())
        assert restored.view("node0").reliability(window_s=200.0) == 0.4

    def test_old_snapshots_without_reports_still_load(self):
        view = self._view_with_reports([(0.0, 0.4)])
        state = view.state_dict()
        del state["reliability_reports"]
        restored = NodeHealthView()
        restored.register("node0")
        restored.view("node0").load_state_dict(state)
        # Without history the latest reported metric answers.
        assert restored.view("node0").reliability() == 0.4
