"""Tests for the multi-horizon failure predictor and its harvest path."""

import numpy as np
import pytest

from repro.cloudmgr import (
    ComputeNode,
    HorizonRisk,
    HorizonRiskReport,
    MultiHorizonPredictor,
    ThresholdFailurePredictor,
    node_features,
    score_harvest,
    train_from_observations,
)
from repro.cloudmgr.scheduler import risk_aware_weigher
from repro.cloudmgr.telemetry import TelemetryService
from repro.core.clock import SimClock
from repro.core.exceptions import PredictionError
from repro.resilience.health import (
    heartbeat_from_dict,
    heartbeat_to_dict,
)


def _report(at_risk_15m=False, probability=0.7, confidence=0.8):
    return HorizonRiskReport(
        node="n0",
        horizons=(
            HorizonRisk(horizon="15m", horizon_s=900.0,
                        probability=probability, confidence=confidence,
                        at_risk=at_risk_15m,
                        contributors=("reliability",)),
            HorizonRisk(horizon="1h", horizon_s=3600.0,
                        probability=0.2, confidence=0.4, at_risk=False),
            HorizonRisk(horizon="4h", horizon_s=14400.0,
                        probability=0.1, confidence=0.2, at_risk=False),
        ),
    )


def _observation(node, timestamp, reliability, labels, lead_s=None):
    full = {"15m": None, "1h": None, "4h": None}
    full.update(labels)
    return {
        "node": node,
        "timestamp": timestamp,
        "features": [0.0, reliability, 0.5, 0.5, 0.0],
        "labels": full,
        "lead_s": lead_s,
        "domains": {},
    }


class TestNodeFeatureRegressions:
    def test_all_cores_parked_is_not_max_margin(self):
        """An idle chip spends no margin (the empty-cores regression)."""
        clock = SimClock()
        node = ComputeNode("n0", clock)
        for core in node.platform.chip.cores:
            core.isolate()
        assert not node.platform.chip.active_cores()
        features = node_features(node, TelemetryService())
        assert features[2] == 0.0  # voltage_margin_used
        verdict = ThresholdFailurePredictor().assess(
            node, TelemetryService())
        assert "margin" not in verdict.reason

    def test_zero_dram_domains_does_not_raise(self):
        """max() over no domains raised ValueError (the empty-domains
        regression)."""
        clock = SimClock()
        node = ComputeNode("n0", clock)
        node.platform.memory.domains = lambda: []
        features = node_features(node, TelemetryService())
        assert features[3] == 0.0  # refresh_relaxation


class TestHorizonThresholds:
    def test_farther_horizons_demand_near_certainty(self):
        predictor = MultiHorizonPredictor(threshold=0.5)
        assert predictor.horizon_threshold(900.0) == pytest.approx(0.5)
        assert predictor.horizon_threshold(3600.0) == pytest.approx(0.875)
        assert predictor.horizon_threshold(14400.0) == \
            pytest.approx(0.96875)

    def test_nearest_at_risk_and_urgency(self):
        report = _report(at_risk_15m=True, probability=0.7)
        nearest = report.nearest_at_risk()
        assert nearest is not None and nearest.horizon == "15m"
        assert report.urgency() == (900.0, -0.7)
        calm = _report(at_risk_15m=False)
        assert calm.nearest_at_risk() is None
        assert calm.urgency()[0] == float("inf")


class TestCensoredLabels:
    def test_censored_horizon_keeps_fallback(self):
        """A horizon whose labels are all censored must not train."""
        predictor = MultiHorizonPredictor(min_observations=10)
        for i in range(20):
            predictor.observe(
                np.array([0.0, 1.0 - 0.04 * i, 0.5, 0.5, 0.0]),
                {"15m": i % 2 == 0, "1h": i % 2 == 0, "4h": None})
        outcome = predictor.train()
        assert outcome["15m"] and outcome["1h"]
        assert not outcome["4h"]
        assert "4h" not in predictor.trained_horizons()

    def test_censored_rows_are_dropped_per_horizon(self):
        """Rows censored at one horizon still train the others."""
        predictor = MultiHorizonPredictor(min_observations=10)
        for _ in range(9):
            predictor.observe(
                np.array([0.0, 0.2, 0.5, 0.5, 0.0]),
                {"15m": True, "1h": None, "4h": None})
        for _ in range(9):
            predictor.observe(
                np.array([0.0, 1.0, 0.5, 0.5, 0.0]),
                {"15m": False, "1h": None, "4h": None})
        # 18 rows at 15m, but only 9 uncensored would remain at 1h —
        # below min_observations, so 1h must refuse to train.
        outcome = predictor.train()
        assert outcome["15m"]
        assert not outcome["1h"]

    def test_training_needs_enough_rows(self):
        predictor = MultiHorizonPredictor(min_observations=10)
        predictor.observe(np.zeros(5), {"15m": True})
        with pytest.raises(PredictionError):
            predictor.train()


class TestScoreHarvest:
    def test_confusion_counts_and_lead_math(self):
        """Hand-checkable scoring against the untrained fallback.

        The fallback hazard for reliability r < 0.9 is (0.9 - r), so at
        threshold 0.35 a row with r=0.3 predicts positive (hazard 0.6)
        and a row with r=1.0 predicts negative.
        """
        predictor = MultiHorizonPredictor(threshold=0.35)
        observations = [
            _observation("a", 0.0, 0.3, {"15m": True}, lead_s=600.0),
            _observation("a", 60.0, 0.3, {"15m": False}),
            _observation("a", 120.0, 1.0, {"15m": True}, lead_s=120.0),
            _observation("a", 180.0, 1.0, {"15m": False}),
            _observation("a", 240.0, 0.3, {"15m": None}),  # censored
        ]
        scores = score_harvest(predictor, observations)
        near = scores["horizons"]["15m"]
        assert (near["tp"], near["fp"], near["fn"], near["tn"]) \
            == (1, 1, 1, 1)
        assert near["censored"] == 1
        assert near["precision"] == pytest.approx(0.5)
        assert near["recall"] == pytest.approx(0.5)
        # Two distinct ledger events; only the low-reliability one was
        # detected, with its full 600 s of warning.
        assert near["events"] == 2
        assert near["detected"] == 1
        assert near["mean_lead_s"] == pytest.approx(600.0)

    def test_scoring_uses_horizon_scaled_thresholds(self):
        predictor = MultiHorizonPredictor(threshold=0.35)
        scores = score_harvest(
            predictor, [_observation("a", 0.0, 0.3,
                                     {"15m": True, "1h": True})])
        assert scores["horizons"]["15m"]["at_risk_threshold"] == \
            pytest.approx(0.35)
        assert scores["horizons"]["1h"]["at_risk_threshold"] == \
            pytest.approx(predictor.horizon_threshold(3600.0))
        # hazard 0.6 passes the 15m threshold but not the scaled 1h one.
        assert scores["horizons"]["15m"]["tp"] == 1
        assert scores["horizons"]["1h"]["fn"] == 1


class TestTrainedPredictor:
    def _trained(self, threshold=0.35):
        observations = []
        # Low reliability precedes a crash; high reliability does not.
        for i in range(30):
            observations.append(_observation(
                "a", 60.0 * i, 0.25,
                {"15m": True, "1h": True, "4h": None}, lead_s=300.0))
            observations.append(_observation(
                "a", 60.0 * i + 30.0, 1.0,
                {"15m": False, "1h": False, "4h": None}))
        return train_from_observations(observations, threshold=threshold)

    def test_learns_low_reliability_hazard(self):
        predictor = self._trained()
        risky = predictor.probabilities(
            np.array([0.0, 0.25, 0.5, 0.5, 0.0]))
        healthy = predictor.probabilities(
            np.array([0.0, 1.0, 0.5, 0.5, 0.0]))
        assert risky["15m"][0] > healthy["15m"][0]
        assert risky["15m"][0] >= 0.35

    def test_report_flags_only_scaled_horizons(self):
        predictor = self._trained()
        features = np.array([0.0, 0.25, 0.5, 0.5, 0.0])
        probabilities = predictor.probabilities(features)
        # The same probability that alarms at 15m must clear a much
        # higher bar at 4h (untrained there -> fallback, conf 0.25).
        assert probabilities["15m"][0] >= \
            predictor.horizon_threshold(900.0)
        assert probabilities["4h"][0] < \
            predictor.horizon_threshold(14400.0)


class TestHeartbeatRoundTrip:
    def test_report_survives_heartbeat_serialization(self):
        clock = SimClock()
        node = ComputeNode("n0", clock)
        beat = node.heartbeat()
        assert beat is not None and beat.horizon_report is not None
        rebuilt = heartbeat_from_dict(heartbeat_to_dict(beat))
        assert rebuilt.horizon_report == beat.horizon_report

    def test_legacy_heartbeat_dict_without_report(self):
        clock = SimClock()
        node = ComputeNode("n0", clock)
        state = heartbeat_to_dict(node.heartbeat())
        del state["horizon_report"]
        assert heartbeat_from_dict(state).horizon_report is None


class TestRiskAwareWeigher:
    class _FakeNode:
        def __init__(self, report):
            self._report = report

        def risk_report(self):
            return self._report

    def test_no_report_scores_neutral(self):
        assert risk_aware_weigher(self._FakeNode(None), None, None) \
            == pytest.approx(0.5)

    def test_calm_report_scores_clean(self):
        """Below-threshold probabilities must not perturb placement."""
        node = self._FakeNode(_report(at_risk_15m=False,
                                      probability=0.49))
        assert risk_aware_weigher(node, None, None) == pytest.approx(1.0)

    def test_at_risk_report_is_penalized(self):
        node = self._FakeNode(_report(at_risk_15m=True, probability=0.7,
                                      confidence=0.8))
        assert risk_aware_weigher(node, None, None) == \
            pytest.approx(1.0 - 0.7 * 0.8)
