"""Tests for hypervisor memory accounting and reliable-domain placement."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware import standard_server_memory
from repro.hypervisor.memory import (
    FootprintSample,
    MemoryAccountant,
    PlacementPolicy,
)


class TestAccountant:
    def test_footprint_grows_per_vm(self):
        acc = MemoryAccountant(base_mb=200.0, per_vm_mb=40.0)
        assert acc.hypervisor_footprint_mb(0) == 200.0
        assert acc.hypervisor_footprint_mb(4) == 360.0

    def test_fraction_computation(self):
        sample = FootprintSample(timestamp=0.0, hypervisor_mb=100.0,
                                 vm_mb=400.0, application_mb=500.0)
        assert sample.hypervisor_fraction == pytest.approx(0.1)
        assert sample.total_mb == 1000.0

    def test_max_fraction_over_run(self):
        acc = MemoryAccountant(base_mb=100.0, per_vm_mb=10.0)
        acc.sample(0.0, 2, vm_mb=600.0, application_mb=1000.0)
        acc.sample(1.0, 2, vm_mb=600.0, application_mb=200.0)
        # Second sample has the smaller denominator => larger fraction.
        assert acc.max_hypervisor_fraction() == pytest.approx(
            120.0 / 920.0)

    def test_series_rows(self):
        acc = MemoryAccountant()
        acc.sample(0.0, 1, 300.0, 500.0)
        rows = acc.series()
        assert len(rows) == 1
        t, hyp, vm, app, frac = rows[0]
        assert (t, vm, app) == (0.0, 300.0, 500.0)
        assert frac == pytest.approx(hyp / (hyp + vm + app))

    def test_no_samples_is_an_error(self):
        with pytest.raises(ConfigurationError):
            MemoryAccountant().max_hypervisor_fraction()

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryAccountant(base_mb=-1.0)


class TestPlacement:
    @pytest.fixture
    def memory(self):
        return standard_server_memory(n_channels=4, dimm_gb=8.0, seed=2)

    def test_critical_goes_to_reliable_domain(self, memory):
        policy = PlacementPolicy(memory)
        allocation = policy.place("hypervisor", 400.0, critical=True)
        assert allocation.domain == "channel0"
        assert policy.critical_exposure_mb() == 0.0

    def test_vm_memory_avoids_reliable_domain(self, memory):
        policy = PlacementPolicy(memory)
        for i in range(6):
            allocation = policy.place(f"vm{i}", 1000.0)
            assert allocation.domain != "channel0"

    def test_disabled_policy_exposes_critical_state(self, memory):
        """The A3 ablation configuration."""
        policy = PlacementPolicy(memory, use_reliable_domain=False)
        policy.place("hypervisor", 400.0, critical=True)
        memory.relax_all(1.5, keep_reliable_nominal=False)
        assert policy.critical_exposure_mb() > 0.0

    def test_release_frees_allocations(self, memory):
        policy = PlacementPolicy(memory)
        policy.place("vm0", 1000.0)
        policy.place("vm0", 500.0)
        assert policy.release("vm0") == 2
        assert policy.allocations == []

    def test_out_of_memory_rejected(self, memory):
        policy = PlacementPolicy(memory)
        with pytest.raises(ConfigurationError):
            policy.place("huge", 64 * 1024.0)  # 64 GB > any domain

    def test_spreads_to_emptiest_domain(self, memory):
        policy = PlacementPolicy(memory)
        first = policy.place("vm0", 4000.0)
        second = policy.place("vm1", 4000.0)
        assert first.domain != second.domain

    def test_error_hit_probability_tracks_critical_share(self, memory):
        policy = PlacementPolicy(memory, use_reliable_domain=False)
        policy.place("hypervisor", 1000.0, critical=True)
        domain = policy.allocations[0].domain
        rng = np.random.default_rng(0)
        hits = sum(policy.error_hits_critical(domain, rng)
                   for _ in range(500))
        assert hits == 500  # only critical data in the domain

    def test_error_in_unused_domain_is_harmless(self, memory):
        policy = PlacementPolicy(memory)
        rng = np.random.default_rng(0)
        assert policy.error_hits_critical("channel2", rng) is False

    def test_zero_size_rejected(self, memory):
        with pytest.raises(ConfigurationError):
            PlacementPolicy(memory).place("x", 0.0)


class TestTieredPlacement:
    @pytest.fixture
    def tiered(self):
        from repro.hardware import tiered_server_memory
        return tiered_server_memory(seed=7)

    def test_classes_land_on_their_tiers(self, tiered):
        from repro.hypervisor.memory import (
            CLASS_APPLICATION,
            CLASS_HYPERVISOR,
            CLASS_VM_CRITICAL,
            CLASS_VM_DATA,
        )
        policy = PlacementPolicy(tiered)
        expect = {
            CLASS_HYPERVISOR: "strong",
            CLASS_VM_CRITICAL: "normal",
            CLASS_VM_DATA: "relaxed",
            CLASS_APPLICATION: "relaxed",
        }
        for cls, tier in expect.items():
            allocation = policy.place("owner", 64.0, placement_class=cls)
            assert allocation.tier == tier, cls
        assert policy.spilled_mb() == 0.0

    def test_full_tier_spills_critical_upward(self, tiered):
        from repro.hypervisor.memory import CLASS_VM_CRITICAL
        policy = PlacementPolicy(tiered)
        normal_mb = tiered.tier_capacity_gb()["normal"] * 1024.0
        policy.place("filler", normal_mb,
                     placement_class=CLASS_VM_CRITICAL)
        spilled = policy.place("vm1", 128.0,
                               placement_class=CLASS_VM_CRITICAL)
        # The normal tier is full: critical pages spill *up* to strong,
        # never down to relaxed.
        assert spilled.tier == "strong"
        assert policy.spilled_mb() == pytest.approx(128.0)

    def test_exposure_by_tier_counts_vm_critical(self, tiered):
        from repro.hypervisor.memory import (
            CLASS_VM_CRITICAL,
            CLASS_VM_DATA,
        )
        policy = PlacementPolicy(tiered)
        policy.place("hv", 200.0, critical=True)
        policy.place("vm0", 50.0, placement_class=CLASS_VM_CRITICAL)
        policy.place("vm0", 500.0, placement_class=CLASS_VM_DATA)
        exposure = policy.exposure_by_tier()
        assert exposure["strong"] == pytest.approx(200.0)
        assert exposure["normal"] == pytest.approx(50.0)
        assert exposure["relaxed"] == 0.0
        usage = policy.tier_usage_mb()
        assert usage["relaxed"] == pytest.approx(500.0)
        classes = policy.class_usage_mb()
        assert classes[CLASS_VM_DATA] == pytest.approx(500.0)

    def test_classifier_validation(self):
        from repro.hypervisor.memory import (
            CLASS_HYPERVISOR,
            TierClassifier,
        )
        with pytest.raises(ConfigurationError):
            TierClassifier(tier_map={CLASS_HYPERVISOR: "strong"})
        with pytest.raises(ConfigurationError):
            TierClassifier().classify("scratch")

    def test_state_round_trip_keeps_tiers(self, tiered):
        from repro.hypervisor.memory import CLASS_VM_CRITICAL
        policy = PlacementPolicy(tiered)
        policy.place("hv", 100.0, critical=True)
        policy.place("vm0", 64.0, placement_class=CLASS_VM_CRITICAL)
        restored = PlacementPolicy(tiered)
        restored.load_state_dict(policy.state_dict())
        assert restored.state_dict() == policy.state_dict()
        assert restored.exposure_by_tier() == policy.exposure_by_tier()

    def test_legacy_rows_reconstruct_tier(self, tiered):
        policy = PlacementPolicy(tiered)
        policy.load_state_dict({
            "allocations": [["hv", 100.0, "channel0", True]],
        })
        allocation = policy.allocations[0]
        assert allocation.placement_class == "hypervisor"
        assert allocation.tier == "strong"


class TestNoReliableDomainPlacement:
    def test_critical_placement_survives_without_reliable_domain(self):
        memory = standard_server_memory(reliable_channel=None, seed=3)
        policy = PlacementPolicy(memory)
        allocation = policy.place("kernel", 100.0, critical=True)
        # No strong tier exists: the hypervisor allocation spills to
        # whatever is available instead of crashing on a None domain.
        assert allocation.tier == "relaxed"
        assert policy.spilled_mb() == pytest.approx(100.0)
        memory.relax_all(5.0)
        assert policy.critical_exposure_mb() == pytest.approx(100.0)
