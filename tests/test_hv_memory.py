"""Tests for hypervisor memory accounting and reliable-domain placement."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware import standard_server_memory
from repro.hypervisor.memory import (
    FootprintSample,
    MemoryAccountant,
    PlacementPolicy,
)


class TestAccountant:
    def test_footprint_grows_per_vm(self):
        acc = MemoryAccountant(base_mb=200.0, per_vm_mb=40.0)
        assert acc.hypervisor_footprint_mb(0) == 200.0
        assert acc.hypervisor_footprint_mb(4) == 360.0

    def test_fraction_computation(self):
        sample = FootprintSample(timestamp=0.0, hypervisor_mb=100.0,
                                 vm_mb=400.0, application_mb=500.0)
        assert sample.hypervisor_fraction == pytest.approx(0.1)
        assert sample.total_mb == 1000.0

    def test_max_fraction_over_run(self):
        acc = MemoryAccountant(base_mb=100.0, per_vm_mb=10.0)
        acc.sample(0.0, 2, vm_mb=600.0, application_mb=1000.0)
        acc.sample(1.0, 2, vm_mb=600.0, application_mb=200.0)
        # Second sample has the smaller denominator => larger fraction.
        assert acc.max_hypervisor_fraction() == pytest.approx(
            120.0 / 920.0)

    def test_series_rows(self):
        acc = MemoryAccountant()
        acc.sample(0.0, 1, 300.0, 500.0)
        rows = acc.series()
        assert len(rows) == 1
        t, hyp, vm, app, frac = rows[0]
        assert (t, vm, app) == (0.0, 300.0, 500.0)
        assert frac == pytest.approx(hyp / (hyp + vm + app))

    def test_no_samples_is_an_error(self):
        with pytest.raises(ConfigurationError):
            MemoryAccountant().max_hypervisor_fraction()

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryAccountant(base_mb=-1.0)


class TestPlacement:
    @pytest.fixture
    def memory(self):
        return standard_server_memory(n_channels=4, dimm_gb=8.0, seed=2)

    def test_critical_goes_to_reliable_domain(self, memory):
        policy = PlacementPolicy(memory)
        allocation = policy.place("hypervisor", 400.0, critical=True)
        assert allocation.domain == "channel0"
        assert policy.critical_exposure_mb() == 0.0

    def test_vm_memory_avoids_reliable_domain(self, memory):
        policy = PlacementPolicy(memory)
        for i in range(6):
            allocation = policy.place(f"vm{i}", 1000.0)
            assert allocation.domain != "channel0"

    def test_disabled_policy_exposes_critical_state(self, memory):
        """The A3 ablation configuration."""
        policy = PlacementPolicy(memory, use_reliable_domain=False)
        policy.place("hypervisor", 400.0, critical=True)
        memory.relax_all(1.5, keep_reliable_nominal=False)
        assert policy.critical_exposure_mb() > 0.0

    def test_release_frees_allocations(self, memory):
        policy = PlacementPolicy(memory)
        policy.place("vm0", 1000.0)
        policy.place("vm0", 500.0)
        assert policy.release("vm0") == 2
        assert policy.allocations == []

    def test_out_of_memory_rejected(self, memory):
        policy = PlacementPolicy(memory)
        with pytest.raises(ConfigurationError):
            policy.place("huge", 64 * 1024.0)  # 64 GB > any domain

    def test_spreads_to_emptiest_domain(self, memory):
        policy = PlacementPolicy(memory)
        first = policy.place("vm0", 4000.0)
        second = policy.place("vm1", 4000.0)
        assert first.domain != second.domain

    def test_error_hit_probability_tracks_critical_share(self, memory):
        policy = PlacementPolicy(memory, use_reliable_domain=False)
        policy.place("hypervisor", 1000.0, critical=True)
        domain = policy.allocations[0].domain
        rng = np.random.default_rng(0)
        hits = sum(policy.error_hits_critical(domain, rng)
                   for _ in range(500))
        assert hits == 500  # only critical data in the domain

    def test_error_in_unused_domain_is_harmless(self, memory):
        policy = PlacementPolicy(memory)
        rng = np.random.default_rng(0)
        assert policy.error_hits_critical("channel2", rng) is False

    def test_zero_size_rejected(self, memory):
        with pytest.raises(ConfigurationError):
            PlacementPolicy(memory).place("x", 0.0)
