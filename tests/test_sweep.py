"""Tests for the parallel multi-seed sweep engine."""

import multiprocessing
import os
from dataclasses import replace

import pytest

from repro.core.exceptions import ConfigurationError
from repro.resilience import run_chaos_ab
from repro.sweep import (
    SweepRow,
    SweepSpec,
    campaign_result_from_row,
    report_digest,
    run_sweep,
    run_sweep_task,
    summarize,
    sweep_report,
)

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Small-but-real campaign shape shared by the subprocess tests.
_SMALL = dict(n_nodes=2, duration_s=240.0, rate_per_hour=20.0,
              intensity=0.8)


def _small_spec(**overrides):
    params = dict(_SMALL, seeds=(0, 1),
                  grid={"policies": ["on", "off"]})
    params.update(overrides)
    return SweepSpec(**params)


# -- deterministic workers for the crash/retry paths ----------------------

_SENTINEL_ENV = "REPRO_SWEEP_TEST_SENTINEL"


def _crash_once_worker(task):
    """Dies hard on task 1's first attempt, then behaves."""
    sentinel = f"{os.environ[_SENTINEL_ENV]}.{task.index}"
    if task.index == 1 and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os._exit(3)
    return run_sweep_task(task)


def _crash_always_worker(task):
    os._exit(9)


def _error_row_worker(task):
    return SweepRow(index=task.index, point=task.point, seed=task.seed,
                    ok=False, error="synthetic failure")


class TestSweepSpec:
    def test_expansion_crosses_grid_and_seeds(self):
        spec = SweepSpec(
            seeds=(0, 1), n_nodes=2, duration_s=240.0,
            grid={"policies": ["on", "off"], "intensity": [0.5, 0.8]})
        tasks = spec.expand()
        assert len(tasks) == 8
        assert [t.index for t in tasks] == list(range(8))
        assert tasks[0].point == "policies=on/intensity=0.5"
        assert tasks[0].config.policies == "on"
        assert tasks[0].config.intensity == 0.5
        assert tasks[-1].point == "policies=off/intensity=0.8"
        assert {t.seed for t in tasks} == {0, 1}

    def test_expansion_is_deterministic(self):
        a = _small_spec().expand()
        b = _small_spec().expand()
        assert a == b

    def test_no_grid_yields_base_point(self):
        tasks = SweepSpec(seeds=(7,), n_nodes=2).expand()
        assert len(tasks) == 1
        assert tasks[0].point == "base"
        assert tasks[0].config.seed == 7

    def test_grid_axis_overrides_base_value(self):
        spec = SweepSpec(seeds=(0,), n_nodes=2,
                         grid={"nodes": [3, 4]})
        tasks = spec.expand()
        assert [t.config.n_nodes for t in tasks] == [3, 4]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(seeds=())
        with pytest.raises(ConfigurationError):
            SweepSpec(seeds=(0, 0))
        with pytest.raises(ConfigurationError):
            SweepSpec(grid={"voltage": [1.0]})
        with pytest.raises(ConfigurationError):
            SweepSpec(grid={"nodes": []})

    def test_explicit_plan_rejects_plan_shaping_axes(self):
        plan = {"specs": []}
        with pytest.raises(ConfigurationError):
            SweepSpec(plan=plan, grid={"intensity": [0.5, 0.8]})
        # The policies axis does not shape the plan, so it is fine.
        SweepSpec(plan=plan, grid={"policies": ["on", "off"]})

    def test_run_sweep_validation(self):
        spec = _small_spec()
        with pytest.raises(ConfigurationError):
            run_sweep(spec, jobs=0)
        with pytest.raises(ConfigurationError):
            run_sweep(spec, max_retries=-1)


class TestWorker:
    def test_task_matches_direct_campaign(self):
        from repro.resilience import (
            DegradationConfig,
            FaultPlan,
            run_chaos_campaign,
        )

        task = SweepSpec(seeds=(5,), **_SMALL).expand()[0]
        row = run_sweep_task(task)
        assert row.ok and row.error is None
        result = campaign_result_from_row(row)
        assert result.experiment is None
        config = task.config.finalized()
        direct = run_chaos_campaign(
            n_nodes=config.n_nodes, duration_s=config.duration_s,
            seed=config.seed, plan=FaultPlan.from_dict(config.plan),
            degradation=DegradationConfig.on(),
            base_rate_per_hour=config.base_rate_per_hour,
            step_s=config.step_s, label=config.label)
        assert result == replace(direct, experiment=None)

    def test_failed_row_has_no_result(self):
        row = SweepRow(index=0, point="base", seed=0, ok=False,
                       error="boom")
        with pytest.raises(ConfigurationError):
            campaign_result_from_row(row)


@pytest.mark.skipif(not _HAS_FORK, reason="needs the fork start method")
class TestRunSweep:
    def test_jobs_1_and_jobs_2_reports_are_identical(self):
        spec = _small_spec()
        serial = sweep_report(run_sweep(spec, jobs=1))
        parallel = sweep_report(run_sweep(_small_spec(), jobs=2))
        assert serial == parallel
        assert report_digest(serial) == report_digest(parallel)
        assert len(serial["rows"]) == 4
        assert not serial["failures"]

    def test_progress_stream(self):
        lines = []
        run_sweep(SweepSpec(seeds=(0,), **_SMALL), jobs=1,
                  progress=lines.append)
        assert len(lines) == 1
        assert "[1/1]" in lines[0] and "seed=0" in lines[0]

    def test_crashed_worker_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_SENTINEL_ENV, str(tmp_path / "sentinel"))
        spec = SweepSpec(seeds=(0, 1), **_SMALL)
        outcome = run_sweep(spec, jobs=2, max_retries=1,
                            worker=_crash_once_worker)
        assert not outcome.failures
        assert [row.attempts for row in outcome.rows] == [1, 2]

    def test_retries_exhausted_records_failure(self):
        spec = SweepSpec(seeds=(0,), **_SMALL)
        outcome = run_sweep(spec, jobs=1, max_retries=1,
                            worker=_crash_always_worker)
        assert len(outcome.failures) == 1
        failed = outcome.failures[0]
        assert failed.attempts == 2
        assert "exit code 9" in failed.error
        report = sweep_report(outcome)
        assert report["failures"][0]["error"] == failed.error
        assert report["summary"] == {}

    def test_error_rows_are_retried_then_recorded(self):
        spec = SweepSpec(seeds=(0,), **_SMALL)
        outcome = run_sweep(spec, jobs=1, max_retries=0,
                            worker=_error_row_worker)
        assert len(outcome.failures) == 1
        assert outcome.failures[0].error == "synthetic failure"
        assert outcome.failures[0].attempts == 1

    def test_snapshot_root_gives_each_task_a_store(self, tmp_path):
        spec = SweepSpec(seeds=(0,), duration_s=240.0, n_nodes=2,
                         snapshot_root=str(tmp_path))
        outcome = run_sweep(spec, jobs=1)
        assert not outcome.failures
        task_dir = tmp_path / "task-0000"
        assert list(task_dir.glob("snapshot-*.json"))

    def test_parallel_ab_matches_serial(self):
        serial = run_chaos_ab(jobs=1, **_SMALL)
        parallel = run_chaos_ab(jobs=2, **_SMALL)
        assert parallel.on.experiment is None
        assert (replace(parallel.on, experiment=None)
                == replace(serial.on, experiment=None))
        assert (replace(parallel.off, experiment=None)
                == replace(serial.off, experiment=None))
        assert parallel.availability_gain == serial.availability_gain


class TestSummarize:
    @staticmethod
    def _row(index, point, availability, mttr):
        return SweepRow(
            index=index, point=point, seed=index, ok=True,
            result={"fleet_availability": availability, "mttr_s": mttr,
                    "sla_violations": 0})

    def test_moments_per_point(self):
        rows = [self._row(0, "a", 0.9, 10.0),
                self._row(1, "a", 0.7, None),
                self._row(2, "b", 1.0, 5.0)]
        summary = summarize(rows)
        availability = summary["a"]["fleet_availability"]
        assert availability["count"] == 2
        assert availability["mean"] == pytest.approx(0.8)
        assert availability["min"] == 0.7
        # None mttr rows are skipped for that metric only.
        assert summary["a"]["mttr_s"]["count"] == 1
        assert summary["b"]["mttr_s"]["mean"] == 5.0

    def test_failed_rows_excluded(self):
        rows = [self._row(0, "a", 0.9, None),
                SweepRow(index=1, point="a", seed=1, ok=False,
                         error="x")]
        assert summarize(rows)["a"]["fleet_availability"]["count"] == 1
