"""Cross-layer integration scenarios.

Each test exercises a multi-module slice of the stack end to end —
the kind of interaction unit tests cannot see.
"""

import pytest

from repro.core import UniServerNode
from repro.core.clock import SimClock
from repro.core.events import CorrectableErrorEvent
from repro.core.interfaces import MonitoringInterface, Scope
from repro.daemons.logpattern import LogPatternPredictor
from repro.hypervisor import make_vm_fleet
from repro.workloads import spec_workload


class TestAnomalyTriggersRecharacterization:
    def test_error_storm_spawns_stresslog_cycle(self):
        """HealthLog threshold -> AnomalyEvent -> StressLog cycle, the
        closed loop of Section 3."""
        node = UniServerNode(seed=8)
        node.pre_deploy()
        node.deploy()
        cycles_before = len(node.stresslog.history)
        # Simulate an error storm on one core.
        for i in range(node.healthlog.config.error_threshold + 2):
            node.bus.publish(CorrectableErrorEvent(
                timestamp=node.clock.now, source="hw",
                component="core3", detail="storm"))
        assert len(node.stresslog.history) == cycles_before + 1
        assert node.stresslog.history[-1].trigger == "anomaly"

    def test_recharacterized_margins_remain_applicable(self):
        node = UniServerNode(seed=9)
        node.pre_deploy()
        node.deploy()
        vector = node.recharacterize()
        changed = node.hypervisor.apply_margins(vector)
        assert changed  # fresh margins still within the budget


class TestLogPatternOverHealthLog:
    def test_predictor_learns_healthlog_and_flags_failures(self):
        """The log-pattern predictor consumes the actual HealthLog
        logfile format and flags a crash storm it never saw healthy."""
        node = UniServerNode(seed=10)
        node.pre_deploy()
        node.deploy()
        for vm in make_vm_fleet(
                spec_workload("hmmer", duration_cycles=1e12), 3):
            node.launch_vm(vm)
        node.run(120.0)
        healthy_log = node.healthlog.logfile
        assert len(healthy_log) >= 100

        predictor = LogPatternPredictor(window=15)
        predictor.learn(healthy_log[:80])
        predictor.freeze()
        predictor.scan(healthy_log[80:])

        failure_burst = [
            f"t={node.clock.now + i:.3f} crash core{i % 8} "
            "watchdog timeout" for i in range(30)
        ]
        assert predictor.any_anomaly(failure_burst)
        assert not predictor.any_anomaly(healthy_log[100:140])


class TestMonitoringInterfaceOnLiveNode:
    def test_all_scopes_during_operation(self):
        node = UniServerNode(seed=11)
        node.pre_deploy()
        node.deploy()
        interface = MonitoringInterface(node.platform, node.healthlog)
        for vm in make_vm_fleet(
                spec_workload("mcf", duration_cycles=1e12), 2):
            node.launch_vm(vm)
        node.run(30.0)

        vector = interface.info_vector(Scope.HOST)
        assert vector.configuration  # host sees the EOP configuration
        status = interface.node_status(Scope.CLOUD)
        assert status.mean_voltage_fraction < 1.0  # EOPs adopted
        telemetry = interface.guest_telemetry(Scope.GUEST)
        assert telemetry.power_bucket_w >= 0
        assert len(interface.audit_log) == 3


class TestEndToEndEnergyStory:
    def test_deeper_budget_buys_more_saving(self):
        """The failure budget is the dial: a looser budget lets the
        hypervisor adopt deeper EOPs and save more energy."""
        from repro.hypervisor import HypervisorConfig

        savings = {}
        for budget in (1e-9, 1e-4):
            node = UniServerNode(
                seed=12,
                hypervisor_config=HypervisorConfig(failure_budget=budget),
            )
            node.pre_deploy()
            node.deploy()
            savings[budget] = node.energy_report().saving_fraction
        assert savings[1e-4] >= savings[1e-9]
        assert savings[1e-4] > 0.1

    def test_characterisation_is_stable_across_repeats(self):
        """Two consecutive StressLog cycles on an un-aged part must
        agree to within measurement noise."""
        node = UniServerNode(seed=13)
        first = node.pre_deploy()
        second = node.recharacterize()
        for margin_a, margin_b in zip(first.margins, second.margins):
            assert margin_a.component == margin_b.component
            assert margin_a.safe_point.voltage_v == pytest.approx(
                margin_b.safe_point.voltage_v, abs=0.01)
