"""Property-based tests (hypothesis) on core invariants."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.clock import SimClock
from repro.core.eop import OperatingPoint
from repro.hardware.core_model import CoreModel, CoreParameters
from repro.hardware.dram import RetentionModel
from repro.hardware.power import CorePowerModel, DramPowerModel
from repro.workloads.base import StressProfile
from repro.workloads.genetic import GENOME_LENGTH, genome_to_profile

fractions = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)
voltages = st.floats(min_value=0.5, max_value=1.4,
                     allow_nan=False, allow_infinity=False)


def profiles():
    return st.builds(
        StressProfile,
        droop_intensity=fractions, core_sensitivity=fractions,
        activity_factor=fractions, cache_pressure=fractions,
        dram_pressure=fractions,
    )


class TestStressProfileProperties:
    @given(profiles(), profiles(), fractions)
    @settings(max_examples=60)
    def test_blend_stays_in_bounds(self, a, b, weight):
        mixed = a.blend(b, weight)
        for value in (mixed.droop_intensity, mixed.core_sensitivity,
                      mixed.activity_factor, mixed.cache_pressure,
                      mixed.dram_pressure):
            assert 0.0 <= value <= 1.0

    @given(profiles())
    @settings(max_examples=60)
    def test_blend_identity(self, p):
        mixed = p.blend(p, 0.5)
        # Approximate: subnormal inputs lose the last ulp in a*w + a*(1-w).
        for field in ("droop_intensity", "core_sensitivity",
                      "activity_factor", "cache_pressure", "dram_pressure"):
            assert getattr(mixed, field) == pytest.approx(
                getattr(p, field), abs=1e-12)

    @given(st.lists(fractions, min_size=GENOME_LENGTH,
                    max_size=GENOME_LENGTH))
    @settings(max_examples=60)
    def test_any_genome_yields_valid_profile(self, genome):
        profile = genome_to_profile(genome)
        assert 0.0 <= profile.droop_intensity <= 1.0
        assert 0.0 <= profile.overall_stress() <= 1.0


class TestCrashModelProperties:
    def _core(self, droop_span=0.08, delta=0.01):
        return CoreModel(0, CoreParameters(
            vmin_base_v=0.75, delta_v=delta, droop_span=droop_span,
            max_frequency_hz=2.6e9, run_noise_sigma_v=0.0))

    @given(profiles())
    @settings(max_examples=60)
    def test_crash_voltage_at_least_static_vmin(self, profile):
        core = self._core(delta=0.0)
        assert core.crash_voltage_v(profile) >= core.static_vmin_v() - 1e-12

    @given(profiles(), fractions)
    @settings(max_examples=60)
    def test_more_droop_never_lowers_crash_voltage(self, profile, extra):
        core = self._core()
        assume(profile.droop_intensity + extra * (1 - profile.droop_intensity)
               <= 1.0)
        harsher = StressProfile(
            droop_intensity=min(
                1.0, profile.droop_intensity
                + extra * (1 - profile.droop_intensity)),
            core_sensitivity=profile.core_sensitivity,
            activity_factor=profile.activity_factor,
            cache_pressure=profile.cache_pressure,
            dram_pressure=profile.dram_pressure,
        )
        assert core.crash_voltage_v(harsher) >= \
            core.crash_voltage_v(profile) - 1e-12

    @given(profiles(), voltages)
    @settings(max_examples=60)
    def test_crash_probability_is_probability(self, profile, voltage):
        core = CoreModel(0, CoreParameters(
            vmin_base_v=0.75, delta_v=0.01, droop_span=0.08,
            max_frequency_hz=2.6e9))
        point = OperatingPoint(voltage, 2.6e9)
        p = core.crash_probability(point, profile)
        assert 0.0 <= p <= 1.0


class TestPowerProperties:
    @given(voltages, st.floats(min_value=0.3, max_value=1.0))
    @settings(max_examples=60)
    def test_dynamic_power_monotone_in_voltage_and_frequency(
            self, voltage, freq_fraction):
        model = CorePowerModel()
        nominal = OperatingPoint(1.4, 2.0e9)
        lower = OperatingPoint(voltage, 2.0e9 * freq_fraction)
        assert model.dynamic_power_w(lower) <= \
            model.dynamic_power_w(nominal) + 1e-12

    @given(st.floats(min_value=0.064, max_value=60.0))
    @settings(max_examples=60)
    def test_dram_refresh_share_in_unit_interval(self, interval):
        model = DramPowerModel(density_gbit=8.0)
        assert 0.0 <= model.refresh_share(interval) <= 1.0

    @given(st.floats(min_value=0.01, max_value=50.0),
           st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=60)
    def test_retention_ber_monotone(self, a, b):
        model = RetentionModel()
        short, long = min(a, b), max(a, b)
        assert model.ber(short) <= model.ber(long) + 1e-30


class TestPhasedWorkloadProperties:
    @given(st.lists(st.tuples(fractions, st.floats(min_value=0.05,
                                                   max_value=1.0)),
                    min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_profile_at_always_one_of_the_phases(self, raw):
        from repro.workloads.phases import Phase, make_phased
        total = sum(weight for _, weight in raw)
        phases = [
            Phase(StressProfile(d, 0.5, 0.5, 0.5, 0.5), weight / total)
            for d, weight in raw
        ]
        workload = make_phased("w", phases)
        droops = {p.profile.droop_intensity for p in phases}
        for progress in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert workload.profile_at(progress).droop_intensity in droops

    @given(st.lists(st.tuples(fractions, st.floats(min_value=0.05,
                                                   max_value=1.0)),
                    min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_summary_profile_within_phase_envelope(self, raw):
        from repro.workloads.phases import Phase, make_phased
        total = sum(weight for _, weight in raw)
        phases = [
            Phase(StressProfile(d, 0.5, 0.5, 0.5, 0.5), weight / total)
            for d, weight in raw
        ]
        workload = make_phased("w", phases)
        droops = [p.profile.droop_intensity for p in phases]
        assert min(droops) - 1e-9 <= workload.profile.droop_intensity \
            <= max(droops) + 1e-9


class TestRaidrProperties:
    @given(st.floats(min_value=20.0, max_value=80.0))
    @settings(max_examples=40)
    def test_bin_fractions_always_sum_to_one(self, temperature):
        from repro.hardware.raidr import bin_rows
        bins = bin_rows(RetentionModel(), temperature_c=temperature)
        assert sum(b.row_fraction for b in bins) == pytest.approx(1.0)
        assert all(b.row_fraction >= 0 for b in bins)


class TestScrubbingProperties:
    @given(st.floats(min_value=0.064, max_value=30.0),
           st.floats(min_value=60.0, max_value=1e6))
    @settings(max_examples=30)
    def test_exposure_rates_nonnegative_and_monotone(self, refresh,
                                                     scrub):
        from repro.hardware.dram import Dimm, MemoryDomain
        from repro.hardware.scrubbing import EccExposureModel, ScrubPolicy
        domain = MemoryDomain("d", [Dimm(dimm_id=0)], seed=0)
        domain.set_refresh_interval(refresh)
        assessment = EccExposureModel(
            ScrubPolicy(scrub_interval_s=scrub)).assess(domain)
        assert assessment.total_ue_rate_s >= 0.0
        assert assessment.weak_cells >= 0.0
        retired = EccExposureModel(ScrubPolicy(
            scrub_interval_s=scrub,
            retire_weak_pages=True)).assess(domain)
        assert retired.total_ue_rate_s <= assessment.total_ue_rate_s

    @given(st.floats(min_value=0.0, max_value=1e4),
           st.integers(min_value=100, max_value=10 ** 12))
    @settings(max_examples=60)
    def test_static_pairs_nonnegative_and_subquadratic(self, weak, bits):
        from repro.hardware.scrubbing import expected_static_pairs
        pairs = expected_static_pairs(weak, bits)
        assert pairs >= 0.0
        # Never more pairs than the all-in-one-word bound.
        assert pairs <= weak * weak


class TestClockProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_events_fire_in_time_order(self, times):
        clock = SimClock()
        fired = []
        for t in times:
            clock.schedule_at(t, lambda t=t: fired.append(t))
        clock.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0),
                    min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_advancing_in_chunks_equals_one_jump(self, chunks):
        total = sum(chunks)
        chunked = SimClock()
        fired_chunked = []
        jump = SimClock()
        fired_jump = []
        for t in (0.5, 1.7, 3.3, 8.0):
            if t <= total:
                chunked.schedule_at(t, lambda t=t: fired_chunked.append(t))
                jump.schedule_at(t, lambda t=t: fired_jump.append(t))
        for c in chunks:
            chunked.advance_by(c)
        jump.advance_to(total)
        assert fired_chunked == fired_jump
