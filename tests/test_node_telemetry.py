"""Tests for compute nodes and the telemetry service."""

import pytest

from repro.cloudmgr.node import ComputeNode
from repro.cloudmgr.telemetry import (
    NodeSample,
    RollingWindow,
    TelemetryService,
    VMSample,
)
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError
from repro.hardware.faults import (
    FaultClass,
    FaultOrigin,
    FaultRecord,
)
from repro.hypervisor.vm import VirtualMachine
from repro.workloads import spec_workload


@pytest.fixture
def node():
    return ComputeNode("n0", SimClock(), seed=4)


class TestComputeNode:
    def test_capacity_accounting(self, node):
        total = node.total_vcpus
        vm = VirtualMachine(name="vm0", workload=spec_workload("mcf"),
                            vcpus=2)
        assert node.can_host(vm)
        node.hypervisor.create_vm(vm)
        assert node.used_vcpus() == 2
        assert node.free_vcpus() == total - 2

    def test_memory_accounting(self, node):
        before = node.free_memory_mb()
        vm = VirtualMachine(name="vm0", workload=spec_workload("mcf"))
        node.hypervisor.create_vm(vm)
        assert node.free_memory_mb() < before

    def test_reliability_penalised_by_faults(self, node):
        clean = node.reliability()
        node.platform.faults.record(FaultRecord(
            timestamp=node.clock.now, fault_class=FaultClass.CRASH,
            origin=FaultOrigin.CPU_CORE, component="core0"))
        assert node.reliability() < clean

    def test_correctable_errors_dent_less_than_crashes(self, node):
        ce_node = ComputeNode("a", SimClock(), seed=1)
        crash_node = ComputeNode("b", SimClock(), seed=1)
        ce_node.platform.faults.record(FaultRecord(
            timestamp=0.0, fault_class=FaultClass.CORRECTABLE,
            origin=FaultOrigin.CACHE, component="core0"))
        crash_node.platform.faults.record(FaultRecord(
            timestamp=0.0, fault_class=FaultClass.CRASH,
            origin=FaultOrigin.CPU_CORE, component="core0"))
        assert ce_node.reliability() > crash_node.reliability()

    def test_step_accrues_uptime(self, node):
        node.step(10.0)
        assert node.availability() == 1.0

    def test_metrics_snapshot(self, node):
        metrics = node.metrics()
        assert metrics.node == "n0"
        assert metrics.reliability == 1.0
        assert metrics.power_w > 0
        assert "avail" in metrics.describe()

    def test_frequency_fraction_tracks_points(self, node):
        assert node.frequency_fraction() == pytest.approx(1.0)
        nominal = node.platform.chip.spec.nominal
        node.platform.set_all_core_points(
            nominal.with_frequency(nominal.frequency_hz / 2))
        assert node.frequency_fraction() == pytest.approx(0.5)


class TestRollingWindow:
    def test_tracks_mean(self):
        window = RollingWindow(alpha=1.0)
        window.push(5.0)
        assert window.mean == 5.0

    def test_anomaly_detection_fires_on_outlier(self):
        window = RollingWindow(alpha=0.2)
        for _ in range(30):
            window.push(10.0)
        assert window.is_anomalous(10.0) is False
        assert window.is_anomalous(1000.0) is True

    def test_needs_minimum_samples(self):
        window = RollingWindow()
        window.push(1.0)
        assert window.is_anomalous(1e9) is False

    def test_bounded_length(self):
        window = RollingWindow(maxlen=5)
        for i in range(20):
            window.push(float(i))
        assert len(window) == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RollingWindow(maxlen=1)
        with pytest.raises(ConfigurationError):
            RollingWindow(alpha=0.0)

    def test_zero_variance_band_has_relative_floor(self):
        window = RollingWindow(alpha=0.2)
        for _ in range(30):
            window.push(1e6)
        # A constant series has zero variance; without the relative
        # floor the band collapses to 1e-9 and ulp-level jitter on a
        # large-magnitude series reads as anomalous.
        assert window.is_anomalous(1e6 * (1 + 1e-9)) is False
        assert window.is_anomalous(1e6 * 1.01) is True

    def test_relative_floor_scales_with_magnitude(self):
        window = RollingWindow(alpha=0.2)
        for _ in range(30):
            window.push(100.0)
        assert window.is_anomalous(100.0 + 5e-5) is False
        assert window.is_anomalous(100.0 + 5e-5, rel_floor=1e-9) is True


class TestTelemetryService:
    def test_records_and_queries(self):
        svc = TelemetryService()
        svc.record_node(NodeSample(
            timestamp=0.0, node="n0", utilization=0.5, power_w=40.0,
            reliability=1.0, correctable_errors=0))
        svc.record_vm(VMSample(
            timestamp=0.0, vm_name="vm0", node="n0",
            cpu_utilization=0.6, memory_mb=1000.0, progress_rate=0.01))
        assert len(svc.node_history("n0")) == 1
        assert len(svc.vm_history("vm0")) == 1
        assert svc.node_trend("n0", "power") is not None

    def test_recent_error_rate(self):
        svc = TelemetryService()
        for i, ce in enumerate((0, 2, 4)):
            svc.record_node(NodeSample(
                timestamp=float(i), node="n0", utilization=0.5,
                power_w=40.0, reliability=1.0, correctable_errors=ce))
        assert svc.recent_error_rate("n0") == pytest.approx(2.0)

    def test_anomaly_log_captures_spikes(self):
        svc = TelemetryService()
        for i in range(30):
            svc.record_node(NodeSample(
                timestamp=float(i), node="n0", utilization=0.5,
                power_w=40.0, reliability=1.0, correctable_errors=0))
        svc.record_node(NodeSample(
            timestamp=31.0, node="n0", utilization=0.5, power_w=4000.0,
            reliability=1.0, correctable_errors=0))
        assert any("power" in a for a in svc.anomalies)

    def test_empty_history(self):
        svc = TelemetryService()
        assert svc.node_history("ghost") == []
        assert svc.recent_error_rate("ghost") == 0.0


def _node_sample(i, node="n0", ce=0):
    return NodeSample(timestamp=float(i), node=node, utilization=0.5,
                      power_w=40.0, reliability=1.0,
                      correctable_errors=ce)


def _vm_sample(i, vm="vm0"):
    return VMSample(timestamp=float(i), vm_name=vm, node="n0",
                    cpu_utilization=0.6, memory_mb=1000.0,
                    progress_rate=0.01)


class TestTelemetryRetention:
    def test_node_series_bounded_at_retention(self):
        svc = TelemetryService(window=20)
        assert svc.retention == 20
        for i in range(100):
            svc.record_node(_node_sample(i))
        history = svc.node_history("n0")
        assert len(history) == 20
        # Newest samples win.
        assert history[0].timestamp == 80.0
        assert history[-1].timestamp == 99.0

    def test_vm_series_bounded_at_retention(self):
        svc = TelemetryService(window=20, retention=5)
        assert svc.retention == 5
        for i in range(50):
            svc.record_vm(_vm_sample(i))
        assert len(svc.vm_history("vm0")) == 5

    def test_retention_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetryService(retention=0)

    def test_recent_error_rate_sees_newest_samples(self):
        svc = TelemetryService(window=10)
        for i in range(100):
            svc.record_node(_node_sample(i, ce=0))
        for i in range(100, 110):
            svc.record_node(_node_sample(i, ce=3))
        assert svc.recent_error_rate("n0") == pytest.approx(3.0)

    def test_anomaly_log_is_bounded(self):
        svc = TelemetryService(window=10)
        assert svc.anomalies.maxlen == max(1024, 8 * svc.retention)

    def test_state_dict_size_independent_of_duration(self):
        short = TelemetryService(window=10)
        long = TelemetryService(window=10)
        for i in range(50):
            short.record_node(_node_sample(i))
        for i in range(500):  # 10x the samples, same retention
            long.record_node(_node_sample(i))
        assert (len(long.state_dict()["node_samples"]["n0"])
                == len(short.state_dict()["node_samples"]["n0"]))

    def test_load_state_dict_caps_oversized_series(self):
        uncapped = TelemetryService(window=200)
        for i in range(150):
            uncapped.record_node(_node_sample(i))
        capped = TelemetryService(window=10)
        capped.load_state_dict(uncapped.state_dict())
        history = capped.node_history("n0")
        assert len(history) == 10
        assert history[-1].timestamp == 149.0  # newest kept

    def test_round_trip_preserves_queries(self):
        svc = TelemetryService(window=10)
        for i in range(30):
            svc.record_node(_node_sample(i, ce=i % 3))
        restored = TelemetryService(window=10)
        restored.load_state_dict(svc.state_dict())
        assert restored.node_history("n0") == svc.node_history("n0")
        assert (restored.recent_error_rate("n0")
                == svc.recent_error_rate("n0"))

    def test_compute_node_telemetry_bounded_over_long_runs(self):
        """Regression: node-local telemetry must not grow with uptime."""
        clock = SimClock()
        node = ComputeNode("n0", clock, seed=1)
        cap = node.local_telemetry.retention
        for _ in range(cap * 3):
            node.heartbeat()
            clock.advance_by(60.0)
        assert len(node.local_telemetry.node_history("n0")) == cap
