"""Tests for the thermal and aging models."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.aging import AgingModel, YEAR_S
from repro.hardware.thermal import ThermalModel, retention_temperature_factor


class TestThermal:
    def test_starts_at_ambient(self):
        model = ThermalModel(ambient_c=25.0)
        assert model.temperature_c == 25.0

    def test_converges_to_steady_state(self):
        model = ThermalModel(ambient_c=25.0,
                             thermal_resistance_c_per_w=0.5,
                             time_constant_s=10.0)
        for _ in range(100):
            model.step(power_w=40.0, dt_s=10.0)
        assert model.temperature_c == pytest.approx(
            model.steady_state_c(40.0), abs=0.01)

    def test_exponential_approach(self):
        model = ThermalModel(ambient_c=20.0,
                             thermal_resistance_c_per_w=1.0,
                             time_constant_s=30.0)
        model.step(power_w=30.0, dt_s=30.0)  # one time constant
        # After one tau, ~63.2 % of the way to 50 C.
        assert model.temperature_c == pytest.approx(
            20.0 + 30.0 * (1 - 2.718281828 ** -1), abs=0.1)

    def test_large_step_is_stable(self):
        model = ThermalModel()
        model.step(power_w=100.0, dt_s=1e6)
        assert model.temperature_c == pytest.approx(
            model.steady_state_c(100.0), abs=1e-6)

    def test_cooling_down(self):
        model = ThermalModel(ambient_c=25.0)
        model.reset(80.0)
        model.step(power_w=0.0, dt_s=1e6)
        assert model.temperature_c == pytest.approx(25.0, abs=1e-6)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            ThermalModel().steady_state_c(-1.0)


class TestRetentionTemperature:
    def test_reference_is_unity(self):
        assert retention_temperature_factor(45.0) == pytest.approx(1.0)

    def test_halves_per_ten_degrees(self):
        assert retention_temperature_factor(55.0) == pytest.approx(0.5)
        assert retention_temperature_factor(65.0) == pytest.approx(0.25)

    def test_doubles_when_cooler(self):
        assert retention_temperature_factor(35.0) == pytest.approx(2.0)

    def test_rejects_bad_halving_interval(self):
        with pytest.raises(ConfigurationError):
            retention_temperature_factor(50.0, halving_c=0.0)


class TestAging:
    def test_fresh_part_has_no_drift(self):
        assert AgingModel().vmin_drift_v() == 0.0

    def test_reference_lifetime_gives_reference_drift(self):
        model = AgingModel(drift_at_reference_v=0.010,
                           reference_time_s=3 * YEAR_S,
                           nominal_voltage_v=1.0, reference_temp_c=60.0)
        model.accrue(3 * YEAR_S, voltage_v=1.0, temperature_c=60.0)
        assert model.vmin_drift_v() == pytest.approx(0.010)

    def test_drift_is_sublinear_in_time(self):
        model = AgingModel(nominal_voltage_v=1.0)
        model.accrue(YEAR_S, 1.0, 60.0)
        one_year = model.vmin_drift_v()
        model.accrue(3 * YEAR_S, 1.0, 60.0)
        four_years = model.vmin_drift_v()
        assert four_years < 4 * one_year
        assert four_years > one_year

    def test_voltage_accelerates_aging(self):
        gentle = AgingModel(nominal_voltage_v=1.0)
        harsh = AgingModel(nominal_voltage_v=1.0)
        gentle.accrue(YEAR_S, 0.9, 60.0)
        harsh.accrue(YEAR_S, 1.1, 60.0)
        assert harsh.vmin_drift_v() > gentle.vmin_drift_v()

    def test_temperature_accelerates_aging(self):
        cool = AgingModel(nominal_voltage_v=1.0)
        hot = AgingModel(nominal_voltage_v=1.0)
        cool.accrue(YEAR_S, 1.0, 45.0)
        hot.accrue(YEAR_S, 1.0, 90.0)
        assert hot.vmin_drift_v() > cool.vmin_drift_v()

    def test_reset_restores_fresh_state(self):
        model = AgingModel()
        model.accrue(YEAR_S, 1.0, 60.0)
        model.reset()
        assert model.vmin_drift_v() == 0.0
        assert model.effective_stress_s == 0.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            AgingModel().accrue(-1.0, 1.0, 60.0)
