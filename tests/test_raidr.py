"""Tests for RAIDR-style multirate refresh."""

import pytest

from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S
from repro.core.exceptions import ConfigurationError
from repro.hardware.dram import Dimm, RetentionModel
from repro.hardware.raidr import (
    MultirateRefresh,
    RefreshBin,
    bin_rows,
    raidr_comparison,
    row_failure_probability,
)


@pytest.fixture
def dimm():
    return Dimm(dimm_id=0)


class TestRowFailure:
    def test_row_weaker_than_cell(self):
        """A row fails if any of its thousands of cells fails."""
        retention = RetentionModel()
        cell = retention.ber(5.0)
        row = row_failure_probability(retention, 5.0, cells_per_row=8192)
        assert row > cell
        assert row == pytest.approx(8192 * cell, rel=0.01)  # small-p regime

    def test_monotone_in_interval(self):
        retention = RetentionModel()
        probs = [row_failure_probability(retention, t, 8192)
                 for t in (0.064, 1.0, 5.0, 20.0)]
        assert probs == sorted(probs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            row_failure_probability(RetentionModel(), 1.0, cells_per_row=0)


class TestBinning:
    def test_fractions_sum_to_one(self):
        bins = bin_rows(RetentionModel())
        assert sum(b.row_fraction for b in bins) == pytest.approx(1.0)

    def test_most_rows_land_in_longest_bin(self):
        """The RAIDR observation: the weak tail is tiny."""
        bins = bin_rows(RetentionModel())
        longest = max(bins, key=lambda b: b.interval_s)
        assert longest.row_fraction > 0.99

    def test_shortest_bin_must_cover_nominal(self):
        with pytest.raises(ConfigurationError):
            bin_rows(RetentionModel(), intervals_s=(0.5, 1.0, 4.0))

    def test_temperature_shifts_rows_to_faster_bins(self):
        cool = bin_rows(RetentionModel(), temperature_c=35.0)
        hot = bin_rows(RetentionModel(), temperature_c=75.0)
        cool_longest = max(cool, key=lambda b: b.interval_s).row_fraction
        hot_longest = max(hot, key=lambda b: b.interval_s).row_fraction
        assert hot_longest < cool_longest


class TestMultirateRefresh:
    def test_saving_close_to_longest_bin_ratio(self, dimm):
        bins = bin_rows(dimm.retention)
        scheme = MultirateRefresh(dimm, bins)
        saving = scheme.saving_vs_nominal()
        # Nearly all rows at 4 s => saving approaches 1 - 0.064/4.
        assert saving > 0.95
        assert saving < 1.0

    def test_beats_safe_uniform_refresh(self, dimm):
        """Uniform refresh must run at nominal (the weak rows demand
        it); binning wins by refreshing only the tail fast."""
        bins = bin_rows(dimm.retention)
        scheme = MultirateRefresh(dimm, bins)
        assert scheme.saving_vs_uniform(
            NOMINAL_REFRESH_INTERVAL_S) > 0.95

    def test_residual_ber_negligible(self, dimm):
        bins = bin_rows(dimm.retention)
        scheme = MultirateRefresh(dimm, bins)
        assert scheme.residual_ber(dimm.retention) < 1e-15

    def test_degenerate_single_bin_matches_uniform(self, dimm):
        single = [RefreshBin(NOMINAL_REFRESH_INTERVAL_S, 1.0)]
        scheme = MultirateRefresh(dimm, single)
        assert scheme.saving_vs_nominal() == pytest.approx(0.0, abs=1e-9)

    def test_fractions_must_sum_to_one(self, dimm):
        with pytest.raises(ConfigurationError):
            MultirateRefresh(dimm, [RefreshBin(0.064, 0.4)])

    def test_convenience_wrapper(self, dimm):
        bins, saving, residual = raidr_comparison(dimm)
        assert len(bins) == 4
        assert saving > 0.9
        assert residual < 1e-15
