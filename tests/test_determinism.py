"""Determinism regression: same seed, bit-identical rack runs.

The whole point of routing every stochastic component through
``NodeRuntime`` seed families is that one experiment seed pins down the
entire cross-layer trace — placements, migrations, SLA accounting and
the metrics snapshot.  These tests run the full trace-driven cloud
simulation twice per seed and compare the traces exactly.
"""

from repro.cloudmgr import run_rack_experiment

DURATION_S = 1800.0
N_NODES = 3


def _trace(seed):
    experiment = run_rack_experiment(
        n_nodes=N_NODES, duration_s=DURATION_S, seed=seed)
    cloud = experiment.cloud
    return {
        "placements": [(p.vm_name, p.node)
                       for p in cloud.placement_log],
        "migrations": [(r.vm_name, r.source, r.destination, r.proactive)
                       for r in cloud.migrations.records],
        "stats": (experiment.stats.arrivals, experiment.stats.admitted,
                  experiment.stats.rejected, experiment.stats.terminated),
        "availability": cloud.fleet_availability(),
        "energy_j": cloud.stats.energy_j,
        "metrics": cloud.metrics_snapshot(),
    }


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        first = _trace(seed=11)
        second = _trace(seed=11)
        assert first["placements"] == second["placements"]
        assert first["migrations"] == second["migrations"]
        assert first["stats"] == second["stats"]
        assert first["availability"] == second["availability"]
        assert first["energy_j"] == second["energy_j"]
        assert first["metrics"] == second["metrics"]

    def test_different_seed_changes_the_trace(self):
        first = _trace(seed=11)
        second = _trace(seed=12)
        assert first != second

    def test_snapshot_covers_the_stack(self):
        metrics = _trace(seed=11)["metrics"]
        layers = {
            name.split(".", 1)[0]
            for node_snapshot in metrics.values()
            for kind in node_snapshot.values()
            for name in kind
        }
        assert {"hardware", "daemons", "hypervisor",
                "cloudmgr"} <= layers
