"""Shared fixtures for the test suite."""

import pytest

from repro.core.clock import SimClock
from repro.core.events import EventBus
from repro.hardware import (
    ChipModel,
    build_uniserver_node,
    intel_i5_4200u_spec,
    intel_i7_3970x_spec,
)
from repro.workloads import spec_suite, virus_suite


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def bus():
    return EventBus()


@pytest.fixture
def i5_chip():
    return ChipModel(intel_i5_4200u_spec(), seed=11)


@pytest.fixture
def i7_chip():
    return ChipModel(intel_i7_3970x_spec(), seed=22)


@pytest.fixture
def node_platform():
    return build_uniserver_node()


@pytest.fixture
def spec_benchmarks():
    return spec_suite()


@pytest.fixture
def viruses():
    return virus_suite()
