"""Tests for the tiered-vs-uniform memory A/B (``repro hrm``)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hrm import (
    HRM_ARMS,
    HrmConfig,
    build_arm_node,
    evaluate_node,
    run_hrm_ab,
)
from repro.hrm.ab import node_temperature_c
from repro.persistence import canonical_json


class TestConfig:
    def test_round_trip(self):
        config = HrmConfig(n_nodes=3, seed=7, duration_s=120.0)
        assert HrmConfig.from_dict(config.as_dict()) == config

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HrmConfig(n_nodes=0)
        with pytest.raises(ConfigurationError):
            HrmConfig(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            HrmConfig(n_channels=1)
        with pytest.raises(ConfigurationError):
            HrmConfig(vms_per_node=0)
        with pytest.raises(ConfigurationError):
            HrmConfig(vm_critical_fraction=0.6)
        with pytest.raises(ConfigurationError):
            HrmConfig(vm_application_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HrmConfig(accesses_per_s=-1.0)


class TestNodeBuild:
    def test_temperature_deterministic_and_in_band(self):
        config = HrmConfig(n_nodes=4, seed=5)
        for node in range(4):
            t = node_temperature_c(config, node)
            assert t == node_temperature_c(config, node)
            assert abs(t - config.temperature_base_c) <= (
                config.temperature_spread_c)

    def test_unknown_arm_rejected(self):
        with pytest.raises(ConfigurationError):
            build_arm_node(HrmConfig(), "all-medium", 0)

    def test_tiered_arm_places_without_spill(self):
        config = HrmConfig(n_nodes=1)
        _, placement = build_arm_node(config, "tiered", 0)
        assert placement.spilled_mb() == 0.0

    def test_all_relaxed_arm_has_no_reliable_domain(self):
        memory, _ = build_arm_node(HrmConfig(n_nodes=1), "all-relaxed", 0)
        assert memory.reliable_domain() is None
        assert all(d.refresh_interval_s == pytest.approx(5.0)
                   for d in memory.domains())

    def test_all_nominal_arm_stays_at_nominal(self):
        memory, _ = build_arm_node(HrmConfig(n_nodes=1), "all-nominal", 0)
        assert memory.reliable_domain() is not None
        assert all(d.refresh_interval_s <= 0.064 for d in memory.domains())

    def test_evaluate_node_is_pure(self):
        config = HrmConfig(n_nodes=2)
        for arm in HRM_ARMS:
            assert (evaluate_node(config, arm, 1)
                    == evaluate_node(config, arm, 1))


class TestAbReport:
    def test_jobs_invariant_bytes(self):
        config = HrmConfig(n_nodes=3, duration_s=600.0)
        solo = canonical_json(run_hrm_ab(config, jobs=1))
        assert canonical_json(run_hrm_ab(config, jobs=1)) == solo
        assert canonical_json(run_hrm_ab(config, jobs=2)) == solo

    def test_frontier_holds(self):
        report = run_hrm_ab(HrmConfig(n_nodes=2))
        frontier = report["frontier"]
        assert frontier["tiered_beats_nominal_energy"]
        assert frontier["tiered_beats_relaxed_ue"]
        assert 0.0 < frontier["refresh_energy_savings_vs_nominal"] < 1.0
        assert frontier["critical_ue_ratio_vs_relaxed"] < 1e-6

    def test_report_shape(self):
        config = HrmConfig(n_nodes=2)
        report = run_hrm_ab(config)
        assert report["version"] == 1
        assert report["config"] == config.as_dict()
        assert set(report["arms"]) == set(HRM_ARMS)
        assert len(report["nodes"]) == config.n_nodes
        for arm in HRM_ARMS:
            totals = report["arms"][arm]
            assert totals["nodes"] == config.n_nodes
            assert totals["energy_j"] == pytest.approx(
                totals["refresh_energy_j"] + totals["ecc_energy_j"])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_hrm_ab(HrmConfig(n_nodes=2), jobs=0)
