"""Tests for SLAs and their tracking."""

import pytest

from repro.cloudmgr.sla import BRONZE, GOLD, SILVER, SLA, SLATracker
from repro.core.exceptions import ConfigurationError


class TestTiers:
    def test_tier_ordering(self):
        assert GOLD.priority > SILVER.priority > BRONZE.priority
        assert GOLD.failure_budget < SILVER.failure_budget < \
            BRONZE.failure_budget
        assert GOLD.availability_target > BRONZE.availability_target

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SLA("x", availability_target=0.0, failure_budget=1e-3)
        with pytest.raises(ConfigurationError):
            SLA("x", availability_target=0.99, failure_budget=0.0)
        with pytest.raises(ConfigurationError):
            SLA("x", availability_target=0.99, failure_budget=1e-3,
                min_frequency_fraction=0.0)


class TestTracker:
    def test_register_and_account(self):
        tracker = SLATracker()
        tracker.register("vm0", SILVER)
        tracker.account("vm0", 99.0, up=True)
        tracker.account("vm0", 1.0, up=False)
        record = tracker.record("vm0")
        assert record.availability == pytest.approx(0.99)

    def test_duplicate_registration_rejected(self):
        tracker = SLATracker()
        tracker.register("vm0", SILVER)
        with pytest.raises(ConfigurationError):
            tracker.register("vm0", GOLD)

    def test_unknown_vm_rejected(self):
        with pytest.raises(KeyError):
            SLATracker().record("ghost")

    def test_violation_counted_when_target_missed(self):
        tracker = SLATracker()
        tracker.register("vm0", GOLD)  # needs 0.9999
        tracker.account("vm0", 10.0, up=True)
        tracker.account("vm0", 10.0, up=False)
        assert tracker.record("vm0").violations >= 1
        assert not tracker.record("vm0").meets_target

    def test_no_violation_within_target(self):
        tracker = SLATracker()
        tracker.register("vm0", BRONZE)  # needs 0.99
        tracker.account("vm0", 1000.0, up=True)
        tracker.account("vm0", 1.0, up=False)
        assert tracker.record("vm0").violations == 0
        assert tracker.fleet_meets_targets()

    def test_availability_defaults_to_one(self):
        tracker = SLATracker()
        tracker.register("vm0", SILVER)
        assert tracker.record("vm0").availability == 1.0

    def test_migration_noted(self):
        tracker = SLATracker()
        tracker.register("vm0", SILVER)
        tracker.note_migration("vm0")
        assert tracker.record("vm0").migrations == 1

    def test_summary_covers_all_vms(self):
        tracker = SLATracker()
        tracker.register("a", SILVER)
        tracker.register("b", BRONZE)
        summary = tracker.availability_summary()
        assert set(summary) == {"a", "b"}

    def test_negative_time_rejected(self):
        tracker = SLATracker()
        tracker.register("vm0", SILVER)
        with pytest.raises(ConfigurationError):
            tracker.account("vm0", -1.0, up=True)
