"""Integration tests for the full cross-layer UniServerNode."""

import pytest

from repro.core import UniServerNode
from repro.core.exceptions import ConfigurationError
from repro.eop import EOPPolicy
from repro.hypervisor import make_vm_fleet
from repro.workloads import spec_workload


@pytest.fixture(scope="module")
def deployed_node():
    node = UniServerNode(seed=3)
    node.pre_deploy()
    node.deploy()
    return node


class TestDeploymentFlow:
    def test_deploy_requires_characterisation(self):
        node = UniServerNode()
        with pytest.raises(ConfigurationError):
            node.deploy()

    def test_pre_deploy_characterises_everything(self):
        node = UniServerNode(seed=1)
        margins = node.pre_deploy()
        n_cores = node.platform.chip.n_cores
        n_relaxable = len(node.platform.memory.domains()) - 1
        assert len(margins.margins) == n_cores + n_relaxable

    def test_deploy_applies_margins(self):
        node = UniServerNode(seed=2)
        node.pre_deploy()
        changed = node.deploy()
        assert len(changed) > 0
        nominal = node.platform.chip.spec.nominal
        assert any(
            node.platform.core_point(c.core_id).voltage_v
            < nominal.voltage_v
            for c in node.platform.chip.cores
        )

    def test_conservative_deploy_stays_nominal(self):
        node = UniServerNode(seed=2)
        node.pre_deploy()
        changed = node.deploy(EOPPolicy.conservative())
        assert changed == []
        nominal = node.platform.chip.spec.nominal
        assert all(
            node.platform.core_point(c.core_id) == nominal
            for c in node.platform.chip.cores
        )

    def test_vms_require_deployment(self):
        node = UniServerNode()
        vm = make_vm_fleet(spec_workload("mcf"), 1)[0]
        with pytest.raises(ConfigurationError):
            node.launch_vm(vm)


class TestEnergyReport:
    def test_eop_saves_energy(self, deployed_node):
        report = deployed_node.energy_report()
        assert report.saving_fraction > 0.10
        assert report.eop_power_w < report.nominal_power_w

    def test_report_does_not_disturb_configuration(self, deployed_node):
        before = [
            deployed_node.platform.core_point(c.core_id)
            for c in deployed_node.platform.chip.cores
        ]
        deployed_node.energy_report()
        after = [
            deployed_node.platform.core_point(c.core_id)
            for c in deployed_node.platform.chip.cores
        ]
        assert before == after


class TestRuntimeLoop:
    def test_vms_run_at_eop(self):
        node = UniServerNode(seed=5)
        node.pre_deploy()
        node.deploy()
        vms = make_vm_fleet(
            spec_workload("hmmer", duration_cycles=5e10), 3)
        for vm in vms:
            node.launch_vm(vm)
        node.run(30.0)
        assert all(vm.executed_cycles > 0 for vm in vms)
        assert not node.hypervisor.crashed

    def test_snapshot_reflects_configuration(self, deployed_node):
        snapshot = deployed_node.snapshot()
        assert snapshot.node == deployed_node.platform.name
        assert "core0" in snapshot.configuration

    def test_recharacterize_appends_history(self):
        node = UniServerNode(seed=6)
        node.pre_deploy()
        node.deploy()
        node.recharacterize()
        assert len(node.margin_history) == 2
        assert node.margin_history[1].trigger == "on-demand"

    def test_predictor_training_from_stresslog(self):
        node = UniServerNode(seed=7)
        node.pre_deploy()
        node.deploy()
        node.train_predictor()
        workload = spec_workload("mcf")
        nominal = node.platform.chip.spec.nominal
        safe = node.predictor.predict_failure(nominal, workload.profile)
        deep = node.predictor.predict_failure(
            nominal.with_voltage(nominal.voltage_v * 0.72),
            workload.profile)
        assert deep > safe
