"""Tests for operating points, guard bands and EOP tables."""

import math

import pytest

from repro.core.eop import (
    NOMINAL_REFRESH_INTERVAL_S,
    CharacterizedPoint,
    EOPTable,
    GuardBandBreakdown,
    OperatingPoint,
    dvfs_ladder,
    refresh_ladder,
    voltage_sweep,
)
from repro.core.exceptions import OperatingPointError


class TestOperatingPoint:
    def test_valid_point_constructs(self):
        p = OperatingPoint(0.9, 2.4e9)
        assert p.voltage_v == 0.9
        assert p.refresh_interval_s == NOMINAL_REFRESH_INTERVAL_S

    @pytest.mark.parametrize("voltage", [0.1, 2.5, -1.0])
    def test_rejects_implausible_voltage(self, voltage):
        with pytest.raises(OperatingPointError):
            OperatingPoint(voltage, 2.4e9)

    @pytest.mark.parametrize("freq", [0.0, 1e5, 2e10])
    def test_rejects_implausible_frequency(self, freq):
        with pytest.raises(OperatingPointError):
            OperatingPoint(0.9, freq)

    def test_rejects_implausible_refresh(self):
        with pytest.raises(OperatingPointError):
            OperatingPoint(0.9, 2.4e9, refresh_interval_s=120.0)

    def test_voltage_offset_sign_convention(self):
        nominal = OperatingPoint(1.0, 2.4e9)
        undervolted = nominal.with_voltage(0.9)
        assert undervolted.voltage_offset_from(nominal) == pytest.approx(-0.1)

    def test_refresh_relaxation_factor(self):
        p = OperatingPoint(0.9, 2.4e9, refresh_interval_s=1.5)
        assert p.refresh_relaxation_factor() == pytest.approx(1.5 / 0.064)

    def test_with_methods_do_not_mutate(self):
        p = OperatingPoint(0.9, 2.4e9)
        q = p.with_voltage(0.8)
        assert p.voltage_v == 0.9 and q.voltage_v == 0.8
        r = p.with_frequency(1.2e9)
        assert r.frequency_hz == 1.2e9 and p.frequency_hz == 2.4e9

    def test_scaled(self):
        p = OperatingPoint(1.0, 2.0e9)
        q = p.scaled(voltage_factor=0.7, frequency_factor=0.5)
        assert q.voltage_v == pytest.approx(0.7)
        assert q.frequency_hz == pytest.approx(1.0e9)

    def test_points_are_ordered_and_hashable(self):
        a = OperatingPoint(0.8, 2e9)
        b = OperatingPoint(0.9, 2e9)
        assert a < b
        assert len({a, b, OperatingPoint(0.8, 2e9)}) == 2

    def test_describe_mentions_all_knobs(self):
        text = OperatingPoint(0.844, 2.6e9).describe()
        assert "0.844" in text and "2.60" in text and "64" in text


class TestGuardBands:
    def test_table1_defaults(self):
        gb = GuardBandBreakdown()
        rows = dict((name, value) for name, value in gb.rows())
        assert rows["Voltage droops"] == pytest.approx(0.20)
        assert rows["Vmin"] == pytest.approx(0.15)
        assert rows["Core-to-core variations"] == pytest.approx(0.05)

    def test_total_is_additive_worst_case(self):
        assert GuardBandBreakdown().total() == pytest.approx(0.40)

    def test_guardbanded_voltage_exceeds_true_vmin(self):
        gb = GuardBandBreakdown()
        assert gb.guardbanded_voltage(0.7) == pytest.approx(0.7 * 1.4)


class TestEOPTable:
    def _cp(self, voltage, pfail, power):
        return CharacterizedPoint(
            point=OperatingPoint(voltage, 2.4e9),
            failure_probability=pfail,
            relative_power=power,
        )

    def test_best_point_respects_budget(self):
        table = EOPTable()
        table.add("core0", self._cp(0.8, 1e-3, 0.7))
        table.add("core0", self._cp(0.9, 1e-7, 0.85))
        best = table.best_point("core0", failure_budget=1e-4)
        assert best is not None
        assert best.point.voltage_v == pytest.approx(0.9)

    def test_best_point_prefers_lowest_power_safe(self):
        table = EOPTable()
        table.add("core0", self._cp(0.9, 1e-8, 0.85))
        table.add("core0", self._cp(0.82, 1e-6, 0.72))
        best = table.best_point("core0", failure_budget=1e-5)
        assert best.relative_power == pytest.approx(0.72)

    def test_best_point_none_when_nothing_safe(self):
        table = EOPTable()
        table.add("core0", self._cp(0.8, 0.5, 0.7))
        assert table.best_point("core0", failure_budget=1e-6) is None

    def test_merge_combines_components(self):
        a, b = EOPTable(), EOPTable()
        a.add("core0", self._cp(0.9, 1e-7, 0.8))
        b.add("dimm0", self._cp(0.9, 1e-9, 0.9))
        a.merge(b)
        assert a.components() == ["core0", "dimm0"]

    def test_energy_saving_estimate(self):
        table = EOPTable()
        table.add("core0", self._cp(0.85, 1e-9, 0.8))
        table.add("core1", self._cp(0.85, 0.9, 0.8))  # unsafe -> no saving
        assert table.energy_saving_estimate(1e-4) == pytest.approx(0.1)


class TestLadders:
    def test_dvfs_ladder_endpoints(self):
        nominal = OperatingPoint(1.0, 2.0e9)
        ladder = dvfs_ladder(nominal, steps=5)
        assert ladder[0] == nominal
        assert ladder[-1].voltage_v == pytest.approx(0.7)
        assert ladder[-1].frequency_hz == pytest.approx(1.0e9)

    def test_dvfs_ladder_needs_two_steps(self):
        with pytest.raises(OperatingPointError):
            dvfs_ladder(OperatingPoint(1.0, 2e9), steps=1)

    def test_refresh_ladder_ends_near_five_seconds(self):
        ladder = refresh_ladder(OperatingPoint(1.0, 2e9))
        assert ladder[-1].refresh_interval_s == pytest.approx(5.0, rel=0.01)

    def test_voltage_sweep_descends_in_fixed_steps(self):
        nominal = OperatingPoint(1.0, 2e9)
        points = voltage_sweep(nominal, max_offset=0.1, step_mv=10.0)
        voltages = [p.voltage_v for p in points]
        assert voltages[0] == pytest.approx(1.0)
        diffs = [voltages[i] - voltages[i + 1] for i in range(len(voltages) - 1)]
        assert all(d == pytest.approx(0.010) for d in diffs)
        assert min(voltages) >= 0.9 - 1e-9

    def test_voltage_sweep_rejects_bad_offset(self):
        with pytest.raises(OperatingPointError):
            voltage_sweep(OperatingPoint(1.0, 2e9), max_offset=1.5)
