"""Tests for resource isolation and selective checkpointing."""

import pytest

from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S
from repro.core.exceptions import (
    CheckpointError,
    ConfigurationError,
    IsolationError,
)
from repro.hardware import build_uniserver_node
from repro.hardware.faults import (
    FaultClass,
    FaultLedger,
    FaultOrigin,
    FaultRecord,
)
from repro.hypervisor.checkpoint import (
    CheckpointCostModel,
    CheckpointManager,
)
from repro.hypervisor.isolation import IsolationManager, IsolationPolicy
from repro.hypervisor.objects import ObjectCatalog, SENSITIVE_CATEGORIES


def fault(component, t=0.0, klass=FaultClass.CORRECTABLE):
    return FaultRecord(timestamp=t, fault_class=klass,
                       origin=FaultOrigin.CPU_CORE, component=component)


class TestIsolation:
    @pytest.fixture
    def manager(self):
        platform = build_uniserver_node()
        return IsolationManager(
            platform, IsolationPolicy(core_error_threshold=3,
                                      domain_error_threshold=2,
                                      window_s=100.0))

    def test_core_isolated_above_threshold(self, manager):
        ledger = FaultLedger()
        for i in range(4):
            ledger.record(fault("core2", t=float(i)))
        actions = manager.review(ledger, now=10.0)
        assert [a.resource for a in actions] == ["core2"]
        assert manager.platform.chip.core(2).isolated

    def test_below_threshold_no_action(self, manager):
        ledger = FaultLedger()
        ledger.record(fault("core2"))
        assert manager.review(ledger, now=10.0) == []

    def test_old_errors_outside_window_ignored(self, manager):
        ledger = FaultLedger()
        for i in range(5):
            ledger.record(fault("core2", t=float(i)))
        assert manager.review(ledger, now=500.0) == []

    def test_domain_reverted_to_nominal(self, manager):
        domain = manager.platform.memory.domain("channel1")
        domain.set_refresh_interval(1.5)
        ledger = FaultLedger()
        for i in range(3):
            ledger.record(fault("channel1", t=float(i)))
        actions = manager.review(ledger, now=10.0)
        assert any(a.kind == "domain" for a in actions)
        assert domain.refresh_interval_s == NOMINAL_REFRESH_INTERVAL_S

    def test_refuses_to_isolate_last_core(self, manager):
        chip = manager.platform.chip
        for core in chip.cores[:-1]:
            core.isolate()
        ledger = FaultLedger()
        last = chip.cores[-1].core_id
        for i in range(5):
            ledger.record(fault(f"core{last}", t=float(i)))
        with pytest.raises(IsolationError):
            manager.review(ledger, now=10.0)

    def test_release_core(self, manager):
        manager.platform.chip.core(1).isolate()
        manager.release_core(1)
        assert not manager.platform.chip.core(1).isolated

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            IsolationPolicy(core_error_threshold=0)


class TestCheckpoint:
    @pytest.fixture(scope="class")
    def catalog(self):
        return ObjectCatalog(seed=1)

    def test_protects_sensitive_categories_by_default(self, catalog):
        manager = CheckpointManager(catalog)
        assert set(manager.protected_categories) == set(SENSITIVE_CATEGORIES)

    def test_coverage_fraction_majority_of_crucial(self, catalog):
        """The paper's clustering argument: a few categories cover most
        crucial objects, making selective protection cheap."""
        manager = CheckpointManager(catalog)
        assert manager.coverage_fraction() > 0.6

    def test_restore_requires_snapshot(self, catalog):
        manager = CheckpointManager(catalog)
        fs_object = catalog.objects_in("fs")[0]
        with pytest.raises(CheckpointError):
            manager.restore(fs_object.object_id)

    def test_snapshot_then_restore(self, catalog):
        manager = CheckpointManager(catalog)
        manager.snapshot()
        fs_object = catalog.objects_in("fs")[0]
        assert manager.can_restore(fs_object.object_id)
        cost = manager.restore(fs_object.object_id)
        assert cost > 0
        assert manager.stats.restores == 1

    def test_unprotected_object_not_restorable(self, catalog):
        manager = CheckpointManager(catalog)
        manager.snapshot()
        vdso_object = catalog.objects_in("vdso")[0]
        assert manager.handle_corruption(vdso_object.object_id) is False

    def test_protected_object_recovered(self, catalog):
        manager = CheckpointManager(catalog)
        manager.snapshot()
        kernel_object = catalog.objects_in("kernel")[0]
        assert manager.handle_corruption(kernel_object.object_id) is True

    def test_memory_overhead_proportional_to_protected_bytes(self, catalog):
        manager = CheckpointManager(catalog)
        full = CheckpointManager(catalog,
                                 protected_categories=catalog.categories())
        assert full.memory_overhead_mb() > manager.memory_overhead_mb() > 0

    def test_unknown_category_rejected_early(self, catalog):
        with pytest.raises(KeyError):
            CheckpointManager(catalog, protected_categories=("warp",))

    def test_cost_model_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointCostModel(snapshot_s_per_mb=-1.0)
