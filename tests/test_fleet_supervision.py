"""Tests for supervised fleet workers: kills, wedges, quarantine."""

import json
import os
import pathlib
import signal
import subprocess
import sys

import pytest

from repro.core.exceptions import (
    ConfigurationError,
    FleetWorkerError,
    PersistenceError,
)
from repro.fleet import (
    FleetCampaign,
    FleetCampaignConfig,
    FleetConfig,
    run_fleet_campaign,
)
from repro.persistence.snapshot import (
    canonical_json,
    shard_entries,
    verify_shard_entries,
)

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def small_config(**overrides):
    fleet = overrides.pop("fleet", None) or FleetConfig(
        n_nodes=overrides.pop("n_nodes", 8),
        seed=overrides.pop("seed", 0))
    defaults = dict(fleet=fleet, duration_s=1800.0,
                    arrivals_per_hour=240.0, mean_lifetime_s=600.0,
                    telemetry_every_steps=5, shards=4)
    defaults.update(overrides)
    return FleetCampaignConfig(**defaults)


class TestWorkerError:
    def test_carries_worker_and_progress(self):
        error = FleetWorkerError("worker 1 died", worker=1,
                                 shards=[1, 3], last_acked_step=6)
        assert error.worker == 1
        assert error.shards == (1, 3)
        assert error.last_acked_step == 6

    def test_defaults(self):
        error = FleetWorkerError("anonymous")
        assert error.worker == -1
        assert error.shards == ()
        assert error.last_acked_step is None


class TestKillInjection:
    def test_killed_workers_replay_to_identical_report(self):
        config = small_config(chaos_seed=5)
        clean = canonical_json(run_fleet_campaign(config, jobs=1))
        killed = canonical_json(run_fleet_campaign(
            config, jobs=2, kill_worker_at=[(7, 0), (19, 1)],
            max_worker_restarts=3, checkpoint_every_steps=6))
        assert killed == clean
        assert "quarantine" not in json.loads(killed)

    def test_kill_without_checkpoints_replays_from_genesis(self):
        config = small_config()
        clean = canonical_json(run_fleet_campaign(config, jobs=1))
        killed = canonical_json(run_fleet_campaign(
            config, jobs=2, kill_worker_at=[(13, 0)],
            checkpoint_every_steps=None))
        assert killed == clean

    def test_kill_validation(self):
        with pytest.raises(ConfigurationError):
            run_fleet_campaign(small_config(), jobs=1,
                               kill_worker_at=[(3, 0)])
        with pytest.raises(ConfigurationError):
            run_fleet_campaign(small_config(), jobs=2,
                               kill_worker_at=[(3, 9)])
        with pytest.raises(ConfigurationError):
            run_fleet_campaign(small_config(), jobs=2,
                               kill_worker_at=[(-1, 0)])


class TestWedgedWorker:
    def test_sigstopped_worker_is_replaced_and_replayed(self):
        config = small_config(chaos_seed=5)
        clean = canonical_json(run_fleet_campaign(config, jobs=1))
        campaign = FleetCampaign(config, jobs=2,
                                 worker_timeout_s=1.5,
                                 max_worker_restarts=2)
        try:
            campaign.run(until_step=5)
            process, _conn = campaign.executor._workers[0]
            os.kill(process.pid, signal.SIGSTOP)
            campaign.run()
            report = campaign.report()
        finally:
            campaign.close()
        assert canonical_json(report) == clean
        assert campaign.executor.worker_restarts_total >= 1

    def test_quarantine_after_exhausted_restarts(self):
        config = small_config(chaos_seed=5)
        report = run_fleet_campaign(
            config, jobs=2, kill_worker_at=[(7, 0)],
            max_worker_restarts=0)
        quarantine = report["quarantine"]
        assert quarantine["nodes"] == 4  # two of four 2-node shards
        assert quarantine["worker_restarts"] == 1
        assert report["totals"]["steps"] == config.n_steps
        assert report["totals"]["nodes_down_final"] >= 4
        # Clean runs never carry the block.
        clean = run_fleet_campaign(config, jobs=1)
        assert "quarantine" not in clean

    def test_full_quarantine_still_completes(self):
        config = small_config(chaos_seed=None)
        report = run_fleet_campaign(
            config, jobs=2, kill_worker_at=[(3, 0), (4, 1)],
            max_worker_restarts=0)
        assert report["quarantine"]["nodes"] == 8
        assert report["totals"]["steps"] == config.n_steps
        # With every node quarantined, admission rejects everything
        # after the freeze.
        assert report["totals"]["rejected"] > 0


class TestCloseEscalation:
    def test_close_kills_wedged_worker(self):
        campaign = FleetCampaign(small_config(), jobs=2)
        executor = campaign.executor
        executor.CLOSE_JOIN_TIMEOUT_S = 0.5  # shadow the class attr
        campaign.run(until_step=3)
        processes = [entry[0] for entry in executor._workers]
        # A SIGSTOPped worker ignores both "stop" and SIGTERM; close()
        # must escalate to SIGKILL instead of hanging.
        os.kill(processes[0].pid, signal.SIGSTOP)
        campaign.close()
        for process in processes:
            assert not process.is_alive()

    def test_close_joins_cooperative_workers(self):
        campaign = FleetCampaign(small_config(), jobs=2)
        campaign.run(until_step=3)
        processes = [entry[0]
                     for entry in campaign.executor._workers]
        campaign.close()
        for process in processes:
            assert not process.is_alive()


class TestPerShardSnapshots:
    def test_snapshot_carries_checksummed_shards(self, tmp_path):
        campaign = FleetCampaign(small_config(),
                                 snapshot_dir=tmp_path)
        campaign.run(until_step=10)
        campaign.take_snapshot()
        campaign.close()
        snapshot = json.loads(
            (tmp_path / "snapshot-00000010.json").read_text())
        shards = snapshot["body"]["payload"]["fleet"]["shards"]
        assert len(shards) == 4
        assert all("sha256" in entry for entry in shards)

    def test_damaged_shard_is_named(self):
        entries = shard_entries([(0, 2, {"n_nodes": 2}),
                                 (2, 4, {"n_nodes": 2})])
        entries[1]["state"] = {"n_nodes": 99}
        with pytest.raises(PersistenceError, match=r"shard \[2, 4\)"):
            verify_shard_entries(entries)

    def test_resume_across_worker_counts(self, tmp_path):
        config = small_config(chaos_seed=5)
        full = canonical_json(run_fleet_campaign(config, jobs=2))
        campaign = FleetCampaign(config, jobs=2,
                                 snapshot_dir=tmp_path)
        campaign.run(until_step=15)
        campaign.take_snapshot()
        campaign.close()
        resumed = FleetCampaign(config, jobs=1,
                                snapshot_dir=tmp_path)
        assert resumed.resume()
        resumed.run()
        report = canonical_json(resumed.report())
        resumed.close()
        assert report == full


class TestCliKill:
    def test_cli_worker_kill_matches_clean_report(self, tmp_path):
        """A real SIGKILL inside the CLI subprocess leaves no trace."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(_REPO_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        env["PYTHONHASHSEED"] = "0"
        clean = tmp_path / "clean.json"
        killed = tmp_path / "killed.json"

        def run(path, *extra):
            subprocess.run(
                [sys.executable, "-m", "repro", "fleet",
                 "--nodes", "8", "--duration", "1800",
                 "--shards", "4", "--chaos-seed", "5",
                 "--report-json", str(path), *extra],
                check=True, env=env, cwd=_REPO_ROOT,
                stdout=subprocess.DEVNULL, timeout=240)

        run(clean)
        run(killed, "--jobs", "2", "--kill-worker-at", "11:1",
            "--max-worker-restarts", "2")
        assert clean.read_bytes() == killed.read_bytes()
