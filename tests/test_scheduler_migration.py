"""Tests for scheduling policies and live migration."""

import pytest

from repro.cloudmgr.migration import (
    MigrationCostModel,
    MigrationManager,
)
from repro.cloudmgr.node import ComputeNode
from repro.cloudmgr.scheduler import (
    FilterScheduler,
    RoundRobinScheduler,
    sla_performance_filter,
    sla_reliability_filter,
)
from repro.cloudmgr.sla import BRONZE, GOLD, SILVER, SLATracker
from repro.core.clock import SimClock
from repro.core.exceptions import (
    ConfigurationError,
    MigrationError,
    SchedulingError,
)
from repro.hardware.faults import FaultClass, FaultOrigin, FaultRecord
from repro.hypervisor.vm import VirtualMachine, VMState
from repro.workloads import spec_workload


def make_nodes(clock, n=3):
    return [ComputeNode(f"node{i}", clock, seed=i) for i in range(n)]


def make_vm(name="vm0", cycles=1e12):
    return VirtualMachine(name=name,
                          workload=spec_workload("mcf",
                                                 duration_cycles=cycles))


class TestFilterScheduler:
    def test_schedules_on_feasible_node(self):
        clock = SimClock()
        nodes = make_nodes(clock)
        placement = FilterScheduler().schedule(nodes, make_vm(), SILVER)
        assert placement.node in {n.name for n in nodes}

    def test_prefers_reliable_node(self):
        clock = SimClock()
        nodes = make_nodes(clock)
        # Make node0 and node1 unreliable.
        for node in nodes[:2]:
            for i in range(4):
                node.platform.faults.record(FaultRecord(
                    timestamp=0.0, fault_class=FaultClass.CRASH,
                    origin=FaultOrigin.CPU_CORE, component="core0"))
        placement = FilterScheduler().schedule(nodes, make_vm(), GOLD)
        assert placement.node == "node2"

    def test_crashed_node_filtered(self):
        clock = SimClock()
        nodes = make_nodes(clock, n=2)
        nodes[0].hypervisor._crashed = True
        placement = FilterScheduler().schedule(nodes, make_vm(), BRONZE)
        assert placement.node == "node1"

    def test_no_feasible_node_raises(self):
        clock = SimClock()
        nodes = make_nodes(clock, n=1)
        nodes[0].hypervisor._crashed = True
        with pytest.raises(SchedulingError):
            FilterScheduler().schedule(nodes, make_vm(), BRONZE)

    def test_performance_filter_blocks_slow_nodes(self):
        clock = SimClock()
        node = make_nodes(clock, n=1)[0]
        nominal = node.platform.chip.spec.nominal
        node.platform.set_all_core_points(
            nominal.with_frequency(nominal.frequency_hz * 0.5))
        assert sla_performance_filter(node, make_vm(), GOLD) is False
        assert sla_performance_filter(node, make_vm(), BRONZE) is True

    def test_reliability_filter_spares_nominal_nodes(self):
        from repro.daemons.infovector import ComponentMargin, MarginVector
        from repro.eop import EOPPolicy

        clock = SimClock()
        node = make_nodes(clock, n=1)[0]
        # Node at nominal: acceptable for gold despite loose budget.
        assert sla_reliability_filter(node, make_vm(), GOLD) is True
        # One live adoption flips the verdict: the node is now spending
        # margin under its own (looser) failure budget.
        node.governor.policy = EOPPolicy.adopt_within_budget()
        nominal = node.platform.chip.spec.nominal
        node.governor.adopt(MarginVector(
            timestamp=0.0, node=node.name,
            margins=(ComponentMargin(
                component="core0",
                safe_point=nominal.with_voltage(nominal.voltage_v * 0.9),
                failure_probability=1e-9, relative_power=0.8,
                stress_workload="virus"),)))
        assert node.governor.adopted_count() == 1
        assert sla_reliability_filter(node, make_vm(), GOLD) is False

    def test_scheduler_needs_filters_and_weighers(self):
        with pytest.raises(ConfigurationError):
            FilterScheduler(filters=())
        with pytest.raises(ConfigurationError):
            FilterScheduler(weighers=())


class TestRoundRobin:
    def test_rotates_over_nodes(self):
        clock = SimClock()
        nodes = make_nodes(clock)
        rr = RoundRobinScheduler()
        picks = [rr.schedule(nodes, make_vm(f"vm{i}"), BRONZE).node
                 for i in range(3)]
        assert picks == ["node0", "node1", "node2"]

    def test_no_capacity_raises(self):
        with pytest.raises(SchedulingError):
            RoundRobinScheduler().schedule([], make_vm(), BRONZE)


class TestMigrationCost:
    def test_downtime_much_smaller_than_total(self):
        model = MigrationCostModel()
        assert model.downtime_s(4096.0) < model.total_time_s(4096.0) / 10

    def test_costs_scale_with_memory(self):
        model = MigrationCostModel()
        assert model.total_time_s(8192.0) > model.total_time_s(1024.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MigrationCostModel(bandwidth_mb_s=0.0)
        with pytest.raises(ConfigurationError):
            MigrationCostModel(dirty_fraction=1.0)


class TestMigration:
    def _setup(self):
        clock = SimClock()
        nodes = make_nodes(clock, n=2)
        tracker = SLATracker()
        manager = MigrationManager(tracker=tracker)
        vm = make_vm()
        nodes[0].hypervisor.create_vm(vm)
        tracker.register(vm.name, SILVER)
        return nodes, tracker, manager, vm

    def test_migrate_moves_the_vm(self):
        nodes, tracker, manager, vm = self._setup()
        record = manager.migrate("vm0", nodes[0], nodes[1], SILVER)
        assert record.source == "node0"
        assert record.destination == "node1"
        with pytest.raises(KeyError):
            nodes[0].hypervisor.vm("vm0")
        assert nodes[1].hypervisor.vm("vm0").state is VMState.RUNNING

    def test_migration_accounts_downtime(self):
        nodes, tracker, manager, vm = self._setup()
        manager.migrate("vm0", nodes[0], nodes[1], SILVER)
        record = tracker.record("vm0")
        assert record.migrations == 1
        assert record.downtime_s > 0

    def test_same_node_rejected(self):
        nodes, tracker, manager, vm = self._setup()
        with pytest.raises(MigrationError):
            manager.migrate("vm0", nodes[0], nodes[0], SILVER)

    def test_evacuate_moves_high_priority_first(self):
        clock = SimClock()
        nodes = make_nodes(clock, n=2)
        tracker = SLATracker()
        manager = MigrationManager(tracker=tracker)
        gold_vm = make_vm("gold_vm")
        bronze_vm = make_vm("bronze_vm")
        nodes[0].hypervisor.create_vm(bronze_vm)
        nodes[0].hypervisor.create_vm(gold_vm)
        tracker.register("gold_vm", GOLD)
        tracker.register("bronze_vm", BRONZE)
        records = manager.evacuate(nodes[0], nodes, tracker)
        assert [r.vm_name for r in records] == ["gold_vm", "bronze_vm"]
        assert manager.proactive_migrations() == 2
        assert nodes[0].hypervisor.active_vms() == []


class TestTierAwareWeighing:
    def make_tiered_node(self, name, clock, seed=0, n_channels=4):
        from repro.hardware.chip import ChipModel, arm_server_soc_spec
        from repro.hardware.dram import tiered_server_memory
        from repro.hardware.platform import ServerPlatform
        platform = ServerPlatform(
            ChipModel(arm_server_soc_spec(), seed=seed),
            tiered_server_memory(n_channels=n_channels, seed=seed + 5),
            name=name)
        return ComputeNode(name, clock, platform=platform, seed=seed)

    def critical_vm(self, name="vm0"):
        return VirtualMachine(
            name=name,
            workload=spec_workload("mcf", duration_cycles=1e12),
            criticality_mix={"normal": 0.5, "relaxed": 0.5})

    def test_mixless_vm_scores_neutral(self):
        from repro.cloudmgr.scheduler import tier_capacity_weigher
        clock = SimClock()
        node = self.make_tiered_node("n0", clock)
        assert tier_capacity_weigher(node, make_vm(), SILVER) == 0.5

    def test_untiered_node_scores_neutral(self):
        from repro.cloudmgr.scheduler import tier_capacity_weigher
        clock = SimClock()
        node = ComputeNode("n0", clock)  # binary layout, no tier method gap
        vm = self.critical_vm()
        score = tier_capacity_weigher(node, vm, SILVER)
        assert 0.0 <= score <= 1.0

    def test_starved_normal_tier_scores_lower(self):
        from repro.cloudmgr.scheduler import tier_capacity_weigher
        clock = SimClock()
        roomy = self.make_tiered_node("roomy", clock, seed=1)
        starved = self.make_tiered_node("starved", clock, seed=2)
        # Exhaust the starved node's normal tier so a criticality-heavy
        # VM cannot land its critical slice there.
        normal_mb = (starved.platform.memory
                     .tier_capacity_gb()["normal"] * 1024.0)
        starved.hypervisor.placement.place(
            "squatter", normal_mb - 1.0, placement_class="vm_critical")
        vm = self.critical_vm()
        assert (tier_capacity_weigher(starved, vm, SILVER)
                < tier_capacity_weigher(roomy, vm, SILVER))

    def test_scheduler_prefers_tier_capable_node(self):
        from repro.cloudmgr.scheduler import TIER_AWARE_WEIGHERS
        clock = SimClock()
        roomy = self.make_tiered_node("roomy", clock, seed=1)
        starved = self.make_tiered_node("starved", clock, seed=2)
        normal_mb = (starved.platform.memory
                     .tier_capacity_gb()["normal"] * 1024.0)
        starved.hypervisor.placement.place(
            "squatter", normal_mb - 1.0, placement_class="vm_critical")
        scheduler = FilterScheduler(weighers=TIER_AWARE_WEIGHERS)
        placement = scheduler.schedule(
            [starved, roomy], self.critical_vm(), SILVER)
        assert placement.node == "roomy"

    def test_criticality_mix_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine(
                name="bad",
                workload=spec_workload("mcf", duration_cycles=1e9),
                criticality_mix={})
        with pytest.raises(ConfigurationError):
            VirtualMachine(
                name="bad",
                workload=spec_workload("mcf", duration_cycles=1e9),
                criticality_mix={"normal": -0.1})
