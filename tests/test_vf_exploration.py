"""Tests for the V-F exploration and Pareto extraction."""

import pytest

from repro.characterization.vf_exploration import (
    VFExplorer,
    energy_performance_table,
    pareto_front,
    point_for_performance,
)
from repro.core.exceptions import ConfigurationError
from repro.hardware import ChipModel, arm_server_soc_spec


@pytest.fixture(scope="module")
def explorer():
    chip = ChipModel(arm_server_soc_spec(), seed=1)
    return VFExplorer(chip)


@pytest.fixture(scope="module")
def core_curve(explorer):
    return explorer.explore_core(0)


class TestExploration:
    def test_one_point_per_frequency(self, core_curve):
        assert len(core_curve) == 6
        performances = [p.relative_performance for p in core_curve]
        assert performances == sorted(performances, reverse=True)

    def test_safe_voltage_above_crash(self, core_curve):
        for point in core_curve:
            assert point.point.voltage_v >= \
                point.observed_crash_voltage_v

    def test_lower_frequency_allows_lower_voltage(self, core_curve):
        voltages = [p.point.voltage_v for p in core_curve]
        assert voltages == sorted(voltages, reverse=True)

    def test_energy_tracks_voltage_squared(self, core_curve, explorer):
        nominal_v = explorer.chip.spec.nominal.voltage_v
        for point in core_curve:
            assert point.relative_energy == pytest.approx(
                (point.point.voltage_v / nominal_v) ** 2)

    def test_chip_exploration_covers_all_cores(self, explorer):
        points = explorer.explore_chip(frequency_fractions=(1.0, 0.7))
        cores = {p.core_id for p in points}
        assert cores == set(range(explorer.chip.n_cores))

    def test_bad_fraction_rejected(self, explorer):
        with pytest.raises(ConfigurationError):
            explorer.explore_core(0, frequency_fractions=(1.5,))

    def test_bad_construction_rejected(self, explorer):
        with pytest.raises(ConfigurationError):
            VFExplorer(explorer.chip, guard_margin_v=-0.1)


class TestPareto:
    def test_front_is_non_dominated(self, core_curve):
        front = pareto_front(core_curve)
        for a in front:
            assert not any(b.dominates(a) for b in front)

    def test_front_sorted_by_performance(self, core_curve):
        front = pareto_front(core_curve)
        performances = [p.relative_performance for p in front]
        assert performances == sorted(performances, reverse=True)

    def test_single_core_curve_is_its_own_front(self, core_curve):
        """Monotone V-F curves are entirely Pareto-optimal."""
        assert len(pareto_front(core_curve)) == len(core_curve)

    def test_dominated_points_removed_across_cores(self, explorer):
        points = explorer.explore_chip(frequency_fractions=(1.0, 0.8, 0.6))
        front = pareto_front(points)
        # A weak core's point at a given frequency is dominated by a
        # strong core's point at the same frequency (lower voltage).
        assert len(front) < len(points)

    def test_point_for_performance(self, core_curve):
        front = pareto_front(core_curve)
        chosen = point_for_performance(front, 0.75)
        assert chosen.relative_performance >= 0.75
        deeper = point_for_performance(front, 0.5)
        assert deeper.relative_energy <= chosen.relative_energy

    def test_impossible_floor_rejected(self, core_curve):
        with pytest.raises(ConfigurationError):
            point_for_performance(pareto_front(core_curve), 2.0)

    def test_empty_front_rejected(self):
        with pytest.raises(ConfigurationError):
            point_for_performance([], 0.5)

    def test_table_rows(self, core_curve):
        rows = energy_performance_table(pareto_front(core_curve))
        assert len(rows) == len(core_curve)
        assert all(len(r) == 4 for r in rows)
