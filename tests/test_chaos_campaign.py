"""Tests for chaos campaigns and the degradation-aware control plane."""

import pytest

from repro.cloudmgr import CloudController, ComputeNode
from repro.cloudmgr.sla import SILVER
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError, SchedulingError
from repro.hypervisor.vm import VirtualMachine
from repro.resilience import (
    DegradationConfig,
    run_chaos_ab,
    run_chaos_campaign,
)
from repro.workloads import spec_workload

AB_CONFIG = dict(n_nodes=4, duration_s=3600.0, seed=0,
                 rate_per_hour=8.0, intensity=0.7)


def make_vm(name, cycles=1e11):
    return VirtualMachine(name=name,
                          workload=spec_workload("hmmer",
                                                 duration_cycles=cycles))


class TestCampaign:
    def test_campaign_is_bit_reproducible(self):
        first = run_chaos_campaign(n_nodes=4, duration_s=1500.0, seed=3,
                                   rate_per_hour=10.0, intensity=0.7)
        second = run_chaos_campaign(n_nodes=4, duration_s=1500.0, seed=3,
                                    rate_per_hour=10.0, intensity=0.7)
        # CampaignResult equality covers every headline number and the
        # injection counts (the experiment handle is excluded).
        assert first == second
        assert first.injections == second.injections
        assert first.plan_faults > 0

    def test_needs_at_least_two_nodes(self):
        with pytest.raises(ConfigurationError):
            run_chaos_campaign(n_nodes=1, duration_s=600.0)

    def test_describe_carries_headlines(self):
        result = run_chaos_campaign(n_nodes=2, duration_s=900.0, seed=1)
        text = result.describe()
        assert "availability=" in text and "mttr=" in text

    def test_policies_on_beats_off_on_both_headline_metrics(self):
        comparison = run_chaos_ab(**AB_CONFIG)
        on, off = comparison.on, comparison.off
        assert on.plan_faults == off.plan_faults
        assert on.fleet_availability > off.fleet_availability
        assert on.mttr_s is not None and off.mttr_s is not None
        assert on.mttr_s < off.mttr_s
        assert comparison.availability_gain > 0
        assert comparison.mttr_reduction_s > 0


class TestBeliefDrivenControl:
    def test_scheduling_reads_beliefs_not_ground_truth(self):
        # Crash the only node without giving the controller a chance to
        # miss a heartbeat: the belief is still HEALTHY, so the
        # scheduler picks the node and only the *actuation* fails.
        clock = SimClock()
        node = ComputeNode("node0", clock, seed=0)
        cloud = CloudController(clock, [node])
        node.hypervisor._crashed = True
        with pytest.raises(SchedulingError):
            cloud.launch(make_vm("vm0"), SILVER)

    def test_suspect_nodes_take_no_new_placements(self):
        clock = SimClock()
        nodes = [ComputeNode(f"node{i}", clock, seed=i) for i in range(2)]
        cloud = CloudController(clock, nodes,
                                degradation=DegradationConfig.on())
        for _ in range(cloud.degradation.suspect_after_missed):
            cloud.health.note_missed("node0")
        placement = cloud.launch(make_vm("vm0"), SILVER)
        assert placement.node == "node1"
