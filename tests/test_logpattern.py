"""Tests for the log-pattern failure predictor."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.daemons.logpattern import (
    LogPatternPredictor,
    template_of,
)

HEALTHY_LINES = [
    f"t={i * 1.0:.3f} sample v=0.9{i % 7} temp=5{i % 4}.2 p=38.{i % 9}"
    for i in range(200)
]

FAILURE_LINES = [
    f"t={200 + i:.3f} uncorrectable channel2 double-bit at 0x{i:x}"
    for i in range(20)
] + [
    f"t={220 + i:.3f} crash core{i % 8} watchdog timeout"
    for i in range(20)
]


class TestTemplates:
    def test_numbers_masked(self):
        a = template_of("t=3.200 sample v=0.91 temp=52.2 p=38.1")
        b = template_of("t=9.700 sample v=0.88 temp=49.9 p=41.5")
        assert a == b

    def test_component_indices_masked(self):
        a = template_of("correctable core5 2 corrected")
        b = template_of("correctable core1 4 corrected")
        assert a == b

    def test_hex_masked(self):
        a = template_of("sdc at 0xDEADBEEF")
        b = template_of("sdc at 0x1234")
        assert a == b

    def test_distinct_messages_stay_distinct(self):
        assert template_of("sample v=0.9") != template_of("crash core1")


class TestLearning:
    def test_freeze_requires_data(self):
        predictor = LogPatternPredictor(window=10)
        with pytest.raises(ConfigurationError):
            predictor.freeze()

    def test_learn_after_freeze_rejected(self):
        predictor = LogPatternPredictor(window=10)
        predictor.learn(HEALTHY_LINES)
        predictor.freeze()
        with pytest.raises(ConfigurationError):
            predictor.learn(HEALTHY_LINES)

    def test_observe_before_freeze_rejected(self):
        predictor = LogPatternPredictor(window=10)
        predictor.learn(HEALTHY_LINES)
        with pytest.raises(ConfigurationError):
            predictor.observe(HEALTHY_LINES[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogPatternPredictor(window=1)
        with pytest.raises(ConfigurationError):
            LogPatternPredictor(threshold_sigma=0.0)


class TestScoring:
    @pytest.fixture
    def trained(self):
        predictor = LogPatternPredictor(window=10)
        predictor.learn(HEALTHY_LINES)
        predictor.freeze()
        # Warm the adaptive threshold with healthy traffic.
        predictor.scan(HEALTHY_LINES[:60])
        return predictor

    def test_healthy_traffic_not_flagged(self, trained):
        assert not trained.any_anomaly(HEALTHY_LINES[60:120])

    def test_failure_pattern_flagged(self, trained):
        assert trained.any_anomaly(FAILURE_LINES)

    def test_novel_templates_counted(self, trained):
        verdicts = trained.scan(FAILURE_LINES)
        assert any(v.novel_templates > 0 for v in verdicts)

    def test_window_fills_before_verdicts(self):
        predictor = LogPatternPredictor(window=10)
        predictor.learn(HEALTHY_LINES)
        predictor.freeze()
        verdicts = [predictor.observe(l) for l in HEALTHY_LINES[:9]]
        assert all(v is None for v in verdicts)
        assert predictor.observe(HEALTHY_LINES[9]) is not None

    def test_surprisal_higher_for_failures(self, trained):
        healthy_scores = trained.scan(HEALTHY_LINES[120:160])
        failure_scores = trained.scan(FAILURE_LINES)
        healthy_max = max(v.surprisal for v in healthy_scores)
        failure_max = max(v.surprisal for v in failure_scores)
        assert failure_max > healthy_max
