"""Tests for the TCO model, Table 3 projection and the edge model."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.tco import (
    BASELINE_ARM_SERVER,
    CLOUD,
    EDGE,
    DatacenterSpec,
    DeploymentLatency,
    DvfsCurve,
    EDGE_SITE,
    EdgeServiceModel,
    EnergyEfficiencySources,
    ServerSpec,
    TCOModel,
    apply_energy_efficiency,
    apply_yield_recovery,
    project_table3,
)


class TestServerSpec:
    def test_acquisition_cost_includes_yield_loss(self):
        cheap = ServerSpec("a", chip_cost_usd=850.0, binning_yield=1.0)
        lossy = ServerSpec("b", chip_cost_usd=850.0, binning_yield=0.5)
        assert lossy.acquisition_cost_usd() - cheap.acquisition_cost_usd() \
            == pytest.approx(850.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerSpec("x", binning_yield=0.0)
        with pytest.raises(ConfigurationError):
            DatacenterSpec(pue=0.9)


class TestTCOModel:
    def test_breakdown_sums(self):
        breakdown = TCOModel().breakdown(BASELINE_ARM_SERVER)
        assert breakdown.total_usd == pytest.approx(
            breakdown.capex_usd + breakdown.opex_usd)
        assert breakdown.total_usd > 0

    def test_energy_share_is_realistic(self):
        """Energy (incl. PUE) is a low-teens share of micro-server TCO —
        the leverage behind the paper's 1.15x EE-only TCO gain."""
        share = TCOModel().breakdown(BASELINE_ARM_SERVER).energy_share()
        assert 0.08 < share < 0.20

    def test_improvement_identity(self):
        model = TCOModel()
        assert model.improvement(BASELINE_ARM_SERVER,
                                 BASELINE_ARM_SERVER) == pytest.approx(1.0)

    def test_energy_efficiency_lowers_tco(self):
        model = TCOModel()
        improved = apply_energy_efficiency(BASELINE_ARM_SERVER, 4.0)
        assert model.improvement(BASELINE_ARM_SERVER, improved) > 1.0

    def test_yield_recovery_lowers_tco(self):
        model = TCOModel()
        improved = apply_yield_recovery(BASELINE_ARM_SERVER, 1.0)
        assert model.improvement(BASELINE_ARM_SERVER, improved) > 1.0

    def test_edge_site_infrastructure_is_cheaper(self):
        cloud_infra = TCOModel().breakdown(
            BASELINE_ARM_SERVER).infrastructure_capex_usd
        edge_infra = TCOModel(EDGE_SITE).breakdown(
            BASELINE_ARM_SERVER).infrastructure_capex_usd
        assert edge_infra < cloud_infra

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_energy_efficiency(BASELINE_ARM_SERVER, 0.0)
        with pytest.raises(ConfigurationError):
            apply_yield_recovery(BASELINE_ARM_SERVER, 1.5)


class TestTable3:
    def test_sources_match_scan_interpretation(self):
        sources = EnergyEfficiencySources()
        values = dict(sources.rows())
        assert values["Scaling"] == pytest.approx(1.15)
        assert values["Sw maturity"] == pytest.approx(4.0)
        assert values["Fog"] == pytest.approx(2.0)
        assert values["Margins"] == pytest.approx(3.0)
        assert values["Overall"] == pytest.approx(27.6)

    def test_ee_only_tco_near_paper_value(self):
        """Paper prose: EE gains alone give ~1.15x TCO improvement."""
        projection = project_table3()
        assert projection.ee_only_tco == pytest.approx(1.15, abs=0.05)

    def test_overall_tco_exceeds_ee_only(self):
        """Yield recovery and edge deployment add on top (paper: 1.5x)."""
        projection = project_table3()
        assert projection.overall_tco > projection.ee_only_tco
        assert 1.2 < projection.overall_tco < 1.8

    def test_sources_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyEfficiencySources(scaling=0.0)


class TestEdgeModel:
    def test_cloud_burns_half_the_budget_on_network(self):
        model = EdgeServiceModel(end_to_end_budget_ms=200.0)
        assert model.compute_budget_ms(CLOUD) == pytest.approx(100.0)
        assert model.compute_budget_ms(EDGE) == pytest.approx(195.0)

    def test_cloud_needs_near_peak_frequency(self):
        model = EdgeServiceModel()
        assert model.required_frequency_fraction(CLOUD) > 0.9

    def test_edge_runs_at_half_frequency(self):
        model = EdgeServiceModel()
        assert model.required_frequency_fraction(EDGE) == pytest.approx(
            0.5, abs=0.02)

    def test_paper_headline_savings(self):
        """Section 6.D: ~50 % less energy and ~75 % less power at the
        edge point (50 % f, -30 % V)."""
        point = EdgeServiceModel().service_point(EDGE)
        assert point.voltage_fraction == pytest.approx(0.7, abs=0.01)
        assert point.energy_saving == pytest.approx(0.51, abs=0.03)
        assert point.power_saving == pytest.approx(0.755, abs=0.03)

    def test_compare_reports_relative_savings(self):
        result = EdgeServiceModel().compare()
        assert result["energy_saving_vs_cloud"] > 0.4
        assert result["power_saving_vs_cloud"] > 0.6

    def test_impossible_deadline_rejected(self):
        model = EdgeServiceModel(end_to_end_budget_ms=120.0,
                                 compute_time_at_peak_ms=95.0)
        slow_network = DeploymentLatency("far", network_rtt_ms=100.0)
        with pytest.raises(ConfigurationError):
            model.required_frequency_fraction(slow_network)

    def test_no_budget_left_rejected(self):
        model = EdgeServiceModel(end_to_end_budget_ms=50.0)
        with pytest.raises(ConfigurationError):
            model.compute_budget_ms(DeploymentLatency("x", 60.0))

    def test_dvfs_curve_endpoints(self):
        curve = DvfsCurve()
        assert curve.voltage_fraction(1.0) == pytest.approx(1.0)
        assert curve.voltage_fraction(0.5) == pytest.approx(0.7)
        with pytest.raises(ConfigurationError):
            curve.voltage_fraction(0.0)
