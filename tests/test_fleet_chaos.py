"""Tests for the vectorized fleet chaos layer (repro.fleet.chaos)."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    FleetCampaignConfig,
    FleetChaos,
    FleetConfig,
    fleet_fault_plan,
    fleet_node_index,
    fleet_node_name,
    run_fleet_campaign,
)
from repro.fleet.chaos import FLEET_FAULT_KINDS
from repro.fleet.state import DYNAMIC_FIELDS
from repro.fleet.vectors import FleetVectors, build_fleet_state
from repro.persistence.snapshot import canonical_json
from repro.resilience.chaos import FaultKind, FaultPlan, FaultSpec


def chaos_config(**overrides):
    fleet = overrides.pop("fleet", None) or FleetConfig(
        n_nodes=overrides.pop("n_nodes", 8),
        seed=overrides.pop("seed", 0))
    defaults = dict(fleet=fleet, duration_s=1800.0,
                    arrivals_per_hour=240.0, mean_lifetime_s=600.0,
                    telemetry_every_steps=5, chaos_seed=5)
    defaults.update(overrides)
    return FleetCampaignConfig(**defaults)


class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        a = fleet_fault_plan(8, 3600.0, seed=3)
        b = fleet_fault_plan(8, 3600.0, seed=3)
        assert list(a) == list(b)
        assert list(a) != list(fleet_fault_plan(8, 3600.0, seed=4))

    def test_plan_uses_fleet_kinds_and_names(self):
        plan = fleet_fault_plan(4, 7200.0, seed=0, rate_per_hour=12.0)
        assert len(plan) > 0
        for spec in plan:
            assert spec.kind in FLEET_FAULT_KINDS
            assert fleet_node_index(spec.node, 4) is not None

    def test_node_name_round_trip(self):
        assert fleet_node_name(3) == "node3"
        assert fleet_node_index("node3", 8) == 3
        assert fleet_node_index("node9", 8) is None
        assert fleet_node_index("rack1", 8) is None

    def test_for_kinds_filters(self):
        plan = FaultPlan([
            FaultSpec(FaultKind.NODE_CRASH, "node0", 0.0),
            FaultSpec(FaultKind.HEARTBEAT_LOSS, "node1", 0.0, 60.0),
        ])
        kept = plan.for_kinds(FLEET_FAULT_KINDS)
        assert [s.kind for s in kept] == [FaultKind.NODE_CRASH]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fleet_fault_plan(0, 3600.0)
        with pytest.raises(ConfigurationError):
            fleet_fault_plan(4, 0.0)
        with pytest.raises(ConfigurationError):
            fleet_fault_plan(4, 3600.0, intensity=0.0)


class TestMasks:
    def _chaos(self, specs, n=4, **kwargs):
        config = FleetConfig(n_nodes=n, seed=0)
        return FleetChaos(FaultPlan(specs), config, **kwargs)

    def test_crash_and_down_windows(self):
        chaos = self._chaos(
            [FaultSpec(FaultKind.NODE_CRASH, "node1", 120.0)],
            crash_down_steps=3)
        assert not chaos.crash_mask(1).any()
        assert chaos.crash_mask(2).tolist() == [False, True, False,
                                                False]
        # DOWN for crash_down_steps starting at the crash step.
        assert chaos.down_mask(2)[1] and chaos.down_mask(4)[1]
        assert not chaos.down_mask(5)[1]

    def test_wedge_window_quantization(self):
        chaos = self._chaos([FaultSpec(
            FaultKind.EOP_GOVERNOR_WEDGE, "node0", 90.0, 200.0)])
        # 90s..290s at 60s steps -> steps 1..4 inclusive.
        assert [bool(chaos.wedge_mask(t)[0]) for t in range(6)] \
            == [False, True, True, True, True, False]

    def test_dropout_draws_are_seeded_and_windowed(self):
        spec = FaultSpec(FaultKind.TELEMETRY_DROPOUT, "node2",
                         0.0, 600.0, magnitude=1.0)
        chaos = self._chaos([spec])
        inside = chaos.dropout_mask(3)
        assert inside[2] and not inside[[0, 1, 3]].any()
        assert not chaos.dropout_mask(30).any()  # window over
        again = self._chaos([spec]).dropout_mask(3)
        assert np.array_equal(inside, again)

    def test_view_shares_memory_and_slices(self):
        chaos = self._chaos(
            [FaultSpec(FaultKind.NODE_CRASH, "node2", 0.0)], n=4)
        view = chaos.view(2, 4)
        assert view.n == 2
        assert np.array_equal(view.crash_mask(0),
                              chaos.crash_mask(0)[2:4])
        assert np.shares_memory(view.keys, chaos.keys)

    def test_foreign_nodes_ignored(self):
        chaos = self._chaos(
            [FaultSpec(FaultKind.NODE_CRASH, "rack7", 0.0)])
        assert not chaos.crash_mask(0).any()


class TestKernelIdentityUnderChaos:
    def test_step_equals_step_node_with_chaos(self):
        config = FleetConfig(n_nodes=6, seed=2, review_every_steps=2)
        plan = fleet_fault_plan(6, 1800.0, seed=9, rate_per_hour=40.0)
        vectors = FleetVectors(config)
        batch = build_fleet_state(config)
        naive = build_fleet_state(config)
        chaos_b = FleetChaos(plan, config, keys=batch.keys)
        chaos_n = FleetChaos(plan, config, keys=naive.keys)
        rng = np.random.default_rng(7)
        for t in range(12):
            used = rng.integers(0, config.vcpus_per_node + 1,
                                size=6).astype(np.int64)
            batch.used_vcpus[:] = used
            naive.used_vcpus[:] = used
            vectors.step(batch, t, chaos_b)
            for index in range(6):
                vectors.step_node(naive, index, t, chaos_n)
        for name, _ in DYNAMIC_FIELDS:
            assert np.array_equal(getattr(batch, name),
                                  getattr(naive, name)), name

    def test_crash_demotes_and_downs_node(self):
        config = FleetConfig(n_nodes=2, seed=0)
        chaos = FleetChaos(FaultPlan([
            FaultSpec(FaultKind.NODE_CRASH, "node0", 0.0)]), config,
            crash_down_steps=2)
        state = build_fleet_state(config)
        vectors = FleetVectors(config)
        state.used_vcpus[:] = config.vcpus_per_node
        vectors.step(state, 0, chaos)
        assert not state.margin_on[0] and state.margin_on[1]
        assert state.crashes_total.tolist() == [1, 0]
        assert state.down_until_step[0] == 2
        # DOWN node computes idle activity: strictly less power.
        assert state.power_w[0] < state.power_w[1]


class TestCampaignUnderChaos:
    def test_report_invariance_with_chaos(self):
        baseline = canonical_json(run_fleet_campaign(chaos_config()))
        sharded = canonical_json(run_fleet_campaign(
            chaos_config(shards=4)))
        scalar = canonical_json(run_fleet_campaign(
            chaos_config(stepper="scalar")))
        jobs = canonical_json(run_fleet_campaign(
            chaos_config(shards=4), jobs=2))
        assert baseline == sharded == scalar == jobs

    def test_chaos_seed_changes_report_and_is_echoed(self):
        clean = run_fleet_campaign(chaos_config(chaos_seed=None))
        chaotic = run_fleet_campaign(chaos_config())
        assert clean["report_sha256"] != chaotic["report_sha256"]
        assert chaotic["config"]["chaos_seed"] == 5
        assert clean["totals"]["crashes"] == 0
        assert chaotic["totals"]["crashes"] > 0
        assert chaotic["totals"]["vm_failures"] > 0
        assert "quarantine" not in chaotic

    def test_dropout_shrinks_observed_telemetry(self):
        report = run_fleet_campaign(chaos_config(
            chaos_rate_per_hour=40.0))
        n = chaos_config().fleet.n_nodes
        observed = [entry["telemetry_observed"]
                    for entry in report["series"]]
        assert all(0 <= o <= n for o in observed)
        assert any(o < n for o in observed)
        for entry in report["series"]:
            assert (entry["telemetry_observed"]
                    + entry["telemetry_dropped"]
                    + entry["nodes_down"]
                    >= entry["telemetry_observed"])

    def test_snapshot_resume_under_chaos(self, tmp_path):
        config = chaos_config(shards=2)
        full = run_fleet_campaign(config)
        campaign = None
        from repro.fleet import FleetCampaign
        campaign = FleetCampaign(config, snapshot_dir=tmp_path)
        campaign.run(until_step=17)
        campaign.take_snapshot()
        campaign.close()
        resumed = FleetCampaign(config, snapshot_dir=tmp_path)
        assert resumed.resume()
        resumed.run()
        assert canonical_json(resumed.report()) == canonical_json(full)
        resumed.close()


class TestZonedChaos:
    def test_zoned_experiment_accepts_chaos_seed(self):
        from repro.fleet import run_zoned_rack_experiment

        experiment = run_zoned_rack_experiment(
            n_nodes=4, shards=2, duration_s=1200.0, seed=0,
            chaos_seed=5, chaos_rate_per_hour=20.0)
        assert experiment.stats.arrivals >= 0
        # The same seed drives the same plan as the vector layer.
        plan = fleet_fault_plan(4, 1200.0, seed=5, rate_per_hour=20.0)
        assert len(plan) > 0
