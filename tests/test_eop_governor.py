"""Tests for the transactional EOP governor and its state machine."""

import pytest

from repro.core import UniServerNode
from repro.core.events import CorrectableErrorEvent, EOPTransitionEvent
from repro.daemons.healthlog import HealthLogConfig
from repro.eop import EOPGovernor, EOPPolicy, EOPState
from repro.eop.campaign import EOPCampaignConfig, ErrorInjection
from repro.core.exceptions import ConfigurationError


def make_node(seed=3, policy=None, error_threshold=10):
    """A characterised, deployed node with a supervising governor."""
    node = UniServerNode(
        seed=seed,
        healthlog_config=HealthLogConfig(error_threshold=error_threshold),
        eop_policy=policy)
    node.pre_deploy()
    node.deploy()
    return node


def storm(node, component, count):
    """Publish an error storm the HealthLog ledger will attribute."""
    for _ in range(count):
        node.bus.publish(CorrectableErrorEvent(
            timestamp=node.clock.now, source="hw",
            component=component, detail="storm"))


class TestPolicy:
    def test_named_stances(self):
        assert EOPPolicy.conservative().adopt is False
        assert EOPPolicy.adopt_within_budget().supervise is True
        assert EOPPolicy.aggressive().failure_budget_scale > 1.0
        one_shot = EOPPolicy.one_shot()
        assert one_shot.adopt and not one_shot.supervise

    def test_from_name_round_trip(self):
        for name in ("conservative", "adopt-within-budget",
                     "aggressive", "one-shot"):
            policy = EOPPolicy.from_name(name)
            assert policy.name == name
            assert EOPPolicy.from_dict(policy.as_dict()) == policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            EOPPolicy.from_name("yolo")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EOPPolicy(name="bad", error_budget=0)
        with pytest.raises(ConfigurationError):
            EOPPolicy(name="bad", probation_s=0.0)


class TestAdoption:
    def test_deploy_adopts_and_records(self):
        node = make_node()
        assert node.governor.adopted_count() > 0
        record = node.governor.record("core0")
        assert record is not None
        assert record.state is EOPState.ADOPTED
        assert record.saved_point is not None

    def test_conservative_policy_records_candidates(self):
        node = make_node(policy=EOPPolicy.conservative())
        nominal = node.platform.chip.spec.nominal
        assert all(node.platform.core_point(c.core_id) == nominal
                   for c in node.platform.chip.cores)
        counts = node.governor.counts()
        assert counts[EOPState.ADOPTED.value] == 0
        assert counts[EOPState.CANDIDATE.value] > 0

    def test_transitions_publish_events(self):
        node = UniServerNode(seed=3)
        seen = []
        node.bus.subscribe(EOPTransitionEvent, seen.append)
        node.pre_deploy()
        node.deploy()
        adopted = [e for e in seen if e.to_state == "adopted"]
        assert adopted
        assert all(e.from_state == "nominal" for e in adopted)
        assert node.metrics.counter("eop.adopted") == len(adopted)

    def test_transaction_rolls_back_on_midbatch_failure(self, monkeypatch):
        """A setter blowing up mid-batch must undo the partial adoption."""
        node = UniServerNode(seed=3)
        node.pre_deploy()
        nominal = node.platform.chip.spec.nominal
        original = node.platform.set_core_point
        calls = {"n": 0}

        def flaky(core_id, point):
            calls["n"] += 1
            if calls["n"] == 3:  # two cores adopted, third explodes
                raise RuntimeError("pmbus write failed")
            return original(core_id, point)

        monkeypatch.setattr(node.platform, "set_core_point", flaky)
        node.hypervisor.boot()
        with pytest.raises(RuntimeError):
            node.governor.adopt(node.margin_history[-1])
        monkeypatch.setattr(node.platform, "set_core_point", original)
        assert all(node.platform.core_point(c.core_id) == nominal
                   for c in node.platform.chip.cores)
        assert node.governor.adopted_count() == 0
        assert node.metrics.counter("eop.transactions_rolled_back") == 1.0
        assert node.hypervisor.stats.margin_applications == 0


class TestDemotion:
    def test_anomaly_demotes_component(self):
        node = make_node()
        old_point = node.platform.core_point(3)
        storm(node, "core3", node.healthlog.config.error_threshold + 2)
        record = node.governor.record("core3")
        assert record.state in (EOPState.DEMOTED, EOPState.QUARANTINED)
        assert node.platform.core_point(3) == record.saved_point
        assert node.platform.core_point(3) != old_point
        assert node.metrics.counter("eop.demoted") == 1.0

    def test_budget_breach_demotes_on_step(self):
        """The governor's own ledger check, below the HealthLog anomaly
        threshold."""
        policy = EOPPolicy.adopt_within_budget().with_overrides(
            error_budget=3)
        node = make_node(policy=policy, error_threshold=100)
        storm(node, "core2", 3)
        assert node.governor.record("core2").state is EOPState.ADOPTED
        node.governor.step()
        assert node.governor.record("core2").state is EOPState.DEMOTED

    def test_probation_then_promotion(self):
        policy = EOPPolicy.adopt_within_budget().with_overrides(
            error_budget=3, probation_s=400.0, error_window_s=300.0)
        node = make_node(policy=policy, error_threshold=100)
        storm(node, "core2", 3)
        node.governor.step()
        record = node.governor.record("core2")
        assert record.state is EOPState.DEMOTED
        target = record.target
        # Probation not yet served: still demoted.
        node.clock.advance_by(200.0)
        node.governor.step()
        assert record.state is EOPState.DEMOTED
        # Served, and the ledger window is clean again: re-promoted.
        node.clock.advance_by(250.0)
        node.governor.step()
        assert record.state is EOPState.ADOPTED
        point = node.platform.core_point(2)
        assert point.voltage_v == target.voltage_v
        assert node.metrics.counter("eop.promoted") == 1.0

    def test_quarantine_after_max_demotions(self):
        policy = EOPPolicy.adopt_within_budget().with_overrides(
            error_budget=3, probation_s=400.0, max_demotions=2)
        node = make_node(policy=policy, error_threshold=100)
        storm(node, "core2", 3)
        node.governor.step()
        node.clock.advance_by(450.0)
        node.governor.step()  # promoted again
        assert node.governor.record("core2").state is EOPState.ADOPTED
        storm(node, "core2", 3)
        node.governor.step()
        record = node.governor.record("core2")
        assert record.state is EOPState.QUARANTINED
        assert node.metrics.counter("eop.quarantined") == 1.0
        # Quarantined components refuse re-adoption.
        vector = node.recharacterize()
        txn = node.governor.adopt(vector)
        assert "core2" not in txn.adopted
        assert record.state is EOPState.QUARANTINED
        assert node.metrics.counter("eop.quarantine_blocked") >= 1.0

    def test_one_shot_policy_never_demotes(self):
        node = make_node(policy=EOPPolicy.one_shot())
        storm(node, "core3", 20)
        node.governor.step()
        assert node.governor.record("core3").state is EOPState.ADOPTED
        assert node.metrics.counter("eop.demoted") == 0.0

    def test_wedged_governor_stops_supervising(self):
        node = make_node()
        node.governor.wedged = True
        storm(node, "core3", 20)
        node.governor.step()
        assert node.governor.record("core3").state is EOPState.ADOPTED
        assert node.metrics.counter("eop.wedged_ticks") == 1.0
        node.governor.wedged = False
        node.governor.step()
        assert node.governor.record("core3").state is not EOPState.ADOPTED


class TestStaleFallback:
    def _stale_node(self):
        node = make_node()
        node.governor.stale_fallback_s = 120.0
        assert node.governor.adopted_count() > 0
        return node

    def test_engage_and_restore(self):
        node = self._stale_node()
        adopted_points = {
            c.core_id: node.platform.core_point(c.core_id)
            for c in node.platform.chip.cores
        }
        nominal = node.platform.chip.spec.nominal
        node.healthlog.stalled = True
        node.clock.advance_by(200.0)
        node.governor.step()
        assert node.metrics.counter("resilience.fallback.engaged") == 1.0
        assert all(node.platform.core_point(i) == nominal
                   for i in adopted_points)
        assert node.governor.adopted_count() == 0
        record = node.governor.record("core0")
        assert record.state is EOPState.DEMOTED and record.stale_demoted
        # Freshen: one HealthLog sample updates the info-vector age.
        node.healthlog.stalled = False
        node.clock.advance_by(node.healthlog.config.sampling_period_s + 1)
        node.governor.step()
        assert node.metrics.counter("resilience.fallback.restored") == 1.0
        assert {i: node.platform.core_point(i)
                for i in adopted_points} == adopted_points
        assert record.state is EOPState.ADOPTED
        # A stale demotion is not a strike against the component.
        assert record.demotions == 0

    def test_engage_is_idempotent(self):
        node = self._stale_node()
        node.healthlog.stalled = True
        node.clock.advance_by(200.0)
        node.governor.step()
        node.governor.step()
        node.clock.advance_by(60.0)
        node.governor.step()
        assert node.metrics.counter("resilience.fallback.engaged") == 1.0
        assert node.metrics.counter("resilience.fallback.restored") == 0.0

    def test_restore_is_idempotent(self):
        """Satellite regression: restoring twice must not double-count
        the metric or re-apply already-active points."""
        node = self._stale_node()
        node.healthlog.stalled = True
        node.clock.advance_by(200.0)
        node.governor.step()
        node.healthlog.stalled = False
        node.clock.advance_by(node.healthlog.config.sampling_period_s + 1)
        node.governor.step()
        restored_points = {
            c.core_id: node.platform.core_point(c.core_id)
            for c in node.platform.chip.cores
        }
        promoted = node.metrics.counter("eop.promoted")
        # Second (and third) review with fresh telemetry: no-ops.
        node.governor.step()
        node.governor._review_stale_fallback(node.clock.now)
        assert node.metrics.counter("resilience.fallback.restored") == 1.0
        assert node.metrics.counter("eop.promoted") == promoted
        assert {c.core_id: node.platform.core_point(c.core_id)
                for c in node.platform.chip.cores} == restored_points


class TestPersistence:
    def test_state_dict_round_trip(self):
        policy = EOPPolicy.adopt_within_budget().with_overrides(
            error_budget=3)
        node = make_node(policy=policy, error_threshold=100)
        storm(node, "core2", 3)
        node.governor.step()
        state = node.governor.state_dict()
        twin = UniServerNode(seed=3, eop_policy=policy)
        twin.pre_deploy()
        twin.deploy()
        twin.governor.load_state_dict(state)
        assert twin.governor.counts() == node.governor.counts()
        assert twin.governor.state_table() == node.governor.state_table()
        record = twin.governor.record("core2")
        assert record.state is EOPState.DEMOTED
        assert record.saved_point == \
            node.governor.record("core2").saved_point

    def test_campaign_config_round_trip(self):
        config = EOPCampaignConfig(
            duration_s=600.0, step_s=30.0, seed=5, policy="aggressive",
            injections=(ErrorInjection("core1", 60.0, 120.0, 0.5),))
        state = config.as_dict()
        assert state["injections"][0]["component"] == "core1"
        assert config.build_policy().name == "aggressive"

    def test_injection_cumulative_counts(self):
        injection = ErrorInjection("core1", 100.0, 60.0, 0.5)
        assert injection.errors_before(100.0) == 0
        assert injection.errors_before(130.0) == 15
        assert injection.errors_before(160.0) == 30
        assert injection.errors_before(1000.0) == 30
        parsed = ErrorInjection.parse("core1:100:60:0.5")
        assert parsed == injection
        with pytest.raises(ConfigurationError):
            ErrorInjection.parse("core1:100:60")


class TestChaosWedge:
    def test_chaos_engine_wedges_governor(self):
        from repro.cloudmgr.node import build_rack
        from repro.core.clock import SimClock
        from repro.resilience.chaos import (
            ChaosEngine,
            FaultKind,
            FaultPlan,
            FaultSpec,
        )

        clock = SimClock()
        nodes = build_rack(2, clock=clock, seed=0)
        plan = FaultPlan([FaultSpec(kind=FaultKind.EOP_GOVERNOR_WEDGE,
                                    node="node0", start_s=100.0,
                                    duration_s=200.0)])
        engine = ChaosEngine(plan)
        engine.apply(nodes, now=150.0)
        assert nodes[0].governor.wedged
        assert not nodes[1].governor.wedged
        assert engine.injections["eop_governor_wedge"] == 1
        engine.apply(nodes, now=400.0)
        assert not nodes[0].governor.wedged


def make_tiered_node(seed=3):
    """A deployed node on tiered memory under the tiered EOP policy."""
    from repro.hardware.chip import ChipModel, arm_server_soc_spec
    from repro.hardware.dram import tiered_server_memory
    from repro.hardware.platform import ServerPlatform

    platform = ServerPlatform(
        ChipModel(arm_server_soc_spec(), seed=seed),
        tiered_server_memory(seed=seed + 7), name=f"tiered{seed}")
    node = UniServerNode(
        platform=platform, seed=seed, eop_policy=EOPPolicy.tiered(),
        healthlog_config=HealthLogConfig(error_threshold=1000))
    node.pre_deploy()
    node.deploy()
    return node


class TestTierStances:
    def test_round_trip(self):
        from repro.eop import TierStance
        stance = TierStance(tier="normal", error_budget=5,
                            max_refresh_interval_s=1.5)
        assert TierStance.from_dict(stance.as_dict()) == stance
        policy = EOPPolicy.tiered()
        assert EOPPolicy.from_dict(policy.as_dict()) == policy
        assert EOPPolicy.from_name("tiered") == policy

    def test_validation(self):
        from repro.eop import TierStance
        with pytest.raises(ConfigurationError):
            TierStance(tier="medium")
        with pytest.raises(ConfigurationError):
            TierStance(tier="normal", error_budget=0)
        with pytest.raises(ConfigurationError):
            TierStance(tier="normal", error_window_s=0.0)
        with pytest.raises(ConfigurationError):
            TierStance(tier="normal", max_refresh_interval_s=-1.0)
        with pytest.raises(ConfigurationError):
            EOPPolicy(name="dup", tier_stances=(
                TierStance(tier="normal"), TierStance(tier="normal")))

    def test_stance_lookup(self):
        policy = EOPPolicy.tiered()
        assert policy.stance_for("strong").adopt is False
        assert policy.stance_for("normal").max_refresh_interval_s == 1.5
        assert EOPPolicy.adopt_within_budget().stance_for("normal") is None


class TestTieredGovernor:
    def test_strong_pinned_normal_clamped(self):
        node = make_tiered_node()
        memory = node.platform.memory
        # The reliable strong-tier domain is never offered a margin, so
        # it either has no record or was left un-adopted — and its
        # refresh never moves off nominal either way.
        strong = node.governor.record("channel0")
        assert strong is None or strong.state is not EOPState.ADOPTED
        assert memory.domain("channel0").refresh_interval_s <= 0.064
        # The normal tier adopts but its refresh is clamped at the cap.
        normal = node.governor.record("channel1")
        assert normal is not None and normal.state is EOPState.ADOPTED
        assert memory.domain("channel1").refresh_interval_s <= 1.5

    def test_storm_demotes_only_its_tier(self):
        node = make_tiered_node()
        storm(node, "channel3", 25)  # over the relaxed budget of 20
        node.governor.step()
        events = node.governor.tier_demotion_events
        assert len(events) == 1
        assert events[0]["tier"] == "relaxed"
        assert sorted(events[0]["components"]) == ["channel2", "channel3"]
        for name in ("channel2", "channel3"):
            assert node.governor.record(name).state is EOPState.DEMOTED
        assert node.governor.record("channel1").state is EOPState.ADOPTED

    def test_under_budget_storm_leaves_tier_adopted(self):
        node = make_tiered_node()
        storm(node, "channel3", 10)  # under the relaxed budget of 20
        node.governor.step()
        assert node.governor.tier_demotion_events == []
        for name in ("channel2", "channel3"):
            assert node.governor.record(name).state is EOPState.ADOPTED

    def test_tier_demotion_events_persist(self):
        node = make_tiered_node()
        storm(node, "channel2", 25)
        node.governor.step()
        state = node.governor.state_dict()
        fresh = make_tiered_node(seed=9)
        fresh.governor.load_state_dict(state)
        assert (fresh.governor.tier_demotion_events
                == node.governor.tier_demotion_events)
