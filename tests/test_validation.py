"""Tests for the paper-claim validation helpers."""

import pytest

from repro.analysis.validation import (
    PaperClaim,
    Tolerance,
    ValidationReport,
    validate,
)
from repro.core.exceptions import ConfigurationError


def claim(paper, measured, tolerance=Tolerance.RELATIVE, bound=0.1):
    return PaperClaim(
        experiment="X", description="test claim", paper_value=paper,
        measure=lambda: measured, tolerance=tolerance, bound=bound,
    )


class TestTolerances:
    def test_relative_pass_and_fail(self):
        assert claim(10.0, 10.5).check().passed
        assert not claim(10.0, 12.0).check().passed

    def test_absolute(self):
        assert claim(0.15, 0.152, Tolerance.ABSOLUTE, 0.005).check().passed
        assert not claim(0.15, 0.20, Tolerance.ABSOLUTE, 0.005).check().passed

    def test_at_most(self):
        assert claim(1.0, 0.9, Tolerance.AT_MOST).check().passed
        assert not claim(1.0, 1.1, Tolerance.AT_MOST).check().passed

    def test_at_least(self):
        assert claim(1.0, 1.1, Tolerance.AT_LEAST).check().passed
        assert not claim(1.0, 0.9, Tolerance.AT_LEAST).check().passed

    def test_order_of_magnitude(self):
        assert claim(1e-9, 3e-9, Tolerance.ORDER_OF_MAGNITUDE,
                     0.5).check().passed
        assert not claim(1e-9, 1e-7, Tolerance.ORDER_OF_MAGNITUDE,
                         0.5).check().passed

    def test_oom_rejects_nonpositive(self):
        assert not claim(1e-9, -1.0, Tolerance.ORDER_OF_MAGNITUDE,
                         0.5).check().passed


class TestReport:
    def test_counts_and_failures(self):
        report = validate([claim(1.0, 1.0), claim(1.0, 5.0)])
        assert report.total == 2
        assert report.passed == 1
        assert not report.all_passed
        assert len(report.failures()) == 1

    def test_measurement_exception_is_failure(self):
        def boom():
            raise RuntimeError("campaign failed")

        bad = PaperClaim("X", "exploding claim", 1.0, boom)
        report = validate([bad])
        assert not report.all_passed

    def test_render_contains_verdicts(self):
        report = validate([claim(1.0, 1.0), claim(1.0, 5.0)])
        text = report.render()
        assert "PASS" in text and "FAIL" in text
        assert "1/2" in text

    def test_empty_claims_rejected(self):
        with pytest.raises(ConfigurationError):
            validate([])
