"""Tests for EOP threat analysis and countermeasures."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.security import (
    COUNTERMEASURE_CATALOG,
    NodeExposure,
    StressThrottler,
    ThreatAnalyzer,
    looks_like_stress_attack,
    plan_countermeasures,
    residual_risk,
)
from repro.workloads import CPU_POWER_VIRUS, spec_workload


def exposure(margin=0.0, relaxation=1.0, multi_tenant=False,
             sensors=False, authenticated=True):
    return NodeExposure(
        voltage_margin_used=margin,
        refresh_relaxation=relaxation,
        multi_tenant=multi_tenant,
        sensors_exposed_to_guests=sensors,
        margin_interface_authenticated=authenticated,
    )


CONSERVATIVE = exposure()
AGGRESSIVE = exposure(margin=0.18, relaxation=78.0, multi_tenant=True,
                      sensors=True, authenticated=False)


class TestThreatAnalyzer:
    def test_conservative_config_is_low_risk(self):
        analyzer = ThreatAnalyzer()
        assert analyzer.overall_risk(CONSERVATIVE) < 0.1

    def test_aggressive_config_is_high_risk(self):
        analyzer = ThreatAnalyzer()
        assert analyzer.overall_risk(AGGRESSIVE) > 0.5

    def test_register_sorted_by_risk(self):
        entries = ThreatAnalyzer().assess(AGGRESSIVE)
        risks = [e.risk for e in entries]
        assert risks == sorted(risks, reverse=True)

    def test_single_tenant_disarms_stress_attack(self):
        analyzer = ThreatAnalyzer()
        single = exposure(margin=0.18, multi_tenant=False)
        multi = exposure(margin=0.18, multi_tenant=True)
        stress_single = next(
            e for e in analyzer.assess(single)
            if e.threat.surface == "voltage")
        stress_multi = next(
            e for e in analyzer.assess(multi)
            if e.threat.surface == "voltage")
        assert stress_multi.risk > 5 * stress_single.risk

    def test_authentication_disarms_interface_abuse(self):
        analyzer = ThreatAnalyzer()
        open_iface = exposure(authenticated=False)
        closed = exposure(authenticated=True)
        risk_open = next(e for e in analyzer.assess(open_iface)
                         if e.threat.surface == "interface").risk
        risk_closed = next(e for e in analyzer.assess(closed)
                           if e.threat.surface == "interface").risk
        assert risk_open > risk_closed

    def test_severity_labels(self):
        entries = ThreatAnalyzer().assess(AGGRESSIVE)
        assert entries[0].severity in ("high", "medium")

    def test_exposure_validation(self):
        with pytest.raises(ConfigurationError):
            exposure(margin=-0.1)
        with pytest.raises(ConfigurationError):
            exposure(relaxation=0.5)


class TestCountermeasures:
    def test_plan_reduces_risk_under_target(self):
        plan = plan_countermeasures(AGGRESSIVE, risk_target=0.1)
        assert plan.residual_risk <= 0.1
        assert len(plan.countermeasures) >= 2

    def test_plan_is_minimal_for_safe_configs(self):
        plan = plan_countermeasures(CONSERVATIVE, risk_target=0.1)
        assert plan.countermeasures == ()

    def test_costs_stay_low(self):
        """The paper's constraint: countermeasures must be low cost."""
        plan = plan_countermeasures(AGGRESSIVE, risk_target=0.05)
        assert plan.total_performance_cost < 0.05
        assert plan.total_energy_cost < 0.10

    def test_residual_risk_monotone_in_deployment(self):
        analyzer = ThreatAnalyzer()
        nothing = residual_risk(analyzer, AGGRESSIVE, [])
        everything = residual_risk(analyzer, AGGRESSIVE,
                                   COUNTERMEASURE_CATALOG)
        assert everything < nothing

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_countermeasures(AGGRESSIVE, risk_target=0.0)


class TestStressDetection:
    def test_virus_profile_flagged(self):
        assert looks_like_stress_attack(CPU_POWER_VIRUS.profile)

    def test_spec_benchmarks_not_flagged(self):
        """Real workloads must not be throttled as attacks."""
        from repro.workloads import spec_suite
        for workload in spec_suite():
            assert not looks_like_stress_attack(workload.profile)

    def test_throttler_caps_attacker(self):
        throttler = StressThrottler(frequency_cap_fraction=0.5)
        assert throttler.review_guest("evil", CPU_POWER_VIRUS.profile)
        capped = throttler.effective_profile("evil",
                                             CPU_POWER_VIRUS.profile)
        assert capped.droop_intensity == pytest.approx(
            CPU_POWER_VIRUS.profile.droop_intensity * 0.5)

    def test_throttler_releases_reformed_guest(self):
        throttler = StressThrottler()
        throttler.review_guest("vm0", CPU_POWER_VIRUS.profile)
        assert not throttler.review_guest(
            "vm0", spec_workload("mcf").profile)
        assert "vm0" not in throttler.throttled

    def test_innocent_guest_untouched(self):
        throttler = StressThrottler()
        profile = spec_workload("mcf").profile
        throttler.review_guest("vm0", profile)
        assert throttler.effective_profile("vm0", profile) == profile
