"""Tests for the discrete-event simulation clock."""

import pytest

from repro.core.clock import SimClock, step_count
from repro.core.exceptions import ConfigurationError


class TestScheduling:
    def test_advance_executes_due_events_in_order(self):
        clock = SimClock()
        seen = []
        clock.schedule_at(2.0, lambda: seen.append("b"))
        clock.schedule_at(1.0, lambda: seen.append("a"))
        clock.schedule_at(3.0, lambda: seen.append("c"))
        executed = clock.advance_to(2.5)
        assert seen == ["a", "b"]
        assert executed == 2
        assert clock.now == 2.5

    def test_same_time_events_run_in_insertion_order(self):
        clock = SimClock()
        seen = []
        for tag in "xyz":
            clock.schedule_at(1.0, lambda t=tag: seen.append(t))
        clock.advance_to(1.0)
        assert seen == ["x", "y", "z"]

    def test_schedule_after_is_relative(self):
        clock = SimClock()
        clock.advance_to(10.0)
        fired = []
        clock.schedule_after(5.0, lambda: fired.append(clock.now))
        clock.advance_by(5.0)
        assert fired == [15.0]

    def test_cannot_schedule_in_the_past(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(ConfigurationError):
            clock.schedule_at(4.0, lambda: None)

    def test_cannot_advance_backwards(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(4.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock().schedule_after(-1.0, lambda: None)


class TestPeriodic:
    def test_periodic_fires_at_interval(self):
        clock = SimClock()
        times = []
        clock.schedule_every(2.0, lambda: times.append(clock.now))
        clock.advance_to(7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_periodic_respects_until(self):
        clock = SimClock()
        times = []
        clock.schedule_every(1.0, lambda: times.append(clock.now), until=3.0)
        clock.advance_to(10.0)
        assert times == [1.0, 2.0, 3.0]
        assert clock.pending() == 0

    def test_zero_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock().schedule_every(0.0, lambda: None)


class TestRunUntilIdle:
    def test_drains_queue(self):
        clock = SimClock()
        seen = []
        clock.schedule_at(1.0, lambda: seen.append(1))
        clock.schedule_at(5.0, lambda: seen.append(5))
        executed = clock.run_until_idle()
        assert executed == 2
        assert clock.now == 5.0

    def test_guards_against_unbounded_periodics(self):
        clock = SimClock()
        clock.schedule_every(1.0, lambda: None)
        with pytest.raises(ConfigurationError):
            clock.run_until_idle(max_events=100)

    def test_events_scheduled_by_events_run(self):
        clock = SimClock()
        seen = []

        def first():
            seen.append("first")
            clock.schedule_after(1.0, lambda: seen.append("second"))

        clock.schedule_at(1.0, first)
        clock.run_until_idle()
        assert seen == ["first", "second"]
        assert clock.now == 2.0


class TestStepCount:
    def test_exact_ratio(self):
        assert step_count(10.0, 1.0) == 10
        assert step_count(0.0, 1.0) == 0

    def test_float_error_does_not_drop_a_step(self):
        # 0.3 / 0.1 is 2.9999999999999996 in floats; naive int() loses
        # a step.
        assert step_count(0.3, 0.1) == 3
        assert step_count(3600.0, 0.1) == 36000
        assert step_count(1.0, 1.0 / 3.0) == 3

    def test_non_integral_ratio_truncates(self):
        assert step_count(10.0, 3.0) == 3
        assert step_count(5.5, 2.0) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            step_count(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            step_count(-1.0, 1.0)
