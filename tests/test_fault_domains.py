"""Tests for fault-domain topology, correlated chaos, and defenses."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    CORRELATED_FAULT_KINDS,
    FaultDomainTopology,
    FleetCampaignConfig,
    FleetChaos,
    FleetConfig,
    cooling_zone_name,
    fleet_correlated_plan,
    fleet_node_index,
    pdu_name,
    rack_name,
    run_fleet_campaign,
)
from repro.persistence.snapshot import canonical_json
from repro.resilience.chaos import FaultKind, FaultPlan, FaultSpec

#: 8 nodes in racks of 2: 4 racks, 2 PDUs, 2 cooling zones.
SMALL = FleetConfig(n_nodes=8, seed=0, nodes_per_rack=2)


def correlated_config(**overrides):
    fleet = overrides.pop("fleet", None) or FleetConfig(
        n_nodes=overrides.pop("n_nodes", 8),
        seed=overrides.pop("seed", 0),
        nodes_per_rack=overrides.pop("nodes_per_rack", 2))
    defaults = dict(fleet=fleet, duration_s=1800.0,
                    arrivals_per_hour=240.0, mean_lifetime_s=600.0,
                    telemetry_every_steps=5, correlated_seed=7,
                    correlated_rate_per_hour=2.0,
                    correlated_intensity=0.8, domain_defense=True)
    defaults.update(overrides)
    return FleetCampaignConfig(**defaults)


class TestTopology:
    def test_contiguous_layout(self):
        topo = FaultDomainTopology.from_config(SMALL)
        assert topo.rack_of.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert topo.pdu_of.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]
        assert topo.cooling_of.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]
        assert (topo.n_racks, topo.n_pdus, topo.n_cooling_zones) \
            == (4, 2, 2)

    def test_ragged_tail_rack(self):
        topo = FaultDomainTopology(5, nodes_per_rack=2,
                                   racks_per_pdu=2,
                                   racks_per_cooling_zone=2)
        assert topo.rack_of.tolist() == [0, 0, 1, 1, 2]
        assert topo.n_racks == 3 and topo.n_pdus == 2

    def test_name_round_trips(self):
        topo = FaultDomainTopology.from_config(SMALL)
        assert rack_name(2) == "rack2"
        assert topo.rack_index("rack2") == 2
        assert topo.pdu_index(pdu_name(1)) == 1
        assert topo.cooling_zone_index(cooling_zone_name(0)) == 0
        for bad in ("rack9", "rack02", "pdu0", "", "rack-1"):
            assert topo.rack_index(bad) is None

    def test_masks_partition_the_fleet(self):
        topo = FaultDomainTopology.from_config(SMALL)
        assert topo.pdu_mask(0).tolist() == [True] * 4 + [False] * 4
        assert topo.rack_mask(3).tolist() == [False] * 6 + [True] * 2
        covered = np.zeros(8, dtype=bool)
        for rack in range(topo.n_racks):
            mask = topo.rack_mask(rack)
            assert not (covered & mask).any()
            covered |= mask
        assert covered.all()

    def test_config_echo_round_trip(self):
        echo = correlated_config().as_dict()
        fleet = echo["fleet"]
        rebuilt = FaultDomainTopology(
            fleet["n_nodes"], fleet["nodes_per_rack"],
            fleet["racks_per_pdu"], fleet["racks_per_cooling_zone"])
        original = FaultDomainTopology.from_config(SMALL)
        assert rebuilt.as_dict() == original.as_dict()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultDomainTopology(0, 2, 2, 2)
        with pytest.raises(ConfigurationError):
            FaultDomainTopology(8, 0, 2, 2)
        with pytest.raises(ConfigurationError):
            FleetConfig(n_nodes=4, nodes_per_rack=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(n_nodes=4, brownout_depth_v=-0.1)
        with pytest.raises(ConfigurationError):
            FleetConfig(n_nodes=4, brownout_crash_scale=1.5)


class TestCorrelatedPlan:
    def test_deterministic_and_domain_named(self):
        a = fleet_correlated_plan(SMALL, 3600.0, seed=3)
        b = fleet_correlated_plan(SMALL, 3600.0, seed=3)
        assert list(a) == list(b)
        assert list(a) != list(fleet_correlated_plan(SMALL, 3600.0,
                                                     seed=4))
        topo = FaultDomainTopology.from_config(SMALL)
        for spec in a:
            assert spec.kind in CORRELATED_FAULT_KINDS
            index = (topo.rack_index(spec.node),
                     topo.pdu_index(spec.node),
                     topo.cooling_zone_index(spec.node))
            assert any(i is not None for i in index), spec.node

    def test_every_kind_present_at_any_positive_rate(self):
        plan = fleet_correlated_plan(SMALL, 600.0, seed=0,
                                     rate_per_hour=0.01)
        kinds = {spec.kind for spec in plan}
        assert kinds == set(CORRELATED_FAULT_KINDS)

    def test_zero_rate_is_empty(self):
        assert len(fleet_correlated_plan(SMALL, 3600.0,
                                         rate_per_hour=0.0)) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fleet_correlated_plan(SMALL, 0.0)
        with pytest.raises(ConfigurationError):
            fleet_correlated_plan(SMALL, 3600.0, intensity=0.0)
        with pytest.raises(ConfigurationError):
            fleet_correlated_plan(SMALL, 3600.0, rate_per_hour=-1.0)


class TestNodeIndexEdgeCases:
    """Satellite: the strict ``node{i}`` parse, off-by-one audited."""

    def test_index_bounds(self):
        assert fleet_node_index("node0", 8) == 0
        assert fleet_node_index("node7", 8) == 7
        assert fleet_node_index("node8", 8) is None   # == n_nodes
        assert fleet_node_index("node99", 8) is None

    def test_non_canonical_names_rejected(self):
        for bad in ("node08", "node+1", "node-1", "node", "node 1",
                    "NODE1", "rack0", ""):
            assert fleet_node_index(bad, 8) is None, bad


def _chaos(specs, config=SMALL, **kwargs):
    return FleetChaos(FaultPlan(specs), config, **kwargs)


class TestCorrelatedMasks:
    def test_brownout_covers_rail_with_identical_draws(self):
        chaos = _chaos([FaultSpec(FaultKind.PDU_BROWNOUT, "pdu0",
                                  0.0, 600.0, magnitude=1.0)])
        depth = chaos.brownout_depth(3)
        assert (depth[:4] > 0).all() and (depth[4:] == 0).all()
        # The rail shares one counter key: every member sags equally.
        assert np.unique(depth[:4]).size == 1
        assert not chaos.brownout_depth(30).any()  # window over

    def test_window_starting_at_step_zero(self):
        """Satellite: a window opening at t=0 is active at step 0."""
        chaos = _chaos([FaultSpec(FaultKind.RACK_PARTITION, "rack1",
                                  0.0, 120.0)])
        assert chaos.partition_mask(0)[2] and chaos.partition_mask(0)[3]
        assert chaos.partition_mask(1)[2]
        assert not chaos.partition_mask(2).any()

    def test_window_ending_at_final_step(self):
        """Satellite: a window reaching the last step stays closed
        past it (1800 s at 60 s steps -> final step index 29)."""
        chaos = _chaos([FaultSpec(FaultKind.COOLING_FAILURE,
                                  "cooling1", 1740.0, 60.0,
                                  magnitude=1.0)])
        assert chaos.cooling_delta_c(29)[4] > 0
        assert not chaos.cooling_delta_c(28).any()
        assert not chaos.cooling_delta_c(30).any()

    def test_cooling_ramp_is_monotone(self):
        chaos = _chaos([FaultSpec(FaultKind.COOLING_FAILURE,
                                  "cooling0", 0.0, 600.0,
                                  magnitude=1.0)])
        deltas = [chaos.cooling_delta_c(t)[0] for t in range(10)]
        assert all(b >= a for a, b in zip(deltas, deltas[1:]))
        assert deltas[-1] == pytest.approx(SMALL.cooling_ramp_c)

    def test_overlapping_kinds_on_one_node(self):
        """Satellite: different correlated kinds stack on one node."""
        specs = [
            FaultSpec(FaultKind.PDU_BROWNOUT, "pdu0", 0.0, 600.0,
                      magnitude=1.0),
            FaultSpec(FaultKind.COOLING_FAILURE, "cooling0", 60.0,
                      600.0, magnitude=0.5),
            FaultSpec(FaultKind.RACK_PARTITION, "rack0", 120.0, 300.0),
        ]
        chaos = _chaos(specs)
        t = 3  # inside all three windows
        assert chaos.brownout_depth(t)[0] > 0
        assert chaos.cooling_delta_c(t)[0] > 0
        assert chaos.partition_mask(t)[0]
        assert chaos.at_risk_mask(t)[0]
        # rack0 = nodes 0..1; the partition must not leak past it.
        assert not chaos.partition_mask(t)[2:].any()

    def test_view_slices_match_at_shard_edges(self):
        """Satellite: masks through view() == sliced full-fleet masks,
        including views that cut through a domain."""
        plan = fleet_correlated_plan(SMALL, 1800.0, seed=7,
                                     rate_per_hour=4.0)
        chaos = _chaos(list(plan), defense=True)
        for lo, hi in ((0, 3), (3, 6), (6, 8), (1, 7)):
            view = chaos.view(lo, hi)
            for t in (0, 7, 15, 29):
                for method in ("brownout_depth", "cooling_delta_c",
                               "partition_mask", "at_risk_mask",
                               "brownout_crash_mask",
                               "guard_demote_mask", "crash_mask",
                               "down_mask"):
                    assert np.array_equal(
                        getattr(view, method)(t),
                        getattr(chaos, method)(t)[lo:hi]), \
                        (method, lo, hi, t)

    def test_dropout_mask_deterministic_across_shard_splits(self):
        """Satellite: dropout draws concatenated over 1/2/4-way views
        equal the unsharded mask."""
        specs = [FaultSpec(FaultKind.TELEMETRY_DROPOUT,
                           f"node{i}", 0.0, 1200.0, magnitude=0.8)
                 for i in range(8)]
        chaos = _chaos(specs)
        for t in (0, 5, 13):
            full = chaos.dropout_mask(t)
            for shards in (1, 2, 4):
                bounds = [(i * 8 // shards, (i + 1) * 8 // shards)
                          for i in range(shards)]
                stitched = np.concatenate([
                    chaos.view(lo, hi).dropout_mask(t)
                    for lo, hi in bounds])
                assert np.array_equal(stitched, full), (t, shards)

    def test_brownout_crashes_are_seeded(self):
        spec = FaultSpec(FaultKind.PDU_BROWNOUT, "pdu0", 0.0, 1800.0,
                         magnitude=1.0)
        config = FleetConfig(n_nodes=8, seed=0, nodes_per_rack=2,
                             brownout_crash_scale=0.5)
        a = _chaos([spec], config=config)
        b = _chaos([spec], config=config)
        crashed = np.zeros(8, dtype=bool)
        for t in range(30):
            mask = a.brownout_crash_mask(t)
            assert np.array_equal(mask, b.brownout_crash_mask(t))
            crashed |= mask
        assert crashed[:4].any(), "a 50% per-step hazard never fired"
        assert not crashed[4:].any(), "crash leaked off the rail"

    def test_guard_fires_only_with_defense_at_window_open(self):
        spec = FaultSpec(FaultKind.PDU_BROWNOUT, "pdu1", 120.0, 600.0,
                         magnitude=1.0)
        undefended = _chaos([spec])
        defended = _chaos([spec], defense=True)
        assert not undefended.guard_demote_mask(2).any()
        guard = defended.guard_demote_mask(2)
        assert guard.tolist() == [False] * 4 + [True] * 4
        assert not defended.guard_demote_mask(3).any()
        # Probation extends past the window's end.
        probation = defended.guard_probation(2)
        assert (probation[4:] >= 12).all()


class TestCampaignWithDomains:
    def test_report_invariance_under_correlated_chaos(self):
        baseline = canonical_json(run_fleet_campaign(
            correlated_config()))
        sharded = canonical_json(run_fleet_campaign(
            correlated_config(shards=4)))
        scalar = canonical_json(run_fleet_campaign(
            correlated_config(stepper="scalar")))
        jobs = canonical_json(run_fleet_campaign(
            correlated_config(shards=4), jobs=2))
        assert baseline == sharded == scalar == jobs

    def test_fault_domains_block_and_echo(self):
        report = run_fleet_campaign(correlated_config())
        assert report["config"]["correlated_seed"] == 7
        assert report["config"]["domain_defense"] is True
        block = report["fault_domains"]
        assert block["defense"] is True
        assert block["topology"]["racks"] == 4
        assert set(block["by_kind"]) <= {
            kind.value for kind in CORRELATED_FAULT_KINDS}
        totals = report["totals"]
        for key in ("sla_violations", "availability", "migrations",
                    "migrations_deferred", "domain_demotions"):
            assert key in totals

    def test_no_correlated_plan_no_block(self):
        report = run_fleet_campaign(correlated_config(
            correlated_seed=None, domain_defense=False))
        assert "fault_domains" not in report
        assert report["totals"]["domain_demotions"] == 0

    def test_defense_off_keeps_guard_cold(self):
        report = run_fleet_campaign(correlated_config(
            domain_defense=False))
        assert report["totals"]["domain_demotions"] == 0
        assert report["totals"]["migrations"] == 0

    def test_snapshot_resume_under_correlated_chaos(self, tmp_path):
        from repro.fleet import FleetCampaign

        config = correlated_config(shards=2)
        full = run_fleet_campaign(config)
        campaign = FleetCampaign(config, snapshot_dir=tmp_path)
        campaign.run(until_step=17)
        campaign.take_snapshot()
        campaign.close()
        resumed = FleetCampaign(config, snapshot_dir=tmp_path)
        assert resumed.resume()
        resumed.run()
        assert canonical_json(resumed.report()) == canonical_json(full)
        resumed.close()

    def test_campaign_validation(self):
        with pytest.raises(ConfigurationError):
            correlated_config(correlated_rate_per_hour=-1.0)
        with pytest.raises(ConfigurationError):
            correlated_config(correlated_intensity=0.0)
        with pytest.raises(ConfigurationError):
            correlated_config(tenants=0)
        with pytest.raises(ConfigurationError):
            correlated_config(max_migrations_per_rack_step=0)


class TestCorrelatedGuardGovernor:
    def _node(self, correlated_k):
        from repro.core import UniServerNode
        from repro.daemons.healthlog import HealthLogConfig
        from repro.eop import EOPPolicy

        policy = EOPPolicy.adopt_within_budget().with_overrides(
            error_budget=3, correlated_k=correlated_k,
            correlated_window_s=120.0)
        node = UniServerNode(
            seed=3, eop_policy=policy,
            healthlog_config=HealthLogConfig(error_threshold=100))
        node.pre_deploy()
        node.deploy()
        return node

    def _storm(self, node, component, count=3):
        from repro.core.events import CorrectableErrorEvent

        for _ in range(count):
            node.bus.publish(CorrectableErrorEvent(
                timestamp=node.clock.now, source="hw",
                component=component, detail="storm"))

    def test_below_k_no_batch(self):
        node = self._node(correlated_k=3)
        self._storm(node, "core1")
        self._storm(node, "core2")
        node.governor.step()
        assert node.governor.domain_demotion_events == []
        assert node.governor.record("core0").state.value == "adopted"

    def test_k_breaches_demote_the_kind_once(self):
        from repro.eop import EOPState

        node = self._node(correlated_k=2)
        self._storm(node, "core1")
        self._storm(node, "core2")
        node.governor.step()
        events = node.governor.domain_demotion_events
        assert len(events) == 1 and events[0]["kind"] == "core"
        cores = [r for r in node.governor.records()
                 if r.kind == "core"]
        assert all(r.state is EOPState.DEMOTED for r in cores)
        batch = [r for r in cores
                 if r.component not in ("core1", "core2")]
        assert all(r.demotions == 0 for r in batch)
        assert node.metrics.counter("eop.correlated_demotions") == 1.0

    def test_window_expiry_resets_the_count(self):
        node = self._node(correlated_k=2)
        self._storm(node, "core1")
        node.governor.step()
        node.clock.advance_by(200.0)  # > correlated_window_s
        self._storm(node, "core2")
        node.governor.step()
        assert node.governor.domain_demotion_events == []

    def test_guard_state_round_trips(self):
        from repro.core import UniServerNode
        from repro.daemons.healthlog import HealthLogConfig

        node = self._node(correlated_k=2)
        self._storm(node, "core1")
        self._storm(node, "core2")
        node.governor.step()
        state = node.governor.state_dict()
        twin = UniServerNode(
            seed=3, eop_policy=node.governor.policy,
            healthlog_config=HealthLogConfig(error_threshold=100))
        twin.pre_deploy()
        twin.deploy()
        twin.governor.load_state_dict(state)
        assert twin.governor.domain_demotion_events \
            == node.governor.domain_demotion_events

    def test_policy_round_trip_and_validation(self):
        from repro.eop import EOPPolicy

        policy = EOPPolicy.adopt_within_budget().with_overrides(
            correlated_k=4, correlated_window_s=60.0)
        assert EOPPolicy.from_dict(policy.as_dict()) == policy
        # Pre-guard dicts (no correlated keys) still load.
        legacy = policy.as_dict()
        del legacy["correlated_k"], legacy["correlated_window_s"]
        loaded = EOPPolicy.from_dict(legacy)
        assert loaded.correlated_k is None
        with pytest.raises(ConfigurationError):
            EOPPolicy(name="bad", correlated_k=0)
        with pytest.raises(ConfigurationError):
            EOPPolicy(name="bad", correlated_window_s=0.0)


class TestSchedulerAntiAffinity:
    def test_weigher_prefers_emptier_racks(self):
        from repro.cloudmgr.node import build_rack
        from repro.cloudmgr.scheduler import RackAntiAffinity
        from repro.core.clock import SimClock
        from repro.hypervisor.vm import VirtualMachine
        from repro.workloads import spec_workload

        nodes = build_rack(4, clock=SimClock(), seed=0)
        affinity = RackAntiAffinity(nodes, nodes_per_rack=2)
        for node in nodes:
            node.hypervisor.boot()
        vm = VirtualMachine(name="vm0", vcpus=1,
                            workload=spec_workload(
                                "bzip2", duration_cycles=1e9))
        nodes[0].hypervisor.create_vm(vm)
        # rack0 = {node0, node1} now hosts a VM; rack1 is empty.
        loaded = affinity.weigher(nodes[1], None, None)
        empty = affinity.weigher(nodes[2], None, None)
        assert empty > loaded
        assert affinity.rack_of("node3") == 1
        assert affinity.rack_of("weird") == -1
        spec = affinity.spec(weight=2.0)
        assert spec.weight == 2.0

    def test_validation(self):
        from repro.cloudmgr.scheduler import RackAntiAffinity

        with pytest.raises(ConfigurationError):
            RackAntiAffinity([], nodes_per_rack=0)


class TestZoneBackpressure:
    def _fleet(self, cap):
        from repro.core.clock import SimClock
        from repro.fleet.zone import build_zoned_rack

        fleet = build_zoned_rack(4, 2, SimClock(), seed=0)
        fleet.max_migrations_per_rack_step = cap
        fleet.nodes_per_rack = 2
        return fleet

    def test_validation(self):
        from repro.core.clock import SimClock
        from repro.fleet.zone import ZoneController, FleetScheduler
        from repro.cloudmgr.node import build_rack

        clock = SimClock()
        nodes = build_rack(2, clock=clock, seed=0)
        zone = ZoneController(clock, nodes)
        with pytest.raises(ConfigurationError):
            FleetScheduler([zone], max_migrations_per_rack_step=0)
        with pytest.raises(ConfigurationError):
            FleetScheduler([zone], nodes_per_rack=0)

    def test_capped_rack_is_withheld_and_counted(self):
        fleet = self._fleet(cap=1)
        # rack1 (node2, node3) already absorbed its quota this step.
        fleet._rack_inflow[1] = 1
        before = fleet.backpressure_deferrals
        fleet._attempt_evacuation(fleet.zones[0], "node0")
        # node1 shares rack0 with the source but is still open; the
        # evacuation ran against {node1} only — no deferral counted
        # unless every rack was capped.
        fleet._rack_inflow[0] = 1
        fleet._attempt_evacuation(fleet.zones[0], "node0")
        assert fleet.backpressure_deferrals == before + 1

    def test_inflow_resets_each_step(self):
        fleet = self._fleet(cap=1)
        fleet._rack_inflow[0] = 5
        fleet.step(1.0)
        assert fleet._rack_inflow == {}
