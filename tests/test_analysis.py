"""Tests for analysis helpers (stats and ASCII rendering)."""

import pytest

from repro.analysis import (
    exponential_moving_average,
    geometric_mean,
    quantize,
    render_bar_chart,
    render_histogram,
    render_series,
    render_table,
    summarize,
    wilson_interval,
)


class TestStats:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.range == 3.0

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_quantize_snaps_to_grid(self):
        assert quantize(0.0123, 0.005) == pytest.approx(0.010)
        assert quantize(0.0126, 0.005) == pytest.approx(0.015)
        with pytest.raises(ValueError):
            quantize(1.0, 0.0)

    def test_wilson_interval_contains_proportion(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_zero_successes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert high > 0.0

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)

    def test_ema_smoothing(self):
        smoothed = exponential_moving_average([0.0, 10.0], alpha=0.5)
        assert smoothed == [0.0, 5.0]
        with pytest.raises(ValueError):
            exponential_moving_average([1.0], alpha=0.0)


class TestRendering:
    def test_table_contains_cells(self):
        text = render_table("Title", ["name", "value"],
                            [["alpha", 1.5], ["beta", 2]])
        assert "Title" in text
        assert "alpha" in text and "1.5" in text
        assert text.count("+") >= 8  # grid borders

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("T", ["a", "b"], [["only-one"]])

    def test_bar_chart_scales_to_max(self):
        text = render_bar_chart("Chart", ["x", "y"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_bar_chart_empty(self):
        assert "(no data)" in render_bar_chart("C", [], [])

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bar_chart("C", ["a"], [1.0, 2.0])

    def test_histogram_labels_ranges(self):
        text = render_histogram("H", [0.0, 0.5, 1.0], [3, 7])
        assert "[0.000, 0.500)" in text

    def test_histogram_count_mismatch(self):
        with pytest.raises(ValueError):
            render_histogram("H", [0.0, 1.0], [1, 2])

    def test_series_lists_points(self):
        text = render_series("S", "x", "y", [(1.0, 2.0), (3.0, 4.0)])
        assert "S" in text and "2" in text and "4" in text
