"""Tests for the power-delivery-network droop model."""

import math

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware.pdn import BurstWaveform, PdnModel, PdnParameters


@pytest.fixture
def model():
    return PdnModel()


class TestImpedance:
    def test_resonance_location(self):
        params = PdnParameters()
        expected = 1.0 / (2 * math.pi * math.sqrt(
            params.inductance_h * params.capacitance_f))
        assert params.resonant_frequency_hz == pytest.approx(expected)

    def test_impedance_peaks_at_resonance(self):
        params = PdnParameters()
        resonance = params.resonant_frequency_hz
        at_peak = params.impedance_ohm(resonance)
        below = params.impedance_ohm(resonance * 0.2)
        above = params.impedance_ohm(resonance * 5.0)
        assert at_peak > 3 * below
        assert at_peak > 3 * above

    def test_dc_impedance_is_resistance(self):
        params = PdnParameters()
        assert params.impedance_ohm(0.0) == params.resistance_ohm

    def test_quality_factor_scales_peak(self):
        damped = PdnParameters(resistance_ohm=0.01)
        sharp = PdnParameters(resistance_ohm=0.0005)
        resonance = damped.resonant_frequency_hz
        assert sharp.impedance_ohm(resonance) > \
            damped.impedance_ohm(resonance)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PdnParameters(resistance_ohm=0.0)
        with pytest.raises(ConfigurationError):
            PdnParameters().impedance_ohm(-1.0)


class TestWaveform:
    def test_harmonics_decay(self):
        w = BurstWaveform(burst_current_a=10.0, period_s=2e-8)
        assert w.harmonic_amplitude_a(1) > w.harmonic_amplitude_a(3) > 0

    def test_even_harmonics_vanish_at_half_duty(self):
        w = BurstWaveform(burst_current_a=10.0, period_s=2e-8, duty=0.5)
        assert w.harmonic_amplitude_a(2) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstWaveform(burst_current_a=-1.0, period_s=1e-8)
        with pytest.raises(ConfigurationError):
            BurstWaveform(burst_current_a=1.0, period_s=1e-8, duty=1.0)
        with pytest.raises(ConfigurationError):
            BurstWaveform(burst_current_a=1.0, period_s=1e-8)\
                .harmonic_amplitude_a(0)


class TestDroop:
    def test_on_resonance_droop_is_worst(self, model):
        worst_period = model.worst_case_period_s()
        worst = model.droop_v(BurstWaveform(10.0, worst_period))
        off = model.droop_v(BurstWaveform(10.0, worst_period * 10))
        assert worst > 2 * off

    def test_worst_period_matches_resonance(self, model):
        worst_period = model.worst_case_period_s()
        resonance_period = 1.0 / model.params.resonant_frequency_hz
        assert worst_period == pytest.approx(resonance_period, rel=0.1)

    def test_droop_scales_with_current(self, model):
        period = model.worst_case_period_s()
        small = model.droop_v(BurstWaveform(1.0, period))
        large = model.droop_v(BurstWaveform(10.0, period))
        assert large == pytest.approx(10 * small, rel=1e-9)

    def test_droop_fraction_capped_at_one(self, model):
        period = model.worst_case_period_s()
        assert model.droop_fraction(
            BurstWaveform(1e6, period)) == 1.0


class TestAlignmentMapping:
    def test_alignment_is_monotone(self, model):
        intensities = [
            model.alignment_to_droop_intensity(a)
            for a in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert intensities == sorted(intensities)

    def test_full_alignment_is_unity(self, model):
        assert model.alignment_to_droop_intensity(1.0) == pytest.approx(1.0)

    def test_zero_alignment_is_mild(self, model):
        assert model.alignment_to_droop_intensity(0.0) < 0.5

    def test_out_of_range_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.alignment_to_droop_intensity(1.5)

    def test_profile_rows(self, model):
        rows = model.impedance_profile([1e6, 1e7, 1e8])
        assert len(rows) == 3
        assert all(z > 0 for _, z in rows)
