"""Tests for the cloud controller and failure prediction."""

import pytest

from repro.cloudmgr import (
    CloudController,
    ComputeNode,
    LearnedFailurePredictor,
    ThresholdFailurePredictor,
    node_features,
)
from repro.cloudmgr.sla import BRONZE, SILVER
from repro.cloudmgr.telemetry import TelemetryService
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError, PredictionError
from repro.hypervisor.vm import VirtualMachine
from repro.workloads import spec_workload


def make_cloud(n_nodes=3, proactive=True):
    clock = SimClock()
    nodes = [ComputeNode(f"node{i}", clock, seed=i) for i in range(n_nodes)]
    return CloudController(clock, nodes, proactive_migration=proactive)


def make_vm(name, cycles=1e11):
    return VirtualMachine(name=name,
                          workload=spec_workload("hmmer",
                                                 duration_cycles=cycles))


class TestControllerBasics:
    def test_launch_places_and_tracks(self):
        cloud = make_cloud()
        placement = cloud.launch(make_vm("vm0"), SILVER)
        assert placement.node in cloud.nodes
        assert "vm0" in cloud.tracker.tracked_vms()
        assert cloud.locate("vm0").name == placement.node

    def test_vms_complete_and_are_reaped(self):
        cloud = make_cloud()
        cloud.launch(make_vm("vm0", cycles=5e9), BRONZE)
        cloud.run(10.0)
        assert cloud.stats.completed == 1
        with pytest.raises(KeyError):
            cloud.locate("vm0")

    def test_fleet_availability_high_on_healthy_rack(self):
        cloud = make_cloud()
        for i in range(4):
            cloud.launch(make_vm(f"vm{i}", cycles=1e11), SILVER)
        cloud.run(30.0)
        assert cloud.fleet_availability() > 0.99

    def test_energy_accumulates(self):
        cloud = make_cloud()
        cloud.launch(make_vm("vm0"), SILVER)
        cloud.run(10.0)
        assert cloud.stats.energy_j > 0

    def test_duplicate_node_names_rejected(self):
        clock = SimClock()
        nodes = [ComputeNode("same", clock), ComputeNode("same", clock)]
        with pytest.raises(ConfigurationError):
            CloudController(clock, nodes)

    def test_describe_mentions_nodes(self):
        cloud = make_cloud(n_nodes=2)
        text = cloud.describe()
        assert "node0" in text and "node1" in text


class TestCrashRecovery:
    def test_crashed_node_recovers_after_delay(self):
        cloud = make_cloud(n_nodes=2)
        cloud.node_recovery_s = 5.0
        node = cloud.nodes["node0"]
        node.hypervisor._crashed = True
        cloud.run(10.0)
        assert cloud.stats.node_crashes == 1
        assert not node.hypervisor.crashed


class TestThresholdPredictor:
    def test_healthy_node_is_low_risk(self):
        clock = SimClock()
        node = ComputeNode("n0", clock)
        assessment = ThresholdFailurePredictor().assess(
            node, TelemetryService())
        assert not assessment.at_risk
        assert assessment.reason == "healthy"

    def test_aggressive_margins_raise_risk(self):
        clock = SimClock()
        node = ComputeNode("n0", clock)
        nominal = node.platform.chip.spec.nominal
        node.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.7))
        assessment = ThresholdFailurePredictor().assess(
            node, TelemetryService())
        assert assessment.risk > 0.2
        assert "margin" in assessment.reason

    def test_feature_vector_shape(self):
        clock = SimClock()
        node = ComputeNode("n0", clock)
        features = node_features(node, TelemetryService())
        assert features.shape == (5,)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdFailurePredictor(threshold=0.0)


class TestLearnedPredictor:
    def test_train_and_assess(self):
        clock = SimClock()
        telemetry = TelemetryService()
        predictor = LearnedFailurePredictor()
        healthy = ComputeNode("h", clock, seed=1)
        risky = ComputeNode("r", clock, seed=2)
        nominal = risky.platform.chip.spec.nominal
        risky.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.7))
        for _ in range(10):
            predictor.observe(healthy, telemetry,
                              failed_within_horizon=False)
            predictor.observe(risky, telemetry, failed_within_horizon=True)
        predictor.train()
        assert predictor.assess(risky, telemetry).risk > \
            predictor.assess(healthy, telemetry).risk

    def test_needs_training_data(self):
        predictor = LearnedFailurePredictor()
        with pytest.raises(PredictionError):
            predictor.train()

    def test_assess_before_training_rejected(self):
        clock = SimClock()
        node = ComputeNode("n0", clock)
        with pytest.raises(PredictionError):
            LearnedFailurePredictor().assess(node, TelemetryService())


class TestProactiveMigration:
    def test_at_risk_node_is_evacuated(self):
        cloud = make_cloud(n_nodes=3, proactive=True)
        cloud.launch(make_vm("vm0", cycles=1e12), SILVER)
        home = cloud.locate("vm0")
        # Make the home node look doomed: deep undervolt on every core.
        nominal = home.platform.chip.spec.nominal
        home.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.70))
        # Within a few control steps the risk crosses the threshold
        # (margin aggression plus the crashes the node starts logging).
        cloud.run(5.0)
        assert cloud.stats.evacuations >= 1
        assert cloud.locate("vm0").name != home.name

    def test_evacuation_avoids_other_at_risk_nodes(self):
        """Regression: evacuation must not dump VMs onto a peer that is
        itself reporting risk when a healthy node exists."""
        cloud = make_cloud(n_nodes=3, proactive=True)
        cloud.launch(make_vm("vm0", cycles=1e12), SILVER)
        home = cloud.locate("vm0")
        doomed_peer = next(
            n for n in cloud.node_list() if n.name != home.name)
        for node in (home, doomed_peer):
            nominal = node.platform.chip.spec.nominal
            node.platform.set_all_core_points(
                nominal.with_voltage(nominal.voltage_v * 0.70))
        cloud.run(5.0)
        assert cloud.stats.evacuations >= 1
        landed = cloud.locate("vm0")
        assert landed.name not in (home.name, doomed_peer.name)

    def test_reactive_mode_leaves_vms_in_place(self):
        cloud = make_cloud(n_nodes=3, proactive=False)
        cloud.launch(make_vm("vm0", cycles=1e12), SILVER)
        home = cloud.locate("vm0")
        nominal = home.platform.chip.spec.nominal
        home.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.70))
        cloud.run(5.0)
        assert cloud.stats.evacuations == 0


class TestDegradationMachinery:
    def test_no_healthy_evacuation_target_leaves_vm_in_place(self):
        cloud = make_cloud(n_nodes=3, proactive=True)
        cloud.launch(make_vm("vm0", cycles=1e12), SILVER)
        home = cloud.locate("vm0")
        # Every other node crashes: after the suspicion ladder runs out
        # there is nowhere to evacuate to.
        for node in cloud.node_list():
            if node.name != home.name:
                node.hypervisor._crashed = True
        nominal = home.platform.chip.spec.nominal
        home.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.70))
        cloud.run(6.0)
        assert cloud.stats.evacuations == 0
        assert cloud.locate("vm0").name == home.name
        # The dead peers were noticed through their missed heartbeats.
        assert cloud.stats.node_crashes == 2

    def test_recovery_then_recrash_counts_a_flap(self):
        cloud = make_cloud(n_nodes=2)
        cloud.node_recovery_s = 5.0
        node = cloud.nodes["node0"]
        node.hypervisor._crashed = True
        cloud.run(8.0)
        assert cloud.stats.recoveries == 1
        assert not node.hypervisor.crashed
        assert cloud.stats.flaps == 0
        # Re-crash inside the flap window: the breaker hears about it.
        node.hypervisor._crashed = True
        cloud.run(8.0)
        assert cloud.stats.node_crashes == 2
        assert cloud.stats.flaps == 1
        breaker = cloud._breakers["node0"]
        assert breaker.consecutive_failures >= 1

    def test_completed_vm_bookkeeping_is_reaped(self):
        cloud = make_cloud()
        cloud.launch(make_vm("vm0", cycles=5e9), BRONZE)
        cloud.run(10.0)
        assert cloud.stats.completed == 1
        # forget_vm cleared every per-VM map (the _seen_restarts leak).
        assert "vm0" not in cloud._seen_restarts
        assert "vm0" not in cloud._vm_homes
        assert "vm0" not in cloud._vm_down_since

    def test_forget_vm_clears_restart_accounting(self):
        cloud = make_cloud()
        cloud._seen_restarts["ghost"] = 4
        cloud._vm_homes["ghost"] = "node0"
        cloud._vm_down_since["ghost"] = 1.0
        cloud.forget_vm("ghost")
        assert "ghost" not in cloud._seen_restarts
        assert "ghost" not in cloud._vm_homes
        assert "ghost" not in cloud._vm_down_since

    def test_mttr_covers_open_episodes(self):
        cloud = make_cloud(n_nodes=2)
        assert cloud.mttr_s() is None
        cloud.launch(make_vm("vm0", cycles=1e12), SILVER)
        home = cloud.locate("vm0")
        home.hypervisor._crashed = True
        cloud.run(10.0)
        # The outage is still open, yet MTTR already reflects it.
        assert cloud.mttr_s() is not None
        assert cloud.mttr_s() > 0
