"""Crash-safe campaign runtime: snapshots, journal, auditor, resume."""

import hashlib
import json

import pytest

from repro.core.exceptions import InvariantViolation, PersistenceError
from repro.persistence import (
    CampaignConfig,
    Journal,
    PersistentCampaign,
    SnapshotStore,
    StateAuditor,
    canonical_json,
    payload_checksum,
)

#: Tiny but chaotic: enough faults that crashes, recoveries, breaker
#: trips and RNG-consuming interceptions all actually happen.
CONFIG = CampaignConfig(n_nodes=3, duration_s=1800.0, seed=1,
                        rate_per_hour=25.0, intensity=0.9, step_s=60.0)

RESULT_FIELDS = (
    "label", "n_nodes", "duration_s", "seed", "plan_faults",
    "fleet_availability", "mttr_s", "sla_violations",
    "evacuation_success_rate", "node_crashes", "recoveries", "failovers",
    "breaker_trips", "flaps", "heartbeats_missed", "admitted",
    "rejected", "completed", "injections",
)


def _headline(result):
    return {field: getattr(result, field) for field in RESULT_FIELDS}


def _metrics_digest(campaign):
    return payload_checksum(campaign.cloud.metrics_snapshot())


# -- snapshot store --------------------------------------------------------


class TestSnapshotStore:
    def test_atomic_write_and_reload(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(5, {"hello": [1, 2.5, None]})
        step, payload = store.load_newest()
        assert step == 5
        assert payload == {"hello": [1, 2.5, None]}
        assert not list(tmp_path.glob("*.tmp"))

    def test_keeps_only_n_generations(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for step in (0, 10, 20, 30):
            store.save(step, {"step": step})
            Journal(store.journal_path(step)).close()
        assert store.generations() == [20, 30]
        assert not store.journal_path(0).exists()

    def test_corrupted_newest_falls_back_a_generation(
            self, tmp_path, caplog):
        store = SnapshotStore(tmp_path)
        store.save(0, {"generation": 0})
        store.save(7, {"generation": 7})
        # Bit-flip in the middle of the newest snapshot.
        path = store.snapshot_path(7)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with caplog.at_level("WARNING"):
            step, payload = store.load_newest()
        assert step == 0
        assert payload == {"generation": 0}
        assert any("damaged" in r.message for r in caplog.records)

    def test_truncated_newest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(0, {"generation": 0})
        store.save(3, {"generation": 3})
        path = store.snapshot_path(3)
        path.write_bytes(path.read_bytes()[: 40])
        step, payload = store.load_newest()
        assert step == 0

    def test_all_generations_damaged_returns_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(0, {"generation": 0})
        store.snapshot_path(0).write_text("not json")
        assert store.load_newest() is None

    def test_checksum_covers_payload(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(0, {"value": 1})
        # A *valid-JSON* tamper must still fail the checksum.
        path = store.snapshot_path(0)
        envelope = json.loads(path.read_text())
        envelope["body"]["payload"]["value"] = 2
        path.write_text(json.dumps(envelope))
        with pytest.raises(PersistenceError):
            store.load_generation(0)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.append({"type": "intent", "step": 0})
        journal.append({"type": "commit", "step": 0, "digest": "abc"})
        journal.close()
        assert Journal.read(path) == [
            {"type": "intent", "step": 0},
            {"type": "commit", "step": 0, "digest": "abc"},
        ]

    def test_torn_final_line_truncates_cleanly(self, tmp_path, caplog):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.append({"step": 0})
        journal.append({"step": 1})
        journal.close()
        # Chop the last line in half: the SIGKILL-mid-append signature.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 9])
        with caplog.at_level("WARNING"):
            records = Journal.read(path)
        assert records == [{"step": 0}]

    def test_missing_file_reads_empty(self, tmp_path):
        assert Journal.read(tmp_path / "absent.jsonl") == []


def test_canonical_json_is_key_sorted_and_compact():
    assert canonical_json({"b": 1, "a": [1.5]}) == '{"a":[1.5],"b":1}'
    assert payload_checksum({"a": 1, "b": 2}) \
        == payload_checksum({"b": 2, "a": 1})


# -- state round-trip -------------------------------------------------------


class TestStateRoundTrip:
    def test_midstream_state_restores_bit_identically(self):
        first = PersistentCampaign(CONFIG)
        for _ in range(12):
            first.step()
        # Force the state through JSON: what a snapshot actually stores.
        payload = json.loads(canonical_json(
            {"config": first.config.as_dict(),
             "state": first.state_dict()}))
        second = PersistentCampaign(
            CampaignConfig.from_dict(payload["config"]))
        second.load_state_dict(payload["state"])
        result_a = first.run()
        result_b = second.run()
        assert _headline(result_a) == _headline(result_b)
        assert _metrics_digest(first) == _metrics_digest(second)

    def test_matches_unpersisted_campaign(self):
        from repro.resilience import FaultPlan, run_chaos_campaign

        persistent = PersistentCampaign(CONFIG).run()
        classic = run_chaos_campaign(
            n_nodes=CONFIG.n_nodes, duration_s=CONFIG.duration_s,
            seed=CONFIG.seed,
            plan=FaultPlan.from_dict(CONFIG.finalized().plan),
            label=CONFIG.label)
        assert _headline(persistent) == _headline(classic)

    def test_rng_streams_survive_the_round_trip(self):
        campaign = PersistentCampaign(CONFIG)
        for _ in range(5):
            campaign.step()
        state = json.loads(canonical_json(campaign.state_dict()))
        twin = PersistentCampaign(CONFIG)
        twin.load_state_dict(state)
        for node_a, node_b in zip(campaign.cloud.node_list(),
                                  twin.cloud.node_list()):
            draws_a = node_a.runtime.rng("chaos.telemetry").random(4)
            draws_b = node_b.runtime.rng("chaos.telemetry").random(4)
            assert list(draws_a) == list(draws_b)

    def test_clock_restore_rejects_mismatched_queue(self):
        campaign = PersistentCampaign(CONFIG)
        state = campaign.clock.state_dict()
        state["pending"] = list(state["pending"]) + [99.0]
        with pytest.raises(PersistenceError):
            campaign.clock.load_state_dict(state)


# -- disk resume -------------------------------------------------------------


class TestDiskResume:
    def test_abandoned_run_resumes_to_identical_end_state(self, tmp_path):
        reference = PersistentCampaign(CONFIG)
        result_ref = reference.run()

        abandoned = PersistentCampaign(
            CONFIG, snapshot_dir=tmp_path, snapshot_every_s=300.0)
        for _ in range(17):  # dies between generations, mid-journal
            abandoned.step()
        del abandoned  # the "crash"

        resumed = PersistentCampaign.resume(
            tmp_path, snapshot_every_s=300.0,
            auditor=StateAuditor(strict=True))
        result = resumed.run()
        assert _headline(result) == _headline(result_ref)
        assert _metrics_digest(resumed) == _metrics_digest(reference)

    def test_resume_replays_journal_to_the_crash_step(self, tmp_path):
        campaign = PersistentCampaign(
            CONFIG, snapshot_dir=tmp_path, snapshot_every_s=300.0)
        for _ in range(13):
            campaign.step()
        del campaign
        resumed = PersistentCampaign.resume(tmp_path)
        assert resumed.step_index == 13

    def test_resume_survives_corrupted_newest_snapshot(
            self, tmp_path, caplog):
        reference = PersistentCampaign(CONFIG).run()
        campaign = PersistentCampaign(
            CONFIG, snapshot_dir=tmp_path, snapshot_every_s=300.0)
        for _ in range(17):
            campaign.step()
        del campaign
        newest = sorted(tmp_path.glob("snapshot-*.json"))[-1]
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        newest.write_bytes(bytes(raw))
        with caplog.at_level("WARNING"):
            resumed = PersistentCampaign.resume(tmp_path)
        assert any("damaged" in r.message for r in caplog.records)
        result = resumed.run()
        assert _headline(result) == _headline(reference)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            PersistentCampaign.resume(tmp_path)

    def test_tampered_journal_digest_fails_replay(self, tmp_path):
        campaign = PersistentCampaign(
            CONFIG, snapshot_dir=tmp_path, snapshot_every_s=300.0)
        for _ in range(7):
            campaign.step()
        del campaign
        journal_path = sorted(tmp_path.glob("journal-*.jsonl"))[-1]
        lines = journal_path.read_text().splitlines()
        doctored = []
        for line in lines:
            if '"type":"commit"' in line:
                _, _, body = line.partition(" ")
                record = json.loads(body)
                record["digest"] = "0" * 64
                rewritten = canonical_json(record)
                checksum = hashlib.sha256(
                    rewritten.encode()).hexdigest()[:16]
                doctored.append(f"{checksum} {rewritten}")
            else:
                doctored.append(line)
        journal_path.write_text("\n".join(doctored) + "\n")
        with pytest.raises(PersistenceError, match="diverged"):
            PersistentCampaign.resume(tmp_path)


# -- auditor ------------------------------------------------------------------


class TestStateAuditor:
    def test_chaotic_campaign_stays_invariant_clean(self):
        auditor = StateAuditor(strict=True)
        campaign = PersistentCampaign(CONFIG, auditor=auditor)
        # Audit every few steps, not just at snapshots.
        while not campaign.finished:
            campaign.step()
            if campaign.step_index % 5 == 0:
                auditor.audit(campaign.cloud,
                              context=f"step {campaign.step_index}")
        campaign.run()
        assert auditor.violation_count == 0
        assert auditor.metrics.counter(
            "persistence.auditor.passes") > 0

    def test_strict_mode_raises_on_forged_double_residency(self):
        # Calm weather, busy trace: the forge needs a resident VM.
        campaign = PersistentCampaign(CampaignConfig(
            n_nodes=3, duration_s=1800.0, seed=1, rate_per_hour=2.0,
            intensity=0.2, base_rate_per_hour=120.0, step_s=60.0))
        donor = None
        while donor is None and not campaign.finished:
            campaign.step()
            nodes = campaign.cloud.node_list()
            donor = next((n for n in nodes if n.hypervisor.vms), None)
        assert donor is not None, "campaign never admitted a VM"
        vm = donor.hypervisor.vms[0]
        other = next(n for n in nodes if n.name != donor.name)
        # Forge the corruption the auditor exists to catch.
        other.hypervisor._vms[vm.name] = vm
        with pytest.raises(InvariantViolation, match="resident on both"):
            StateAuditor(strict=True).audit(campaign.cloud)

    def test_tolerant_mode_counts_instead_of_raising(self):
        campaign = PersistentCampaign(CONFIG)
        for _ in range(10):
            campaign.step()
        campaign.cloud._vm_homes["ghost-vm"] = "node0"
        campaign.cloud.stats.energy_j = -1.0
        auditor = StateAuditor(strict=False)
        auditor.audit(campaign.cloud)
        campaign.cloud.stats.energy_j = -2.0
        problems = auditor.audit(campaign.cloud)
        assert problems  # energy decreased between the two audits
        assert auditor.violation_count >= 1
        assert auditor.metrics.counter(
            "persistence.auditor.violations") == auditor.violation_count

    def test_clock_regression_is_flagged(self):
        campaign = PersistentCampaign(CONFIG)
        auditor = StateAuditor(strict=False)
        campaign.step()
        auditor.audit(campaign.cloud)
        campaign.clock._now -= 100.0
        problems = auditor.audit(campaign.cloud)
        assert any("backwards" in p for p in problems)


# -- predictor persistence -------------------------------------------------


def _labelled(reliability, labels):
    full = {"15m": None, "1h": None, "4h": None}
    full.update(labels)
    return {
        "node": "a", "timestamp": 0.0,
        "features": [0.0, reliability, 0.5, 0.5, 0.0],
        "labels": full, "lead_s": None, "domains": {},
    }


def _trained_predictor():
    observations = []
    for _ in range(15):
        observations.append(_labelled(
            0.25, {"15m": True, "1h": True, "4h": None}))
        observations.append(_labelled(
            1.0, {"15m": False, "1h": False, "4h": None}))
    from repro.cloudmgr import train_from_observations
    return train_from_observations(observations, threshold=0.35)


class TestPredictorPersistence:
    def test_logistic_model_round_trip(self):
        import numpy as np
        from repro.daemons.predictor import LogisticModel

        rng = np.random.default_rng(7)
        features = rng.random((40, 5))
        labels = (features[:, 1] < 0.5).astype(int)
        model = LogisticModel(epochs=50).fit(features, labels)
        clone = LogisticModel()
        clone.load_state_dict(model.state_dict())
        assert canonical_json(clone.state_dict()) == \
            canonical_json(model.state_dict())
        probe = rng.random((6, 5))
        assert (clone.predict_proba(probe)
                == model.predict_proba(probe)).all()

    def test_learned_predictor_round_trip(self):
        from repro.cloudmgr import (
            LearnedFailurePredictor,
            predictor_from_state,
            predictor_state,
        )

        predictor = LearnedFailurePredictor(threshold=0.4)
        restored = predictor_from_state(predictor_state(predictor))
        assert isinstance(restored, LearnedFailurePredictor)
        assert restored.threshold == 0.4
        assert canonical_json(restored.state_dict()) == \
            canonical_json(predictor.state_dict())

    def test_multi_horizon_round_trip_keeps_censored_labels(self):
        """Censored (-1) training labels must survive persistence."""
        from repro.cloudmgr import predictor_from_state, predictor_state

        predictor = _trained_predictor()
        state = predictor_state(predictor)
        assert -1 in state["state"]["labels"]["4h"]
        restored = predictor_from_state(state)
        assert canonical_json(restored.state_dict()) == \
            canonical_json(predictor.state_dict())
        # Retraining the restored copy reproduces the same fit: the
        # censored rows are still masked out, not mistaken for labels.
        restored.train()
        assert canonical_json(restored.state_dict()) == \
            canonical_json(predictor.state_dict())

    def test_trained_model_survives_campaign_crash_resume(self, tmp_path):
        """SIGKILL mid-campaign, resume: the trained model and the risk
        reports it produces are byte-identical to the uninterrupted run."""
        import numpy as np
        from repro.cloudmgr import predictor_state

        def _install(campaign):
            for node in campaign.cloud.node_list():
                node.risk_predictor = _trained_predictor()

        reference = PersistentCampaign(CONFIG)
        _install(reference)
        reference.run()

        abandoned = PersistentCampaign(
            CONFIG, snapshot_dir=tmp_path, snapshot_every_s=300.0)
        _install(abandoned)
        for _ in range(17):
            abandoned.step()
        del abandoned  # the "crash"

        resumed = PersistentCampaign.resume(
            tmp_path, snapshot_every_s=300.0)
        resumed.run()

        probe = np.array([0.0, 0.25, 0.5, 0.5, 0.0])
        for name, node in sorted(resumed.cloud.nodes.items()):
            twin = reference.cloud.nodes[name]
            assert canonical_json(predictor_state(node.risk_predictor)) \
                == canonical_json(predictor_state(twin.risk_predictor))
            assert canonical_json(
                node.risk_predictor.probabilities(probe)) == \
                canonical_json(twin.risk_predictor.probabilities(probe))
        assert _metrics_digest(resumed) == _metrics_digest(reference)
