"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_grid, _parse_seeds, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("quickstart", "characterize", "refresh",
                        "figure4", "population", "tco", "edge",
                        "validate", "metrics", "chaos", "sweep",
                        "fleet", "hrm", "profile"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.nodes == 64
        assert args.shards == 1
        assert args.jobs == 1
        assert args.engine == "vector"
        assert args.stepper == "vector"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.what == "rack"
        assert args.top == 25
        assert args.sort == "cumulative"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.seeds == "0"
        assert args.jobs == 1
        assert args.max_retries == 1

    def test_chaos_accepts_jobs(self):
        args = build_parser().parse_args(["chaos", "--jobs", "2"])
        assert args.jobs == 2

    def test_characterize_chip_choices(self):
        parser = build_parser()
        args = parser.parse_args(["characterize", "--chip", "i7"])
        assert args.chip == "i7"
        with pytest.raises(SystemExit):
            parser.parse_args(["characterize", "--chip", "pentium"])


class TestCommands:
    def test_tco_prints_table(self, capsys):
        assert main(["tco"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Scaling" in out

    def test_edge_prints_savings(self, capsys):
        assert main(["edge"]) == 0
        out = capsys.readouterr().out
        assert "edge" in out and "energy" in out

    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_population_small_run(self, capsys):
        assert main(["population", "--chips", "100"]) == 0
        out = capsys.readouterr().out
        assert "100-chip population" in out
        assert "classical yield" in out

    def test_characterize_i5(self, capsys):
        assert main(["characterize", "--chip", "i5"]) == 0
        out = capsys.readouterr().out
        assert "i5-4200U" in out
        assert "crash points" in out
        assert "ECC onset" in out

    def test_refresh_sweep(self, capsys):
        assert main(["refresh"]) == 0
        out = capsys.readouterr().out
        assert "error-free up to 1.5 s" in out

    def test_figure4(self, capsys):
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "load amplification" in out
        assert "fs" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "adopted" in out and "saving" in out

    def test_chaos_single_arm(self, capsys):
        assert main(["chaos", "--nodes", "2", "--duration", "900",
                     "--policies", "on"]) == 0
        out = capsys.readouterr().out
        assert "policies-on" in out
        assert "availability=" in out
        assert "injections:" in out

    def test_metrics_dumps_json_per_node(self, capsys):
        import json

        assert main(["metrics", "--nodes", "2",
                     "--duration", "600"]) == 0
        captured = capsys.readouterr()
        snapshot = json.loads(captured.out)
        assert sorted(snapshot) == ["node0", "node1"]
        for node_snapshot in snapshot.values():
            assert set(node_snapshot) == {"counters", "gauges",
                                          "histograms"}
        assert "layers:" in captured.err

    def test_sweep_small_run_writes_report(self, capsys, tmp_path):
        report_path = tmp_path / "sweep.json"
        assert main(["sweep", "--nodes", "2", "--duration", "240",
                     "--seeds", "0", "--quiet",
                     "--report-json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep: 1 campaigns" in out
        assert "report sha256:" in out
        import json

        report = json.loads(report_path.read_text())
        assert report["rows"][0]["ok"] is True
        assert "base" in report["summary"]

    def test_sweep_rejects_bad_grid(self, capsys):
        assert main(["sweep", "--grid", "voltage=1.0"]) == 2
        assert "unknown grid axis" in capsys.readouterr().err

    def test_fleet_vector_writes_report(self, capsys, tmp_path):
        report_path = tmp_path / "fleet.json"
        assert main(["fleet", "--nodes", "8", "--duration", "1200",
                     "--report-json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "report sha256:" in out
        assert "proportionality" in out
        import json

        report = json.loads(report_path.read_text())
        assert report["totals"]["steps"] == 20
        assert "report_sha256" in report

    def test_fleet_zoned_engine(self, capsys):
        assert main(["fleet", "--engine", "zoned", "--nodes", "4",
                     "--shards", "2", "--duration", "600"]) == 0
        out = capsys.readouterr().out
        assert "2 zone(s)" in out
        assert "report sha256:" in out

    def test_hrm_writes_frontier_report(self, capsys, tmp_path):
        report_path = tmp_path / "hrm.json"
        assert main(["hrm", "--nodes", "3", "--require-frontier",
                     "--report-json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "ON the frontier" in out
        assert "report sha256:" in out
        import json

        report = json.loads(report_path.read_text())
        assert report["frontier"]["tiered_beats_nominal_energy"]
        assert report["frontier"]["tiered_beats_relaxed_ue"]

    def test_profile_fleet_prints_table(self, capsys):
        assert main(["profile", "--what", "fleet", "--nodes", "4",
                     "--duration", "600", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out or "cumtime" in out


class TestFleetValidation:
    """Satellite: clear errors for bad fleet execution arguments."""

    def _exit_message(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        err = str(excinfo.value) or capsys.readouterr().err
        return err

    def test_rejects_nonpositive_shards(self, capsys):
        message = self._exit_message(
            capsys, ["fleet", "--nodes", "4", "--shards", "0"])
        assert "--shards must be >= 1" in message

    def test_rejects_nonpositive_jobs(self, capsys):
        message = self._exit_message(
            capsys, ["fleet", "--nodes", "4", "--jobs", "-1"])
        assert "--jobs must be >= 1" in message

    def test_rejects_malformed_kill_spec(self, capsys):
        message = self._exit_message(
            capsys, ["fleet", "--nodes", "4", "--jobs", "2",
                     "--kill-worker-at", "7"])
        assert "STEP:WORKER" in message

    def test_rejects_duplicate_kill_spec(self, capsys):
        message = self._exit_message(
            capsys, ["fleet", "--nodes", "4", "--jobs", "2",
                     "--kill-worker-at", "7:0",
                     "--kill-worker-at", "7:0"])
        assert "more than once" in message

    def test_rejects_worker_out_of_range(self, capsys):
        message = self._exit_message(
            capsys, ["fleet", "--nodes", "4", "--jobs", "2",
                     "--kill-worker-at", "7:2"])
        assert "out of range" in message and "--jobs 2" in message

    def test_rejects_negative_kill_step(self, capsys):
        message = self._exit_message(
            capsys, ["fleet", "--nodes", "4", "--jobs", "2",
                     "--kill-worker-at=-3:0"])
        assert "step must be >= 0" in message

    def test_fleet_correlated_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.correlated_seed is None
        assert args.correlated_rate == 1.0
        assert args.correlated_intensity == 0.7
        assert args.domain_defense is False

    def test_fleet_correlated_run_prints_domains(self, capsys,
                                                 tmp_path):
        import json

        report_path = tmp_path / "domains.json"
        assert main(["fleet", "--nodes", "8", "--duration", "1200",
                     "--correlated-seed", "7", "--domain-defense",
                     "--report-json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "fault domains:" in out and "defense on" in out
        report = json.loads(report_path.read_text())
        assert report["fault_domains"]["defense"] is True


class TestSweepParsing:
    def test_parse_seeds_mixed(self):
        assert _parse_seeds("0,1,4:8") == (0, 1, 4, 5, 6, 7)

    def test_parse_seeds_empty_raises(self):
        with pytest.raises(ValueError):
            _parse_seeds(" , ")

    def test_parse_grid_types_values(self):
        grid = _parse_grid(["nodes=2,4", "rate=6.0,12.0",
                            "policies=on,off"])
        assert grid == {"nodes": [2, 4], "rate": [6.0, 12.0],
                        "policies": ["on", "off"]}

    def test_parse_grid_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            _parse_grid(["voltage=1.0"])

    def test_parse_grid_requires_values(self):
        with pytest.raises(ValueError):
            _parse_grid(["nodes"])
