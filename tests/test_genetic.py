"""Tests for the GA stress-virus generator."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.hardware import ChipModel, intel_i7_3970x_spec
from repro.workloads import spec_suite
from repro.workloads.genetic import (
    GAConfig,
    GENOME_LENGTH,
    VirusEvolver,
    crash_voltage_fitness,
    evolve_virus_for_chip,
    genome_to_profile,
    genome_to_workload,
    physical_genome_to_profile,
)


class TestGenomeMapping:
    def test_profile_fields_stay_in_bounds(self):
        for genome in ([0.0] * 6, [1.0] * 6, [0.3, 0.9, 0.1, 0.7, 0.5, 0.2]):
            profile = genome_to_profile(genome)
            for value in (profile.droop_intensity, profile.core_sensitivity,
                          profile.activity_factor, profile.cache_pressure,
                          profile.dram_pressure):
                assert 0.0 <= value <= 1.0

    def test_aligned_burst_maximises_droop(self):
        worst = genome_to_profile([1, 1, 1, 0, 0, 0])
        assert worst.droop_intensity == pytest.approx(1.0)

    def test_branchiness_dilutes_stress(self):
        lean = genome_to_profile([1, 1, 1, 0, 0, 0.0])
        branchy = genome_to_profile([1, 1, 1, 0, 0, 1.0])
        assert branchy.droop_intensity < lean.droop_intensity
        assert branchy.core_sensitivity < lean.core_sensitivity

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            genome_to_profile([0.5] * 4)

    def test_workload_wrapper(self):
        w = genome_to_workload([0.5] * GENOME_LENGTH, name="v1")
        assert w.name == "v1"
        assert w.duration_cycles > 0


class TestPhysicalMapping:
    def test_physical_droop_monotone_in_alignment(self):
        from repro.hardware.pdn import PdnModel
        pdn = PdnModel()
        droops = [
            physical_genome_to_profile(
                [1.0, align, 0.5, 0.2, 0.2, 0.0], pdn).droop_intensity
            for align in (0.0, 0.5, 1.0)
        ]
        assert droops == sorted(droops)

    def test_physical_agrees_with_abstract_at_extremes(self):
        """At full burst, full alignment, no branches, both mappings
        report worst-case droop."""
        from repro.hardware.pdn import PdnModel
        genome = [1.0, 1.0, 0.5, 0.2, 0.2, 0.0]
        abstract = genome_to_profile(genome)
        physical = physical_genome_to_profile(genome, PdnModel())
        assert abstract.droop_intensity == pytest.approx(1.0)
        assert physical.droop_intensity == pytest.approx(1.0, abs=0.01)

    def test_non_droop_fields_identical(self):
        from repro.hardware.pdn import PdnModel
        genome = [0.7, 0.3, 0.8, 0.4, 0.6, 0.2]
        abstract = genome_to_profile(genome)
        physical = physical_genome_to_profile(genome, PdnModel())
        assert physical.core_sensitivity == abstract.core_sensitivity
        assert physical.activity_factor == abstract.activity_factor
        assert physical.cache_pressure == abstract.cache_pressure

    def test_wrong_length_rejected(self):
        from repro.hardware.pdn import PdnModel
        with pytest.raises(ConfigurationError):
            physical_genome_to_profile([0.5] * 3, PdnModel())


class TestEvolution:
    def _evolver(self, **config):
        chip = ChipModel(intel_i7_3970x_spec(), seed=1)
        cfg = GAConfig(population_size=20, generations=15, **config)
        return VirusEvolver(crash_voltage_fitness(chip), cfg, seed=5), chip

    def test_elitist_history_is_monotone(self):
        evolver, _ = self._evolver()
        result = evolver.evolve()
        assert result.history == sorted(result.history)

    def test_deterministic_given_seed(self):
        chip = ChipModel(intel_i7_3970x_spec(), seed=1)
        cfg = GAConfig(population_size=16, generations=10)
        a = VirusEvolver(crash_voltage_fitness(chip), cfg, seed=3).evolve()
        b = VirusEvolver(crash_voltage_fitness(chip), cfg, seed=3).evolve()
        assert a.best_genome == b.best_genome

    def test_champion_beats_random_genomes(self):
        evolver, chip = self._evolver()
        result = evolver.evolve()
        fitness = crash_voltage_fitness(chip)
        import numpy as np
        rng = np.random.default_rng(0)
        random_scores = [
            fitness(genome_to_profile(rng.random(GENOME_LENGTH)))
            for _ in range(50)
        ]
        assert result.best_fitness >= max(random_scores)

    def test_champion_outstresses_spec_suite(self):
        """Section 3.B: the evolved virus reveals a worst case beyond any
        real-life workload — its crash voltage exceeds every benchmark's."""
        chip = ChipModel(intel_i7_3970x_spec(), seed=2)
        virus = evolve_virus_for_chip(
            chip, GAConfig(population_size=30, generations=25), seed=7)
        fitness = crash_voltage_fitness(chip)
        virus_crash = fitness(virus.profile)
        spec_crashes = [fitness(w.profile) for w in spec_suite()]
        assert virus_crash > max(spec_crashes)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GAConfig(population_size=1)
        with pytest.raises(ConfigurationError):
            GAConfig(generations=0)
        with pytest.raises(ConfigurationError):
            GAConfig(tournament_size=100)
        with pytest.raises(ConfigurationError):
            GAConfig(elite_count=40)
