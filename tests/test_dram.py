"""Tests for the DRAM retention model and refresh domains."""

import pytest

from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S
from repro.core.exceptions import ConfigurationError
from repro.hardware.dram import (
    BITS_PER_GB,
    Dimm,
    DramSystem,
    MemoryDomain,
    RetentionModel,
    standard_server_memory,
)


class TestRetentionModel:
    def test_nominal_refresh_is_error_free(self):
        """At 64 ms the BER is astronomically small."""
        ber = RetentionModel().ber(NOMINAL_REFRESH_INTERVAL_S)
        assert ber < 1e-18

    def test_paper_five_second_ber(self):
        """Section 6.B: at 5 s (78x nominal) cumulative BER ~ 1e-9."""
        ber = RetentionModel().ber(5.0)
        assert 3e-10 < ber < 3e-9

    def test_paper_1500ms_unobservable(self):
        """At 1.5 s the expected errors over an 8 GB DIMM test are << 1."""
        ber = RetentionModel().ber(1.5)
        expected_errors = ber * 8 * BITS_PER_GB
        assert expected_errors < 0.2

    def test_ber_monotone_in_interval(self):
        model = RetentionModel()
        bers = [model.ber(t) for t in (0.064, 0.5, 1.5, 5.0, 20.0)]
        assert bers == sorted(bers)

    def test_temperature_shortens_retention(self):
        model = RetentionModel()
        cool = model.ber(5.0, temperature_c=35.0)
        hot = model.ber(5.0, temperature_c=55.0)
        assert hot > model.ber(5.0) > cool

    def test_max_interval_inversion_roundtrip(self):
        model = RetentionModel()
        interval = model.max_interval_for_ber(1e-9)
        assert model.ber(interval) == pytest.approx(1e-9, rel=0.01)
        assert 3.0 < interval < 8.0

    def test_max_interval_respects_temperature(self):
        model = RetentionModel()
        cool = model.max_interval_for_ber(1e-9, temperature_c=35.0)
        hot = model.max_interval_for_ber(1e-9, temperature_c=55.0)
        assert cool > hot

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            RetentionModel().ber(0.0)
        with pytest.raises(ConfigurationError):
            RetentionModel().max_interval_for_ber(0.0)


class TestMemoryDomain:
    def _domain(self, reliable=False):
        return MemoryDomain("d0", [Dimm(dimm_id=0)], reliable=reliable,
                            seed=1)

    def test_reliable_domain_refuses_relaxation(self):
        domain = self._domain(reliable=True)
        with pytest.raises(ConfigurationError):
            domain.set_refresh_interval(1.5)

    def test_reliable_domain_accepts_tightening(self):
        domain = self._domain(reliable=True)
        domain.set_refresh_interval(0.032)
        assert domain.refresh_interval_s == 0.032

    def test_relaxation_changes_power(self):
        domain = self._domain()
        nominal_power = domain.refresh_power_w()
        domain.set_refresh_interval(1.5)
        assert domain.refresh_power_w() < nominal_power / 20

    def test_pattern_test_clean_at_nominal(self):
        domain = self._domain()
        assert domain.sample_pattern_errors(coverage=1.0, passes=4) == 0

    def test_pattern_test_finds_errors_when_extreme(self):
        domain = self._domain()
        domain.set_refresh_interval(30.0)
        errors = domain.sample_pattern_errors(coverage=1.0, passes=2)
        assert errors > 0

    def test_expected_errors_scale_with_coverage(self):
        domain = self._domain()
        domain.set_refresh_interval(5.0)
        full = domain.expected_errors_per_pass(coverage=1.0)
        half = domain.expected_errors_per_pass(coverage=0.5)
        assert full == pytest.approx(2 * half)

    def test_needs_at_least_one_dimm(self):
        with pytest.raises(ConfigurationError):
            MemoryDomain("empty", [])


class TestDramSystem:
    def test_standard_layout(self):
        memory = standard_server_memory(n_channels=4, dimm_gb=8.0)
        assert memory.capacity_gb == pytest.approx(32.0)
        assert memory.reliable_domain().name == "channel0"
        assert len(memory.domains()) == 4

    def test_relax_all_spares_reliable(self):
        memory = standard_server_memory()
        changed = memory.relax_all(1.5)
        assert "channel0" not in changed
        assert len(memory.relaxed_domains()) == 3
        assert memory.reliable_domain().refresh_interval_s == \
            NOMINAL_REFRESH_INTERVAL_S

    def test_relax_all_can_override_reliable_for_ablation(self):
        memory = standard_server_memory()
        changed = memory.relax_all(1.5, keep_reliable_nominal=False)
        assert "channel0" in changed
        assert memory.domain("channel0").refresh_interval_s == 1.5

    def test_relaxation_reduces_total_power(self):
        memory = standard_server_memory()
        before = memory.total_power_w()
        memory.relax_all(1.5)
        assert memory.total_power_w() < before

    def test_duplicate_domain_names_rejected(self):
        d = [MemoryDomain("x", [Dimm(dimm_id=0)]),
             MemoryDomain("x", [Dimm(dimm_id=1)])]
        with pytest.raises(ConfigurationError):
            DramSystem(d)

    def test_unknown_domain_lookup(self):
        memory = standard_server_memory()
        with pytest.raises(KeyError):
            memory.domain("channel9")

    def test_contains(self):
        memory = standard_server_memory()
        assert "channel1" in memory
        assert "nope" not in memory


class TestDegenerateTopologies:
    def test_no_reliable_channel_layout(self):
        memory = standard_server_memory(reliable_channel=None, seed=2)
        assert memory.reliable_domain() is None
        memory.relax_all(5.0)
        assert len(memory.relaxed_domains()) == 4

    def test_all_reliable_layout_has_no_relaxed_domains(self):
        domains = [
            MemoryDomain(f"ch{i}", [Dimm(dimm_id=i)], reliable=True,
                         seed=i, tier="strong")
            for i in range(3)
        ]
        memory = DramSystem(domains)
        assert memory.reliable_domain() is not None
        assert memory.relaxed_domains() == []
        # relax_all spares every reliable domain: nothing changes.
        assert memory.relax_all(5.0) == []
        assert memory.tiers() == ["strong"]

    def test_reliable_channel_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            standard_server_memory(n_channels=4, reliable_channel=4)


class TestTieredLayout:
    def test_tier_matrix(self):
        from repro.hardware.dram import (
            DEFAULT_TIER_REFRESH_S,
            MEMORY_TIERS,
            tiered_server_memory,
        )
        memory = tiered_server_memory(seed=4)
        assert memory.tiers() == list(MEMORY_TIERS)
        assert memory.domain("channel0").tier == "strong"
        assert memory.domain("channel1").tier == "normal"
        for name in ("channel2", "channel3"):
            assert memory.domain(name).tier == "relaxed"
        for domain in memory.domains():
            assert domain.refresh_interval_s == pytest.approx(
                DEFAULT_TIER_REFRESH_S[domain.tier])
        # The verified ECC selection matrix.
        assert memory.domain("channel0").ecc.name == "secded"
        assert memory.domain("channel1").ecc.name == "sec-daec"
        assert memory.domain("channel2").ecc.name == "bch-dec"

    def test_strong_tier_is_the_reliable_domain(self):
        from repro.hardware.dram import tiered_server_memory
        memory = tiered_server_memory(seed=4)
        reliable = memory.reliable_domain()
        assert reliable is not None and reliable.name == "channel0"
        with pytest.raises(ConfigurationError):
            reliable.set_refresh_interval(5.0)

    def test_tier_accounting_sums_to_totals(self):
        from repro.hardware.dram import tiered_server_memory
        memory = tiered_server_memory(seed=4)
        assert sum(memory.tier_capacity_gb().values()) == pytest.approx(
            memory.capacity_gb)
        assert sum(memory.tier_refresh_power_w().values()) == pytest.approx(
            memory.refresh_power_w())

    def test_needs_two_channels(self):
        from repro.hardware.dram import tiered_server_memory
        with pytest.raises(ConfigurationError):
            tiered_server_memory(n_channels=1)

    def test_unknown_tier_rejected(self):
        memory = standard_server_memory(seed=1)
        with pytest.raises(ConfigurationError):
            memory.domains_in_tier("medium")
