"""Tests for the HealthLog daemon and info vectors."""

import pytest

from repro.core.clock import SimClock
from repro.core.events import (
    AnomalyEvent,
    CorrectableErrorEvent,
    CrashEvent,
    EventBus,
    SensorEvent,
    UncorrectableErrorEvent,
)
from repro.core.exceptions import ConfigurationError
from repro.daemons.healthlog import HealthLog, HealthLogConfig
from repro.daemons.infovector import InfoVector
from repro.hardware import build_uniserver_node


@pytest.fixture
def setup():
    clock = SimClock()
    bus = EventBus()
    platform = build_uniserver_node()
    hl = HealthLog(platform, bus, clock,
                   HealthLogConfig(error_threshold=3, error_window_s=100.0))
    return clock, bus, platform, hl


def push_error(bus, clock, component="core0", n=1):
    for _ in range(n):
        bus.publish(CorrectableErrorEvent(
            timestamp=clock.now, source="hw", component=component,
            detail="test"))


class TestEventDriven:
    def test_errors_land_in_ledger_and_logfile(self, setup):
        clock, bus, platform, hl = setup
        push_error(bus, clock, n=2)
        assert len(hl.ledger) == 2
        assert any("correctable" in line for line in hl.logfile)

    def test_crash_events_recorded(self, setup):
        clock, bus, platform, hl = setup
        bus.publish(CrashEvent(timestamp=0.0, source="hw",
                               component="core3",
                               operating_point="0.8 V"))
        snapshot = hl.snapshot()
        assert snapshot.crashes == 1

    def test_threshold_raises_anomaly_once(self, setup):
        clock, bus, platform, hl = setup
        anomalies = []
        bus.subscribe(AnomalyEvent, anomalies.append)
        push_error(bus, clock, n=5)
        assert len(anomalies) == 1
        assert anomalies[0].severity == "critical"
        assert "core0" in anomalies[0].description

    def test_flag_rearm_allows_second_anomaly(self, setup):
        clock, bus, platform, hl = setup
        anomalies = []
        bus.subscribe(AnomalyEvent, anomalies.append)
        push_error(bus, clock, n=3)
        hl.clear_flag("core0")
        push_error(bus, clock, n=3)
        assert len(anomalies) == 2

    def test_sensor_events_update_cache(self, setup):
        clock, bus, platform, hl = setup
        bus.publish(SensorEvent(timestamp=0.0, source="hw",
                                sensor="temperature_c", value=61.5))
        assert hl.snapshot().sensors["temperature_c"] == 61.5


class TestPeriodicSampling:
    def test_sampling_runs_on_clock(self, setup):
        clock, bus, platform, hl = setup
        hl.start()
        clock.advance_by(5.0)
        assert any("sample" in line for line in hl.logfile)
        assert "voltage_v" in hl.snapshot().sensors

    def test_start_is_idempotent(self, setup):
        clock, bus, platform, hl = setup
        hl.start()
        hl.start()
        clock.advance_by(3.0)
        samples = [l for l in hl.logfile if "sample" in l]
        assert len(samples) == 3  # one per second, not doubled


class TestSnapshots:
    def test_snapshot_counts_are_deltas(self, setup):
        clock, bus, platform, hl = setup
        push_error(bus, clock, n=2)
        first = hl.snapshot()
        assert first.correctable_errors == 2
        second = hl.snapshot()
        assert second.correctable_errors == 0
        push_error(bus, clock, n=1)
        assert hl.snapshot().correctable_errors == 1

    def test_snapshot_has_full_configuration(self, setup):
        clock, bus, platform, hl = setup
        snapshot = hl.snapshot()
        assert "core0" in snapshot.configuration
        assert "channel0" in snapshot.configuration

    def test_suspects_listed(self, setup):
        clock, bus, platform, hl = setup
        push_error(bus, clock, component="core5", n=4)
        assert "core5" in hl.snapshot().suspect_components

    def test_log_line_format(self, setup):
        clock, bus, platform, hl = setup
        push_error(bus, clock, n=1)
        line = hl.snapshot().to_log_line()
        assert line.startswith("t=")
        assert "ce=1" in line
        assert "cfg.core0=" in line


class TestConfig:
    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            HealthLogConfig(sampling_period_s=0)
        with pytest.raises(ConfigurationError):
            HealthLogConfig(error_threshold=0)

    def test_logfile_is_bounded(self, setup):
        clock, bus, platform, hl = setup
        hl.config = HealthLogConfig(logfile_limit=10)
        for i in range(50):
            push_error(bus, clock, n=1)
        assert len(hl.logfile) <= 50  # original config object frozen copy
