"""Tests for chip assembly, the part catalog and the server platform."""

import dataclasses

import pytest

from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S, OperatingPoint
from repro.core.exceptions import ConfigurationError
from repro.hardware import (
    ChipModel,
    PlatformConfig,
    arm_server_soc_spec,
    build_uniserver_node,
    intel_i5_4200u_spec,
    intel_i7_3970x_spec,
    sample_population,
    spec_from_variation,
)
from repro.workloads import spec_workload


class TestCatalog:
    def test_i5_matches_paper_nominals(self):
        spec = intel_i5_4200u_spec()
        assert spec.nominal.voltage_v == pytest.approx(0.844)
        assert spec.nominal.frequency_hz == pytest.approx(2.6e9)
        assert spec.n_cores == 2
        assert spec.cache.ecc_reporting is True

    def test_i7_matches_paper_nominals(self):
        spec = intel_i7_3970x_spec()
        assert spec.nominal.voltage_v == pytest.approx(1.365)
        assert spec.nominal.frequency_hz == pytest.approx(4.0e9)
        assert spec.n_cores == 6
        assert spec.cache.ecc_reporting is False

    def test_core_deltas_are_mean_zero(self):
        """The calibration keeps benchmark-mean crash points unbiased."""
        for spec in (intel_i5_4200u_spec(), intel_i7_3970x_spec()):
            assert sum(spec.core_deltas_v) == pytest.approx(0.0, abs=1e-9)

    def test_arm_soc_has_requested_cores(self):
        assert arm_server_soc_spec(n_cores=4).n_cores == 4

    def test_vmin_must_be_below_nominal(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(intel_i5_4200u_spec(), vmin_base_v=0.9)


class TestChipModel:
    def test_run_survives_at_nominal(self, i5_chip):
        outcome = i5_chip.run_benchmark(
            0, spec_workload("bzip2"), i5_chip.spec.nominal)
        assert outcome.survived

    def test_run_crashes_far_below_nominal(self, i5_chip):
        point = i5_chip.spec.nominal.with_voltage(0.60)
        outcome = i5_chip.run_benchmark(0, spec_workload("zeusmp"), point)
        assert not outcome.survived

    def test_counters_only_on_survival(self, i5_chip):
        nominal = i5_chip.spec.nominal
        alive = i5_chip.run_benchmark(0, spec_workload("mcf"), nominal,
                                      with_counters=True)
        assert alive.counters is not None
        assert alive.counters.ipc > 0
        dead = i5_chip.run_benchmark(
            0, spec_workload("mcf"), nominal.with_voltage(0.55),
            with_counters=True)
        assert dead.counters is None

    def test_power_positive_and_voltage_sensitive(self, i7_chip):
        nominal = i7_chip.spec.nominal
        high = i7_chip.run_benchmark(0, spec_workload("namd"), nominal)
        low = i7_chip.run_benchmark(
            0, spec_workload("namd"), nominal.with_voltage(1.25))
        assert high.power_w > low.power_w > 0

    def test_core_out_of_range(self, i5_chip):
        with pytest.raises(ConfigurationError):
            i5_chip.core(5)

    def test_active_cores_respect_isolation(self, i5_chip):
        i5_chip.core(0).isolate()
        assert [c.core_id for c in i5_chip.active_cores()] == [1]

    def test_sensor_read_is_plausible(self, i5_chip):
        reading = i5_chip.read_sensors(1.0, i5_chip.spec.nominal)
        assert 0.8 < reading.voltage_v < 0.9
        assert reading.power_w > 0


class TestSpecFromVariation:
    def test_population_chip_constructs(self):
        base = arm_server_soc_spec()
        sample = sample_population(1, base.n_cores, seed=3)[0]
        spec = spec_from_variation(base, sample)
        chip = ChipModel(spec, seed=0)
        assert chip.n_cores == base.n_cores
        assert "chip0" in spec.name

    def test_core_count_mismatch_rejected(self):
        base = arm_server_soc_spec(n_cores=8)
        sample = sample_population(1, 4, seed=0)[0]
        with pytest.raises(ConfigurationError):
            spec_from_variation(base, sample)

    def test_weak_sample_raises_vmin(self):
        base = arm_server_soc_spec()
        weak = sample_population(200, base.n_cores, seed=1)
        weakest = max(weak, key=lambda c: c.worst_vmin_factor())
        strongest = min(weak, key=lambda c: c.worst_vmin_factor())
        weak_spec = spec_from_variation(base, weakest)
        strong_spec = spec_from_variation(base, strongest)
        assert weak_spec.vmin_base_v + max(weak_spec.core_deltas_v) > \
            strong_spec.vmin_base_v + max(strong_spec.core_deltas_v)


class TestPlatform:
    def test_default_node_layout(self):
        node = build_uniserver_node()
        assert node.memory.capacity_gb == pytest.approx(32.0)
        assert node.memory.reliable_domain() is not None
        assert node.chip.n_cores == 8

    def test_core_point_management(self):
        node = build_uniserver_node()
        new_point = node.chip.spec.nominal.with_voltage(0.9)
        node.set_core_point(2, new_point)
        assert node.core_point(2).voltage_v == pytest.approx(0.9)
        assert node.core_point(0) == node.chip.spec.nominal

    def test_unknown_core_rejected(self):
        node = build_uniserver_node()
        with pytest.raises(ConfigurationError):
            node.set_core_point(99, node.chip.spec.nominal)

    def test_reset_nominal_restores_everything(self):
        node = build_uniserver_node()
        node.set_all_core_points(node.chip.spec.nominal.with_voltage(0.85))
        node.memory.relax_all(1.5)
        node.reset_nominal()
        assert node.core_point(0) == node.chip.spec.nominal
        for domain in node.memory.domains():
            assert domain.refresh_interval_s == NOMINAL_REFRESH_INTERVAL_S

    def test_undervolting_reduces_power(self):
        node = build_uniserver_node()
        before = node.total_power_w()
        node.set_all_core_points(node.chip.spec.nominal.with_voltage(0.80))
        assert node.total_power_w() < before

    def test_describe_lists_components(self):
        node = build_uniserver_node()
        text = node.describe()
        assert "core0" in text and "channel0" in text and "[reliable]" in text
