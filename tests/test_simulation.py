"""Tests for the trace-driven cloud simulation."""

import pytest

from repro.cloudmgr import CloudController, ComputeNode
from repro.cloudmgr.simulation import (
    TIER_MAP,
    TraceDrivenSimulation,
    run_trace_experiment,
)
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError
from repro.workloads.traces import TraceConfig, TraceGenerator


def make_cloud(n_nodes=4):
    clock = SimClock()
    nodes = [ComputeNode(f"node{i}", clock, seed=i) for i in range(n_nodes)]
    return CloudController(clock, nodes, proactive_migration=False)


def make_events(duration_s, rate=20.0, seed=1, lifetime_s=1800.0):
    return TraceGenerator(
        TraceConfig(base_rate_per_hour=rate, mean_lifetime_s=lifetime_s),
        seed=seed).generate(duration_s)


class TestTierMapping:
    def test_all_trace_tiers_resolve(self):
        assert set(TIER_MAP) == {"gold", "silver", "bronze"}


class TestSimulation:
    def test_arrivals_admitted_and_terminated(self):
        duration = 4 * 3600.0
        cloud = make_cloud()
        events = make_events(duration)
        simulation = TraceDrivenSimulation(cloud, events, step_s=120.0)
        stats = simulation.run(duration)
        assert stats.arrivals == len(events)
        assert stats.admitted + stats.rejected == stats.arrivals
        assert stats.admitted > 0
        # Short lifetimes: most admitted VMs should have departed.
        assert stats.terminated > stats.admitted * 0.5

    def test_rack_drains_after_the_stream(self):
        duration = 2 * 3600.0
        cloud = make_cloud()
        events = make_events(duration, lifetime_s=600.0)
        simulation = TraceDrivenSimulation(cloud, events, step_s=60.0)
        simulation.run(duration + 3600.0)
        assert simulation.active_vm_count() <= 2  # stragglers at most

    def test_overload_counts_rejections(self):
        duration = 2 * 3600.0
        cloud = make_cloud(n_nodes=1)
        events = make_events(duration, rate=300.0, lifetime_s=7200.0)
        simulation = TraceDrivenSimulation(cloud, events, step_s=120.0)
        stats = simulation.run(duration)
        assert stats.rejected > 0
        assert stats.admission_rate < 1.0
        assert sum(stats.rejected_by_tier.values()) == stats.rejected

    def test_deterministic_given_seeds(self):
        duration = 2 * 3600.0
        a = TraceDrivenSimulation(
            make_cloud(), make_events(duration, seed=5), step_s=120.0
        ).run(duration)
        b = TraceDrivenSimulation(
            make_cloud(), make_events(duration, seed=5), step_s=120.0
        ).run(duration)
        assert (a.admitted, a.rejected, a.terminated) == \
            (b.admitted, b.rejected, b.terminated)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceDrivenSimulation(make_cloud(), [], step_s=0.0)
        simulation = TraceDrivenSimulation(make_cloud(), [])
        with pytest.raises(ConfigurationError):
            simulation.run(0.0)


class TestConvenienceWrapper:
    def test_run_trace_experiment(self):
        cloud = make_cloud()
        stats = run_trace_experiment(cloud, duration_s=2 * 3600.0,
                                     trace_seed=2,
                                     base_rate_per_hour=15.0)
        assert stats.arrivals > 0
        assert stats.admission_rate > 0.9  # healthy rack absorbs this
