"""Tests for the trace-driven cloud simulation."""

import pytest

from repro.cloudmgr import CloudController, ComputeNode
from repro.cloudmgr.simulation import (
    TIER_MAP,
    TraceDrivenSimulation,
    run_trace_experiment,
)
from repro.core.clock import SimClock
from repro.core.exceptions import ConfigurationError
from repro.workloads.traces import TraceConfig, TraceGenerator


def make_cloud(n_nodes=4):
    clock = SimClock()
    nodes = [ComputeNode(f"node{i}", clock, seed=i) for i in range(n_nodes)]
    return CloudController(clock, nodes, proactive_migration=False)


def make_events(duration_s, rate=20.0, seed=1, lifetime_s=1800.0):
    return TraceGenerator(
        TraceConfig(base_rate_per_hour=rate, mean_lifetime_s=lifetime_s),
        seed=seed).generate(duration_s)


class TestTierMapping:
    def test_all_trace_tiers_resolve(self):
        assert set(TIER_MAP) == {"gold", "silver", "bronze"}


class TestSimulation:
    def test_arrivals_admitted_and_terminated(self):
        duration = 4 * 3600.0
        cloud = make_cloud()
        events = make_events(duration)
        simulation = TraceDrivenSimulation(cloud, events, step_s=120.0)
        stats = simulation.run(duration)
        assert stats.arrivals == len(events)
        assert stats.admitted + stats.rejected == stats.arrivals
        assert stats.admitted > 0
        # Short lifetimes: most admitted VMs should have departed.
        assert stats.terminated > stats.admitted * 0.5

    def test_rack_drains_after_the_stream(self):
        duration = 2 * 3600.0
        cloud = make_cloud()
        events = make_events(duration, lifetime_s=600.0)
        simulation = TraceDrivenSimulation(cloud, events, step_s=60.0)
        simulation.run(duration + 3600.0)
        assert simulation.active_vm_count() <= 2  # stragglers at most

    def test_overload_counts_rejections(self):
        duration = 2 * 3600.0
        cloud = make_cloud(n_nodes=1)
        events = make_events(duration, rate=300.0, lifetime_s=7200.0)
        simulation = TraceDrivenSimulation(cloud, events, step_s=120.0)
        stats = simulation.run(duration)
        assert stats.rejected > 0
        assert stats.admission_rate < 1.0
        assert sum(stats.rejected_by_tier.values()) == stats.rejected

    def test_deterministic_given_seeds(self):
        duration = 2 * 3600.0
        a = TraceDrivenSimulation(
            make_cloud(), make_events(duration, seed=5), step_s=120.0
        ).run(duration)
        b = TraceDrivenSimulation(
            make_cloud(), make_events(duration, seed=5), step_s=120.0
        ).run(duration)
        assert (a.admitted, a.rejected, a.terminated) == \
            (b.admitted, b.rejected, b.terminated)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceDrivenSimulation(make_cloud(), [], step_s=0.0)
        simulation = TraceDrivenSimulation(make_cloud(), [])
        with pytest.raises(ConfigurationError):
            simulation.run(0.0)


class TestDepartureHeap:
    def test_heap_mirrors_departure_dict(self):
        duration = 2 * 3600.0
        simulation = TraceDrivenSimulation(
            make_cloud(), make_events(duration), step_s=120.0)
        simulation.run(duration)
        live = {(when, name) for name, when
                in simulation._departures.items()}
        assert live <= set(simulation._departure_heap)
        # Nothing still pending is already due.
        assert all(when > simulation.now for when, _ in live)

    def test_load_state_dict_rebuilds_heap(self):
        duration = 2 * 3600.0
        events = make_events(duration)
        first = TraceDrivenSimulation(make_cloud(), events,
                                      step_s=120.0)
        while first.now < duration / 2:
            first.step_once()
        state = first.state_dict()

        second = TraceDrivenSimulation(make_cloud(), events,
                                       step_s=120.0)
        second.load_state_dict(state)
        assert sorted(second._departure_heap) == sorted(
            (when, name) for name, when
            in second._departures.items())
        assert second._departure_heap[0] == min(second._departure_heap)

    def test_stale_heap_entries_are_skipped(self):
        simulation = TraceDrivenSimulation(make_cloud(), [],
                                           step_s=60.0)
        import heapq

        # A superseded entry (lazy deletion) must not terminate the VM
        # at the stale time.
        simulation._departures["vm0"] = 500.0
        heapq.heappush(simulation._departure_heap, (100.0, "vm0"))
        heapq.heappush(simulation._departure_heap, (500.0, "vm0"))
        simulation._terminate_departed(200.0)
        assert simulation.stats.terminated == 0
        assert "vm0" in simulation._departures
        simulation._terminate_departed(600.0)
        assert simulation.stats.terminated == 1
        assert "vm0" not in simulation._departures


class TestConvenienceWrapper:
    def test_run_trace_experiment(self):
        cloud = make_cloud()
        stats = run_trace_experiment(cloud, duration_s=2 * 3600.0,
                                     trace_seed=2,
                                     base_rate_per_hour=15.0)
        assert stats.arrivals > 0
        assert stats.admission_rate > 0.9  # healthy rack absorbs this
