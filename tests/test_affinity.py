"""Tests for EOP-aware vCPU affinity planning."""

import pytest

from repro.core.exceptions import ConfigurationError, SchedulingError
from repro.hardware import ChipModel, arm_server_soc_spec
from repro.hypervisor.affinity import (
    AffinityPlanner,
    naive_balanced_plan,
)
from repro.hypervisor.vm import VirtualMachine
from repro.workloads import spec_workload


@pytest.fixture
def chip():
    return ChipModel(arm_server_soc_spec(), seed=3)


@pytest.fixture
def planner(chip):
    return AffinityPlanner(chip)


def fleet(names_and_workloads):
    return [
        VirtualMachine(name=name, workload=spec_workload(workload))
        for name, workload in names_and_workloads
    ]


class TestPairing:
    def test_pairing_point_is_safe(self, planner):
        vm = fleet([("a", "zeusmp")])[0]
        pairing = planner.pairing_cost(vm, 0)
        assert pairing is not None
        assert pairing.failure_probability <= planner.failure_budget
        core = planner.chip.core(0)
        assert pairing.point.voltage_v >= \
            core.crash_voltage_v(vm.workload.profile)

    def test_strong_core_gets_deeper_point(self, planner, chip):
        """The chip's strongest core supports a lower voltage than its
        weakest for the same guest."""
        vm = fleet([("a", "hmmer")])[0]
        deltas = chip.spec.core_deltas_v
        strong = deltas.index(min(deltas))
        weak = deltas.index(max(deltas))
        strong_pairing = planner.pairing_cost(vm, strong)
        weak_pairing = planner.pairing_cost(vm, weak)
        assert strong_pairing.point.voltage_v < weak_pairing.point.voltage_v

    def test_isolated_core_unavailable(self, planner, chip):
        chip.core(0).isolate()
        vm = fleet([("a", "mcf")])[0]
        assert planner.pairing_cost(vm, 0) is None


class TestPlanning:
    def test_plan_places_every_vm(self, planner):
        vms = fleet([("a", "mcf"), ("b", "zeusmp"), ("c", "hmmer"),
                     ("d", "namd")])
        plan = planner.plan(vms)
        assert [a.vm_name for a in plan] == ["a", "b", "c", "d"]

    def test_plan_respects_core_capacity(self, chip):
        planner = AffinityPlanner(chip, vms_per_core=1)
        vms = fleet([(f"vm{i}", "mcf") for i in range(chip.n_cores)])
        plan = planner.plan(vms)
        cores = [a.core_id for a in plan]
        assert len(set(cores)) == chip.n_cores  # one per core

    def test_over_capacity_rejected(self, chip):
        planner = AffinityPlanner(chip, vms_per_core=1)
        vms = fleet([(f"vm{i}", "mcf") for i in range(chip.n_cores + 1)])
        with pytest.raises(SchedulingError):
            planner.plan(vms)

    def test_empty_plan(self, planner):
        assert planner.plan([]) == []

    def test_affinity_beats_naive_balance(self, planner):
        """The point of the feature: heterogeneity-aware placement burns
        less power than round-robin for a mixed fleet."""
        vms = fleet([("a", "zeusmp"), ("b", "mcf"), ("c", "namd"),
                     ("d", "gobmk"), ("e", "milc"), ("f", "hmmer"),
                     ("g", "h264ref"), ("h", "bzip2")])
        smart = planner.plan(vms)
        naive = naive_balanced_plan(planner, vms)
        assert planner.total_relative_power(smart) < \
            planner.total_relative_power(naive)

    def test_no_active_cores_rejected(self, chip):
        for core in chip.cores:
            core.isolate()
        planner = AffinityPlanner(chip)
        with pytest.raises(SchedulingError):
            planner.plan(fleet([("a", "mcf")]))

    def test_validation(self, chip):
        with pytest.raises(ConfigurationError):
            AffinityPlanner(chip, guard_margin_v=-1.0)
        with pytest.raises(ConfigurationError):
            AffinityPlanner(chip, failure_budget=0.0)
        with pytest.raises(ConfigurationError):
            AffinityPlanner(chip, vms_per_core=0)
