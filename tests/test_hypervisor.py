"""Tests for the hypervisor engine."""

import pytest

from repro.core.clock import SimClock
from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S, OperatingPoint
from repro.core.exceptions import ConfigurationError
from repro.daemons.infovector import ComponentMargin, MarginVector
from repro.hardware import build_uniserver_node
from repro.hypervisor import (
    Hypervisor,
    HypervisorConfig,
    VirtualMachine,
    VMState,
    make_vm_fleet,
)
from repro.workloads import ldbc_workload, spec_workload


@pytest.fixture
def hv():
    clock = SimClock()
    platform = build_uniserver_node()
    hypervisor = Hypervisor(platform, clock, seed=9)
    hypervisor.boot()
    return hypervisor


def margin(component, point, pfail=1e-9, power=0.8):
    return ComponentMargin(
        component=component, safe_point=point,
        failure_probability=pfail, relative_power=power,
        stress_workload="virus",
    )


class TestLifecycle:
    def test_boot_places_hypervisor_in_reliable_domain(self, hv):
        allocations = hv.placement.allocations
        assert len(allocations) == 1
        assert allocations[0].critical
        assert allocations[0].domain == "channel0"

    def test_vm_requires_boot(self):
        clock = SimClock()
        hypervisor = Hypervisor(build_uniserver_node(), clock)
        vm = VirtualMachine(name="vm0", workload=spec_workload("mcf"))
        with pytest.raises(ConfigurationError):
            hypervisor.create_vm(vm)

    def test_create_and_destroy_vm(self, hv):
        vm = VirtualMachine(name="vm0", workload=spec_workload("mcf"))
        hv.create_vm(vm)
        assert vm.state is VMState.RUNNING
        assert len(hv.placement.allocations) == 2
        hv.destroy_vm("vm0")
        assert len(hv.placement.allocations) == 1
        with pytest.raises(KeyError):
            hv.vm("vm0")

    def test_duplicate_vm_rejected(self, hv):
        vm = VirtualMachine(name="vm0", workload=spec_workload("mcf"))
        hv.create_vm(vm)
        with pytest.raises(ConfigurationError):
            hv.create_vm(VirtualMachine(name="vm0",
                                        workload=spec_workload("mcf")))

    def test_vms_spread_over_cores(self, hv):
        for vm in make_vm_fleet(spec_workload("mcf"), 4):
            hv.create_vm(vm)
        cores = set(hv._assignments.values())
        assert len(cores) == 4

    def test_affinity_mode_prefers_strong_cores(self):
        """With use_affinity, the first (stressful) guest lands on the
        core with the lowest crash voltage for its profile."""
        clock = SimClock()
        platform = build_uniserver_node()
        hv = Hypervisor(platform, clock,
                        config=HypervisorConfig(use_affinity=True))
        hv.boot()
        vm = VirtualMachine(name="stressy",
                            workload=spec_workload("zeusmp"))
        hv.create_vm(vm)
        chosen = hv._assignments["stressy"]
        crash_of = {
            core.core_id: core.crash_voltage_v(vm.workload.profile)
            for core in platform.chip.cores
        }
        assert crash_of[chosen] == min(crash_of.values())


class TestMarginApplication:
    def test_safe_margins_adopted(self, hv):
        nominal = hv.platform.chip.spec.nominal
        vector = MarginVector(
            timestamp=0.0, node="n",
            margins=(margin("core0", nominal.with_voltage(0.85)),),
        )
        changed = hv.apply_margins(vector)
        assert changed == ["core0"]
        assert hv.platform.core_point(0).voltage_v == pytest.approx(0.85)

    def test_unsafe_margins_skipped(self, hv):
        nominal = hv.platform.chip.spec.nominal
        vector = MarginVector(
            timestamp=0.0, node="n",
            margins=(margin("core0", nominal.with_voltage(0.75),
                            pfail=0.5),),
        )
        assert hv.apply_margins(vector) == []
        assert hv.platform.core_point(0) == nominal

    def test_over_budget_skips_are_counted(self, hv):
        """Over-budget margins increment ``hypervisor.margin_skips``
        instead of vanishing silently."""
        nominal = hv.platform.chip.spec.nominal
        vector = MarginVector(
            timestamp=0.0, node="n",
            margins=(margin("core0", nominal.with_voltage(0.75),
                            pfail=0.5),
                     margin("core1", nominal.with_voltage(0.75),
                            pfail=0.2)),
        )
        hv.apply_margins(vector)
        assert hv.metrics.counter("hypervisor.margin_skips") == 2.0

    def test_domain_margin_relaxes_refresh(self, hv):
        nominal = hv.platform.chip.spec.nominal
        vector = MarginVector(
            timestamp=0.0, node="n",
            margins=(margin("channel1", nominal.with_refresh(1.5)),),
        )
        changed = hv.apply_margins(vector)
        assert changed == ["channel1"]
        assert hv.platform.memory.domain("channel1").refresh_interval_s \
            == 1.5

    def test_domain_margin_publishes_config_change(self, hv):
        """Memory-domain refresh changes announce themselves on the bus
        exactly like core V-F changes do."""
        from repro.core.events import ConfigChangeEvent

        seen = []
        hv.bus.subscribe(ConfigChangeEvent, seen.append)
        nominal = hv.platform.chip.spec.nominal
        vector = MarginVector(
            timestamp=0.0, node="n",
            margins=(margin("channel1", nominal.with_refresh(1.5)),),
        )
        hv.apply_margins(vector)
        assert [e.component for e in seen] == ["channel1"]
        assert "refresh" in seen[0].old_point
        assert "refresh" in seen[0].new_point

    def test_margin_preserves_core_refresh_field(self, hv):
        nominal = hv.platform.chip.spec.nominal
        vector = MarginVector(
            timestamp=0.0, node="n",
            margins=(margin("core1",
                            nominal.with_voltage(0.9).with_refresh(5.0)),),
        )
        hv.apply_margins(vector)
        assert hv.platform.core_point(1).refresh_interval_s == \
            NOMINAL_REFRESH_INTERVAL_S


class TestExecution:
    def test_vms_make_progress(self, hv):
        vm = VirtualMachine(name="vm0",
                            workload=spec_workload("mcf",
                                                   duration_cycles=1e11))
        hv.create_vm(vm)
        for _ in range(10):
            hv.tick()
        assert vm.executed_cycles > 0
        assert hv.stats.energy_j > 0

    def test_vm_completes(self, hv):
        vm = VirtualMachine(name="vm0",
                            workload=spec_workload("mcf",
                                                   duration_cycles=1e9))
        hv.create_vm(vm)
        hv.tick()
        assert vm.state is VMState.COMPLETED

    def test_masking_restarts_crashed_vms(self):
        """At a recklessly deep point every run crashes; masking keeps
        the VM population alive via restarts."""
        clock = SimClock()
        platform = build_uniserver_node()
        hv = Hypervisor(platform, clock, seed=1)
        hv.boot()
        deep = platform.chip.spec.nominal.with_voltage(0.6)
        platform.set_all_core_points(deep)
        vm = VirtualMachine(name="vm0", workload=spec_workload("zeusmp"))
        hv.create_vm(vm)
        for _ in range(5):
            hv.tick()
        assert hv.stats.vm_crashes_masked > 0
        assert vm.state is VMState.RUNNING
        assert vm.restarts > 0

    def test_no_restart_when_masking_disabled(self):
        clock = SimClock()
        platform = build_uniserver_node()
        hv = Hypervisor(platform, clock,
                        config=HypervisorConfig(restart_failed_vms=False),
                        seed=1)
        hv.boot()
        platform.set_all_core_points(
            platform.chip.spec.nominal.with_voltage(0.6))
        vm = VirtualMachine(name="vm0", workload=spec_workload("zeusmp"))
        hv.create_vm(vm)
        for _ in range(20):
            hv.tick()
        assert vm.state is VMState.FAILED

    def test_memory_sampled_each_tick(self, hv):
        for vm in make_vm_fleet(ldbc_workload(), 2):
            hv.create_vm(vm)
        for _ in range(5):
            hv.tick()
        assert len(hv.accountant.samples) == 5


class TestDramErrorHandling:
    def _relaxed_hv(self, interval_s, use_reliable=True, seed=0):
        clock = SimClock()
        platform = build_uniserver_node()
        config = HypervisorConfig(use_reliable_domain=use_reliable)
        hv = Hypervisor(platform, clock, config=config, seed=seed)
        hv.boot()
        platform.memory.relax_all(interval_s,
                                  keep_reliable_nominal=use_reliable)
        return hv

    def test_moderate_relaxation_is_quiet(self):
        hv = self._relaxed_hv(1.5)
        for vm in make_vm_fleet(ldbc_workload(), 2):
            hv.create_vm(vm)
        for _ in range(50):
            hv.tick()
        assert hv.stats.host_crashes == 0

    def test_extreme_relaxation_with_reliable_domain_hits_vms_not_host(self):
        hv = self._relaxed_hv(40.0, use_reliable=True, seed=3)
        for vm in make_vm_fleet(ldbc_workload(scale_factor=8.0), 3):
            hv.create_vm(vm)
        for _ in range(200):
            hv.tick()
        assert hv.stats.vm_sdc_events > 0
        assert hv.stats.host_crashes == 0

    def test_extreme_relaxation_without_reliable_domain_crashes_host(self):
        hv = self._relaxed_hv(40.0, use_reliable=False, seed=3)
        for vm in make_vm_fleet(ldbc_workload(scale_factor=8.0), 3):
            hv.create_vm(vm)
        for _ in range(400):
            hv.tick()
            if hv.crashed:
                break
        assert hv.stats.host_crashes > 0

    def test_reboot_recovers_host(self):
        hv = self._relaxed_hv(40.0, use_reliable=False, seed=3)
        for vm in make_vm_fleet(ldbc_workload(scale_factor=8.0), 3):
            hv.create_vm(vm)
        for _ in range(400):
            hv.tick()
            if hv.crashed:
                break
        assert hv.crashed
        hv.reboot()
        assert not hv.crashed
        assert all(vm.state is VMState.RUNNING for vm in hv.vms)
