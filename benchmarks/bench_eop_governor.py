"""Bench — closed-loop EOP governor vs one-shot margin adoption.

The acceptance bar for ``repro.eop``: under a deterministic
error-injecting campaign the supervising governor must demote every
breaching component within a bounded number of ticks, while an
identically-seeded one-shot arm (adopt once, never supervise) sails on
at the breaching operating points.  Demoting must not cost the farm:
the governed arm has to retain at least 80% of the energy saving a
clean (error-free) run of the same policy achieves.

Determinism is part of the bar: two same-seed runs must reduce to
byte-identical canonical-JSON reports, and a campaign snapshotted
mid-run and resumed must land on the governor state table of the
uninterrupted run.

Scale knobs from the environment:

``EOP_BENCH_DURATION``  campaign seconds (default 1800)
``EOP_BENCH_SMOKE``     set to 1 for the short CI profile (600 s)
"""

import os

from conftest import run_once

from repro.analysis import render_table
from repro.eop import (
    EOPCampaignConfig,
    ErrorInjection,
    resume_eop_campaign,
    run_eop_campaign,
)
from repro.persistence import canonical_json

SMOKE = os.environ.get("EOP_BENCH_SMOKE", "") == "1"
DURATION_S = (600.0 if SMOKE else
              float(os.environ.get("EOP_BENCH_DURATION", "1800")))
STEP_S = 30.0
SEED = 3
N_VMS = 2 if SMOKE else 4

#: Two storms, one per component kind, both hot enough to blow the
#: ten-errors-in-300-s HealthLog threshold within a single step.
INJECTIONS = (
    ErrorInjection("core2", start_s=120.0, duration_s=120.0,
                   rate_per_s=0.5),
    ErrorInjection("channel2", start_s=300.0, duration_s=120.0,
                   rate_per_s=0.5),
)

#: Demotion must land within one supervision step of the breach.
MAX_DEMOTION_DELAY_S = 2 * STEP_S

#: Governed arm keeps at least this much of the clean-run saving.
MIN_SAVING_RETENTION = 0.8


def _config(policy, injections=INJECTIONS):
    return EOPCampaignConfig(
        duration_s=DURATION_S, step_s=STEP_S, seed=SEED,
        policy=policy, n_vms=N_VMS, injections=injections)


def _rows(result):
    return [[row["component"], row["kind"], row["state"],
             row["demotions"]] for row in result.state_table]


def test_governor_demotes_breaching_components(benchmark, emit):
    governed = run_once(
        benchmark, lambda: run_eop_campaign(_config("adopt-within-budget")))
    one_shot = run_eop_campaign(_config("one-shot"))
    clean = run_eop_campaign(_config("adopt-within-budget",
                                     injections=()))

    # Every injected component demoted, within the bounded window.
    for injection in INJECTIONS:
        delay = governed.demotion_delay_s.get(injection.component)
        assert delay is not None, \
            f"{injection.component} breached but was never demoted"
        assert delay <= MAX_DEMOTION_DELAY_S
    assert governed.demotions >= len(INJECTIONS)

    # The one-shot arm adopts identically but never reacts.
    assert one_shot.adopted == governed.adopted
    assert one_shot.demotions == 0
    assert one_shot.state_counts["demoted"] == 0

    # Rolling back the breaching components keeps most of the saving.
    assert clean.demotions == 0
    assert governed.energy_saving_fraction >= \
        MIN_SAVING_RETENTION * clean.energy_saving_fraction

    emit("eop_governor", "\n".join([
        governed.describe(), "", one_shot.describe(), "",
        f"clean-run saving: {clean.energy_saving_fraction:.4f} "
        f"(retention bar {MIN_SAVING_RETENTION:.0%})", "",
        render_table(
            "governed arm: final state table",
            ["component", "kind", "state", "demotions"],
            _rows(governed)),
    ]))


def test_same_seed_runs_are_byte_identical():
    first = run_eop_campaign(_config("adopt-within-budget"))
    second = run_eop_campaign(_config("adopt-within-budget"))
    assert canonical_json(first.as_dict()) == \
        canonical_json(second.as_dict())


def test_snapshot_resume_reproduces_state_table():
    config = _config("adopt-within-budget")
    full = run_eop_campaign(config, snapshot_at_s=DURATION_S / 2)
    assert full.snapshot is not None
    resumed = resume_eop_campaign(config, full.snapshot)
    assert resumed.state_table == full.state_table
    assert resumed.state_counts == full.state_counts
    assert resumed.demotions == full.demotions
    assert resumed.energy_saving_fraction == full.energy_saving_fraction
