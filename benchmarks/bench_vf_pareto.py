"""Bench A6 — V-F exploration: the per-core energy/performance Pareto menu.

The paper's EOPs are three-dimensional (V-F-R); Table 2 only sweeps
voltage.  This bench explores the full V-F plane of the ARM SoC's
heterogeneous cores, extracts the chip-level Pareto front, and shows the
two consequences the stack exploits:

* per-core heterogeneity puts the *strong* cores' points on the front —
  cross-core domination is exactly what EOP-aware affinity schedules on;
* SLA performance floors map directly to Pareto queries.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.characterization.vf_exploration import (
    VFExplorer,
    pareto_front,
    point_for_performance,
)
from repro.hardware import ChipModel, arm_server_soc_spec

FRACTIONS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


def test_vf_pareto_front(benchmark, emit):
    chip = ChipModel(arm_server_soc_spec(), seed=1)

    def explore():
        explorer = VFExplorer(chip)
        points = explorer.explore_chip(frequency_fractions=FRACTIONS)
        return points, pareto_front(points)

    points, front = run_once(benchmark, explore)

    rows = [
        [f"core{p.core_id}",
         f"{p.relative_performance * 100:.0f}%",
         f"{p.point.voltage_v:.3f} V",
         f"{p.relative_energy * 100:.0f}%",
         f"{p.relative_power * 100:.0f}%"]
        for p in front
    ]
    table = render_table(
        "A6: chip-level V-F Pareto front (ARM SoC, all cores explored)",
        ["winning core", "performance", "voltage", "rel. energy",
         "rel. power"],
        rows,
    )

    floors = [0.95, 0.8, 0.6, 0.5]
    sla_rows = []
    for floor in floors:
        chosen = point_for_performance(front, floor)
        sla_rows.append([
            f">= {floor * 100:.0f}%",
            f"core{chosen.core_id}",
            chosen.point.describe(),
            f"{(1 - chosen.relative_energy) * 100:.0f}%",
        ])
    sla_table = render_table(
        "SLA performance floors resolved against the front",
        ["performance floor", "core", "operating point",
         "energy saving"],
        sla_rows,
    )
    emit("vf_pareto", table + "\n\n" + sla_table)

    # Cross-core domination prunes the all-points set.
    assert len(front) < len(points)
    # The front is anchored by the strongest cores.
    deltas = chip.spec.core_deltas_v
    strongest = deltas.index(min(deltas))
    assert any(p.core_id == strongest for p in front)
    # Deeper floors buy monotonically more energy saving.
    savings = [1 - point_for_performance(front, f).relative_energy
               for f in floors]
    assert savings == sorted(savings)
