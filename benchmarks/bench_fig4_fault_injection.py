"""Bench F4 — paper Figure 4: hypervisor fatal failures per object category.

SDC injection into all 16 820 statically allocated hypervisor objects,
5 independent executions each, with and without VM load.  Paper shape:
fs/kernel/mm/net cluster as the sensitive categories, the loaded
campaign shows an order of magnitude more fatal failures (left axis to
~3 500 vs right axis to ~250), and the sensitive set is load-invariant.
"""

from conftest import run_once

from repro.analysis import render_bar_chart, render_table
from repro.hypervisor import run_figure4_campaign


def test_fig4_fault_injection(benchmark, emit):
    result = run_once(benchmark, lambda: run_figure4_campaign(seed=7))

    categories = [row.category for row in result.rows]
    loaded = [float(row.failures_loaded) for row in result.rows]
    unloaded = [float(row.failures_unloaded) for row in result.rows]

    chart_loaded = render_bar_chart(
        "Figure 4 (left axis): fatal failures WITH workload",
        categories, loaded,
    )
    chart_unloaded = render_bar_chart(
        "Figure 4 (right axis): fatal failures WITHOUT workload",
        categories, unloaded,
    )
    summary = render_table(
        "Campaign summary",
        ["metric", "value"],
        [
            ["objects injected", result.loaded_report.total_injections // 5],
            ["executions per object", 5],
            ["total fatal (loaded)", result.loaded_report.total_fatal],
            ["total fatal (unloaded)", result.unloaded_report.total_fatal],
            ["load amplification",
             f"{result.load_amplification():.1f}x (paper: ~an order of "
             "magnitude)"],
            ["most sensitive categories",
             ", ".join(result.sensitive_categories(4))],
            ["sensitivity load-invariant",
             "yes" if result.sensitivity_is_load_invariant(4) else "no"],
        ],
    )
    emit("fig4_fault_injection",
         chart_loaded + "\n\n" + chart_unloaded + "\n\n" + summary)

    assert 5.0 < result.load_amplification() < 30.0
    assert set(result.sensitive_categories(4)) == \
        {"fs", "kernel", "mm", "net"}
    assert result.sensitivity_is_load_invariant(4)
