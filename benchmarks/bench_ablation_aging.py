"""Bench A5 — ablation: periodic re-characterisation vs frozen margins.

Section 3.D motivates the StressLog's 2–3 month cadence with aging: the
safe V-F-R values "may need to be updated several times over the
lifetime of a server".  This bench runs two identical nodes through five
accelerated years at 65 °C: one re-characterises quarterly, the other
freezes its deployment-time margins.  BTI drift eats the frozen node's
guard band; the quarterly node retreats its margins and stays safe at a
small energy cost.
"""

from conftest import run_once

from repro.analysis import render_series, render_table
from repro.core.lifetime import LifetimeSimulator

YEARS = 5.0
EPOCH_MONTHS = 6.0


def test_ablation_aging_recharacterization(benchmark, emit):
    def both():
        periodic = LifetimeSimulator(
            recharacterize_every_months=3.0, seed=4,
        ).run(years=YEARS, epoch_months=EPOCH_MONTHS)
        frozen = LifetimeSimulator(
            recharacterize_every_months=None, seed=4,
        ).run(years=YEARS, epoch_months=EPOCH_MONTHS)
        return periodic, frozen

    periodic, frozen = run_once(benchmark, both)

    series = render_series(
        "A5: margin headroom above the stress-suite crash point over "
        "5 years (quarterly re-characterisation vs frozen margins)",
        "age (y)", "headroom mV (periodic | frozen)",
        [
            (p.age_years,
             f"{p.mean_margin_headroom_mv:6.1f} | "
             f"{f.mean_margin_headroom_mv:6.1f}")
            for p, f in zip(periodic.epochs, frozen.epochs)
        ],
        fmt_y="{}",
    )

    frozen_unsafe = frozen.first_unsafe_epoch(0.01)
    table = render_table(
        "End-of-life comparison (65 C, undervolted operation)",
        ["metric", "quarterly re-char", "frozen margins"],
        [
            ["Vmin drift after 5 y",
             f"{periodic.final().mean_vmin_drift_mv:.1f} mV",
             f"{frozen.final().mean_vmin_drift_mv:.1f} mV"],
            ["margin headroom at 5 y",
             f"{periodic.final().mean_margin_headroom_mv:.1f} mV",
             f"{frozen.final().mean_margin_headroom_mv:.1f} mV"],
            ["crash rate at 5 y",
             f"{periodic.final().crash_rate * 100:.1f}%",
             f"{frozen.final().crash_rate * 100:.1f}%"],
            ["first unsafe age", "never",
             f"{frozen_unsafe.age_years:.1f} y" if frozen_unsafe
             else "never"],
            ["mean relative power at 5 y",
             f"{periodic.final().mean_relative_power:.3f}",
             f"{frozen.final().mean_relative_power:.3f}"],
            ["StressLog cycles",
             periodic.total_recharacterizations(),
             frozen.total_recharacterizations()],
        ],
    )
    emit("ablation_aging", series + "\n\n" + table)

    assert periodic.first_unsafe_epoch(0.01) is None
    assert frozen_unsafe is not None
    assert periodic.final().mean_margin_headroom_mv > \
        frozen.final().mean_margin_headroom_mv
