"""Bench F2 — paper Figure 2: the cross-layer ecosystem in action.

Figure 2 is the architecture diagram; its executable equivalent is one
full information-vector round trip: StressLog characterises → Hypervisor
adopts EOPs → VMs run → HealthLog logs → Predictor trains and advises.
The bench drives that loop on a full UniServerNode and renders the flow
plus the resulting node-level energy saving.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core import UniServerNode
from repro.hypervisor import make_vm_fleet
from repro.workloads import spec_workload


def test_fig2_cross_layer_loop(benchmark, emit):
    def full_loop():
        node = UniServerNode(seed=3)
        margins = node.pre_deploy()
        changed = node.deploy()
        node.train_predictor()
        vms = make_vm_fleet(
            spec_workload("hmmer", duration_cycles=5e10), 4)
        for vm in vms:
            node.launch_vm(vm)
        node.run(60.0)
        advice = node.predictor.advise(
            spec_workload("mcf"), mode="high-performance",
            failure_budget=1e-3)
        return node, margins, changed, advice

    node, margins, changed, advice = run_once(benchmark, full_loop)
    report = node.energy_report()
    snapshot = node.snapshot()

    rows = [
        ["1. StressLog characterised components", len(margins.margins)],
        ["2. Hypervisor adopted EOPs (within budget)", len(changed)],
        ["3. VMs executed without host crash",
         "yes" if not node.hypervisor.crashed else "no"],
        ["4. HealthLog info-vector errors (ce/ue/crash)",
         f"{snapshot.correctable_errors}/{snapshot.uncorrectable_errors}"
         f"/{snapshot.crashes}"],
        ["5. Predictor advice for mcf (high-performance)",
         advice.point.describe()],
        ["   predicted failure probability",
         f"{advice.predicted_failure_probability:.2e}"],
        ["node power at nominal", f"{report.nominal_power_w:.1f} W"],
        ["node power at EOP", f"{report.eop_power_w:.1f} W"],
        ["node-level energy saving",
         f"{report.saving_fraction * 100:.1f}%"],
    ]
    emit("fig2_ecosystem", render_table(
        "Figure 2 (executable): one cross-layer monitor/predict/"
        "configure/execute loop", ["stage", "outcome"], rows))

    assert len(changed) > 0
    assert report.saving_fraction > 0.10
    assert not node.hypervisor.crashed
