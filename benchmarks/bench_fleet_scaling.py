"""Bench — vectorized fleet stepping vs. the naive per-node loop.

The acceptance bar for ``repro.fleet``: stepping a 1000-node fleet
through the numpy batch models must deliver at least 10x the step
throughput of the naive per-object loop (the same kernels applied one
node at a time, the vector twin of the scalar object stack) — while
changing *nothing*: the final fleet state must match the naive loop
bit-for-bit, and a small campaign must produce byte-identical reports
across the scalar stepper, the vectorized single shard, and a
multi-shard multi-process run of the ``repro fleet`` CLI.

``PYTHONHASHSEED`` is pinned for the CLI arms: cross-process report
equivalence is per-interpreter-configuration (exactly as the sweep and
kill/resume benches pin it).

Scale knobs from the environment:

``FLEET_BENCH_NODES``        fleet size                (default 1000)
``FLEET_BENCH_STEPS``        steps per timing arm      (default 40)
``FLEET_BENCH_MIN_SPEEDUP``  throughput floor          (default 10)
``FLEET_BENCH_CLI_NODES``    CLI identity fleet size   (default 16)
"""

import os
import pathlib
import subprocess
import sys
import time

import numpy as np
from conftest import run_once

NODES = int(os.environ.get("FLEET_BENCH_NODES", "1000"))
STEPS = int(os.environ.get("FLEET_BENCH_STEPS", "40"))
MIN_SPEEDUP = float(os.environ.get("FLEET_BENCH_MIN_SPEEDUP", "10"))
CLI_NODES = int(os.environ.get("FLEET_BENCH_CLI_NODES", "16"))
CLI_DURATION_S = 1800.0

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "0"
    return env


def _fleet_argv(report_path, **options):
    argv = [sys.executable, "-m", "repro", "fleet",
            "--nodes", str(CLI_NODES),
            "--duration", str(CLI_DURATION_S),
            "--report-json", str(report_path)]
    for flag, value in options.items():
        argv.extend([f"--{flag}", str(value)])
    return argv


def _utilization_schedule(config, rng):
    """A reproducible load pattern exercising every power regime."""
    return rng.integers(0, config.vcpus_per_node + 1,
                        size=(STEPS, config.n_nodes)).astype(np.int64)


def _time_stepper(state, vectors, used, scalar):
    start = time.perf_counter()
    for t in range(STEPS):
        state.used_vcpus[:] = used[t]
        if scalar:
            for index in range(state.n):
                vectors.step_node(state, index, t)
        else:
            vectors.step(state, t)
    return time.perf_counter() - start


def test_vector_stepping_is_10x_and_bit_identical(
        benchmark, emit, tmp_path):
    from repro.fleet import FleetConfig, FleetVectors, build_fleet_state
    from repro.fleet.state import DYNAMIC_FIELDS

    config = FleetConfig(n_nodes=NODES, seed=0)
    vectors = FleetVectors(config)
    used = _utilization_schedule(config, np.random.default_rng(1234))

    def harness():
        naive_state = build_fleet_state(config)
        vector_state = build_fleet_state(config)
        naive_s = _time_stepper(naive_state, vectors, used, scalar=True)
        vector_s = _time_stepper(vector_state, vectors, used,
                                 scalar=False)
        return naive_state, vector_state, naive_s, vector_s

    naive_state, vector_state, naive_s, vector_s = \
        run_once(benchmark, harness)

    identical = all(
        np.array_equal(getattr(naive_state, name),
                       getattr(vector_state, name))
        for name, _ in DYNAMIC_FIELDS)
    speedup = naive_s / vector_s
    naive_rate = NODES * STEPS / naive_s
    vector_rate = NODES * STEPS / vector_s

    # CLI identity arms: scalar stepper, vector single-shard, and a
    # sharded multi-process run must write byte-identical reports.
    report_scalar = tmp_path / "fleet-scalar.json"
    report_vector = tmp_path / "fleet-vector.json"
    report_sharded = tmp_path / "fleet-sharded.json"
    for path, options in (
            (report_scalar, {"stepper": "scalar"}),
            (report_vector, {}),
            (report_sharded, {"shards": 4, "jobs": 2})):
        subprocess.run(_fleet_argv(path, **options), check=True,
                       env=_env(), cwd=_REPO_ROOT,
                       stdout=subprocess.DEVNULL, timeout=600)
    scalar_bytes = report_scalar.read_bytes()
    cli_identical = (scalar_bytes == report_vector.read_bytes()
                     and scalar_bytes == report_sharded.read_bytes())

    emit("fleet_scaling", "\n".join([
        f"fleet stepping: {NODES} nodes x {STEPS} steps",
        f"naive per-node loop: {naive_s:8.3f} s "
        f"({naive_rate:10.0f} node-steps/s)",
        f"vectorized shard:    {vector_s:8.3f} s "
        f"({vector_rate:10.0f} node-steps/s)",
        f"speedup: {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)",
        f"final state bit-identical: {identical}",
        f"CLI reports byte-identical "
        f"(scalar/vector/shards=4 jobs=2, {CLI_NODES} nodes): "
        f"{cli_identical}",
    ]))

    assert identical, (
        "vectorized stepping diverged from the per-node loop")
    assert cli_identical, (
        "fleet campaign report depends on stepper/shards/jobs")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized stepping only {speedup:.1f}x faster than the "
        f"naive loop at {NODES} nodes (floor {MIN_SPEEDUP:.0f}x)")
