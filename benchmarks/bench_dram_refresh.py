"""Bench S6B — paper Section 6.B: DRAM refresh-relaxation characterisation.

Regenerates the refresh sweep on an 8 GB DDR3 domain with random
patterns and a reliable kernel domain: observed errors, cumulative BER,
and refresh power per interval — plus the refresh share of device power
vs density (9 % at 2 Gb, >34 % at 32 Gb).

Paper anchors: error-free up to 1.5 s; at 5 s (78× nominal) BER ≈ 1e-9,
within commercial targets and three orders below SECDED's 1e-6.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.characterization import (
    RefreshRelaxationCampaign,
    refresh_share_vs_density,
)
from repro.hardware import standard_server_memory, tiered_server_memory
from repro.hardware.ecc import SECDED_BER_CAPABILITY


def test_dram_refresh_relaxation(benchmark, emit):
    def campaign():
        memory = standard_server_memory(seed=5)
        return RefreshRelaxationCampaign(memory, "channel1").run()

    result = run_once(benchmark, campaign)

    rows = []
    for step in result.steps:
        rows.append([
            f"{step.refresh_interval_s * 1e3:.0f} ms",
            f"{step.relaxation_factor:.1f}x",
            step.observed_errors,
            f"{step.cumulative_ber:.2e}",
            f"{step.refresh_power_w:.3f} W",
            "yes" if step.within_secded_capability else "NO",
        ])
    table = render_table(
        "Section 6.B: refresh relaxation on an 8 GB DDR3 domain "
        "(random patterns, reliable kernel domain at 64 ms, 45 C)",
        ["interval", "vs nominal", "errors", "cumulative BER",
         "refresh power", "within SECDED 1e-6"],
        rows,
    )

    headline = render_table(
        "Headline numbers",
        ["metric", "value"],
        [
            ["max error-free interval",
             f"{result.max_error_free_interval_s():.1f} s (paper: 1.5 s)"],
            ["BER at 5 s",
             f"{result.step_at(5.0).cumulative_ber:.2e} (paper: ~1e-9)"],
            ["SECDED capability", f"{SECDED_BER_CAPABILITY:.0e}"],
            ["refresh power saving at 1.5 s",
             f"{result.refresh_power_saving_fraction(1.5) * 100:.1f}%"],
            ["refresh power saving at 5 s",
             f"{result.refresh_power_saving_fraction(5.0) * 100:.1f}%"],
        ],
    )
    emit("dram_refresh", table + "\n\n" + headline)

    assert result.max_error_free_interval_s() >= 1.5
    assert 1e-10 < result.step_at(5.0).cumulative_ber < 3e-9


def test_refresh_share_vs_density(benchmark, emit):
    rows_data = run_once(benchmark, refresh_share_vs_density)
    table = render_table(
        "Refresh share of DRAM device power vs density "
        "(paper: 9 % at 2 Gb, >34 % at 32 Gb)",
        ["density", "refresh share @64 ms", "refresh share @1.5 s"],
        [
            [f"{row.density_gbit:.0f} Gb",
             f"{row.refresh_share_nominal * 100:.1f}%",
             f"{row.refresh_share_relaxed * 100:.2f}%"]
            for row in rows_data
        ],
    )
    emit("dram_refresh_share", table)

    by_density = {row.density_gbit: row for row in rows_data}
    assert abs(by_density[2.0].refresh_share_nominal - 0.09) < 0.01
    assert by_density[32.0].refresh_share_nominal >= 0.34


def test_tiered_refresh_breakdown(benchmark, emit):
    """Per-tier refresh power of the HRM layout vs the uniform baseline."""

    def build():
        tiered = tiered_server_memory(seed=5)
        uniform = standard_server_memory(seed=5)
        return tiered, uniform

    tiered, uniform = run_once(benchmark, build)

    rows = []
    for tier in tiered.tiers():
        domains = tiered.domains_in_tier(tier)
        power = tiered.tier_refresh_power_w()[tier]
        rows.append([
            tier,
            ", ".join(d.name for d in domains),
            f"{domains[0].refresh_interval_s * 1e3:.0f} ms",
            domains[0].ecc.name,
            f"{tiered.tier_capacity_gb()[tier]:.0f} GB",
            f"{power:.3f} W",
            f"{max(d.ber() for d in domains):.2e}",
        ])
    table = render_table(
        "Per-tier refresh breakdown of the HRM layout (45 C)",
        ["tier", "domains", "refresh", "ECC", "capacity",
         "refresh power", "worst BER"],
        rows,
    )
    saving = 1.0 - tiered.refresh_power_w() / uniform.refresh_power_w()
    headline = render_table(
        "Tiered vs uniform-nominal refresh power",
        ["metric", "value"],
        [
            ["uniform (all nominal)", f"{uniform.refresh_power_w():.3f} W"],
            ["tiered", f"{tiered.refresh_power_w():.3f} W"],
            ["saving", f"{saving * 100:.1f}%"],
        ],
    )
    emit("dram_refresh_tiers", table + "\n\n" + headline)

    power = tiered.tier_refresh_power_w()
    # Refresh power per DIMM falls strictly down the tiers; the whole
    # tiered system undercuts the uniform-nominal baseline.
    assert power["strong"] > power["normal"] > power["relaxed"] / 2
    assert tiered.refresh_power_w() < uniform.refresh_power_w()
    assert saving > 0.5
