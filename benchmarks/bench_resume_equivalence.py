"""Bench — kill/resume equivalence of the crash-safe campaign runtime.

The acceptance bar for ``repro.persistence``: a chaos campaign that is
SIGKILLed at a random step and resumed from its durable snapshots must
finish with **bit-identical** headline numbers and cross-layer metrics
to an uninterrupted run of the same config.

Two arms, both run as subprocesses of the ``repro chaos`` CLI (so the
kill is a real process death, not a simulated one):

* **arm A** — uninterrupted, no persistence, writes its canonical-JSON
  report;
* **arm B** — snapshotting into a temp directory, SIGKILLed once a
  snapshot generation exists, then ``--resume``d to completion and its
  report compared byte-for-byte against arm A's.

``PYTHONHASHSEED`` is pinned for both arms: the VM application-trace
seeds hash VM names, so equivalence is per-interpreter-configuration.

Scale knobs from the environment:

``RESUME_BENCH_NODES``     rack size          (default 3)
``RESUME_BENCH_DURATION``  campaign seconds   (default 1800)
``RESUME_BENCH_KEEP_DIR``  persist the snapshot directory here instead
                           of the test's temp dir (CI uploads it as an
                           artifact when the equivalence check fails)
"""

import os
import pathlib
import shutil
import subprocess
import sys
import time

from conftest import run_once

NODES = int(os.environ.get("RESUME_BENCH_NODES", "3"))
DURATION_S = float(os.environ.get("RESUME_BENCH_DURATION", "1800"))
SEED = 1
RATE_PER_HOUR = 20.0
INTENSITY = 0.8
SNAPSHOT_EVERY_S = 300.0

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _chaos_argv(*extra):
    return [
        sys.executable, "-m", "repro", "--seed", str(SEED), "chaos",
        "--nodes", str(NODES), "--duration", str(DURATION_S),
        "--rate", str(RATE_PER_HOUR), "--intensity", str(INTENSITY),
        "--snapshot-every", str(SNAPSHOT_EVERY_S), *extra,
    ]


def _env():
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "0"
    return env


def _run_uninterrupted(report_path) -> None:
    subprocess.run(
        _chaos_argv("--policies", "on",
                    "--report-json", str(report_path)),
        check=True, env=_env(), cwd=_REPO_ROOT,
        stdout=subprocess.DEVNULL, timeout=600)


def _run_killed_then_resumed(snapshot_dir, report_path) -> bool:
    """SIGKILL one campaign mid-run, resume it; True if the kill
    actually interrupted the run (vs the campaign finishing first)."""
    process = subprocess.Popen(
        _chaos_argv("--policies", "on", "--snapshot-dir",
                    str(snapshot_dir)),
        env=_env(), cwd=_REPO_ROOT, stdout=subprocess.DEVNULL)
    try:
        # Wait for the first durable generation, then let the campaign
        # get a random distance into the run before the kill.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if list(pathlib.Path(snapshot_dir).glob("snapshot-*.json")):
                break
            if process.poll() is not None:
                break
            time.sleep(0.02)
        # Derive the kill delay from the PID: varies run to run without
        # perturbing the campaign's own (seeded) determinism.
        time.sleep(0.2 + (process.pid % 97) / 97.0)
        interrupted = process.poll() is None
        process.kill()
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    subprocess.run(
        _chaos_argv("--resume", "--snapshot-dir", str(snapshot_dir),
                    "--report-json", str(report_path)),
        check=True, env=_env(), cwd=_REPO_ROOT,
        stdout=subprocess.DEVNULL, timeout=600)
    return interrupted


def test_kill_resume_is_bit_identical(benchmark, emit, tmp_path):
    report_a = tmp_path / "uninterrupted.json"
    report_b = tmp_path / "killed-resumed.json"
    keep_dir = os.environ.get("RESUME_BENCH_KEEP_DIR", "")
    snapshot_dir = (_REPO_ROOT / keep_dir if keep_dir
                    else tmp_path / "snapshots")
    # Stale generations from an earlier run would trip the kill timing.
    shutil.rmtree(snapshot_dir, ignore_errors=True)

    def harness():
        _run_uninterrupted(report_a)
        interrupted = _run_killed_then_resumed(snapshot_dir, report_b)
        return interrupted, report_a.read_bytes(), report_b.read_bytes()

    interrupted, bytes_a, bytes_b = run_once(benchmark, harness)
    generations = sorted(
        p.name for p in snapshot_dir.glob("snapshot-*.json"))
    emit("resume_equivalence", "\n".join([
        f"kill/resume equivalence: {NODES} nodes, {DURATION_S:.0f} s, "
        f"seed {SEED}",
        f"campaign interrupted mid-run: {interrupted}",
        f"surviving snapshot generations: {', '.join(generations)}",
        f"uninterrupted report bytes: {len(bytes_a)}",
        f"resumed report identical:  {bytes_a == bytes_b}",
    ]))
    assert generations, "the killed arm never wrote a snapshot"
    # The headline: byte-identical canonical reports (headline numbers
    # AND the sha256 over the full cross-layer metrics snapshot).
    assert bytes_a == bytes_b
