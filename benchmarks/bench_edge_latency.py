"""Bench S6D — paper Section 6.D: edge processing inside a latency budget.

A 200 ms end-to-end IoT service spends ~half its budget on the network
round trip to the cloud; edge deployment reclaims that time and lets the
service run at 50 % frequency with 30 % less voltage — "50 % less energy
and 75 % less power".
"""

from conftest import run_once

from repro.analysis import render_table
from repro.tco import CLOUD, EDGE, EdgeServiceModel


def test_edge_latency_budget(benchmark, emit):
    result = run_once(benchmark, lambda: EdgeServiceModel().compare())

    cloud, edge = result["cloud"], result["edge"]
    table = render_table(
        "Section 6.D: 200 ms IoT service, cloud vs edge deployment",
        ["metric", "cloud", "edge"],
        [
            ["network RTT",
             f"{CLOUD.network_rtt_ms:.0f} ms", f"{EDGE.network_rtt_ms:.0f} ms"],
            ["compute budget",
             f"{cloud.compute_budget_ms:.0f} ms",
             f"{edge.compute_budget_ms:.0f} ms"],
            ["required frequency",
             f"{cloud.frequency_fraction * 100:.0f}% of peak",
             f"{edge.frequency_fraction * 100:.0f}% of peak"],
            ["required voltage",
             f"{cloud.voltage_fraction * 100:.0f}% of nominal",
             f"{edge.voltage_fraction * 100:.0f}% of nominal"],
            ["energy per request (vs peak)",
             f"{cloud.relative_energy * 100:.0f}%",
             f"{edge.relative_energy * 100:.0f}%"],
            ["power (vs peak)",
             f"{cloud.relative_power * 100:.0f}%",
             f"{edge.relative_power * 100:.0f}%"],
        ],
    )
    headline = render_table(
        "Edge savings (paper: ~50 % energy, ~75 % power at 50 % f, -30 % V)",
        ["metric", "value"],
        [
            ["edge energy saving vs peak",
             f"{edge.energy_saving * 100:.0f}%"],
            ["edge power saving vs peak",
             f"{edge.power_saving * 100:.0f}%"],
            ["edge energy saving vs cloud deployment",
             f"{result['energy_saving_vs_cloud'] * 100:.0f}%"],
            ["edge power saving vs cloud deployment",
             f"{result['power_saving_vs_cloud'] * 100:.0f}%"],
        ],
    )
    emit("edge_latency", table + "\n\n" + headline)

    assert edge.frequency_fraction <= 0.55
    assert abs(edge.voltage_fraction - 0.70) < 0.02
    assert abs(edge.energy_saving - 0.50) < 0.05
    assert abs(edge.power_saving - 0.75) < 0.05
