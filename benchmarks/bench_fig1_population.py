"""Bench F1 — paper Figure 1: each chip lies in a distinct performance bin.

Samples a 1 000-chip manufactured population, renders the worst-core
Vmin histogram (the figure), classical speed bins, the binning yield,
and the UniServer yield-recovery and margin-waste arguments of
Section 5.A.
"""

from conftest import run_once

from repro.analysis import render_histogram, render_table
from repro.characterization import run_population_study


def test_fig1_population_bins(benchmark, emit):
    study = run_once(
        benchmark,
        lambda: run_population_study(n_chips=1000, n_cores=8, seed=42),
    )

    counts, edges = study.vmin_factor_histogram(n_bins=12)
    histogram = render_histogram(
        "Figure 1: manufactured population by worst-core Vmin factor "
        "(1.0 = design nominal)",
        edges, list(counts),
    )

    bin_rows = [[name, count]
                for name, count in study.bin_counts().items()]
    spread_mean, spread_min, spread_max = study.core_spread_summary()
    summary = render_table(
        "Classical binning vs UniServer per-core characterisation",
        ["metric", "value"],
        bin_rows + [
            ["classical binning yield",
             f"{study.classical_yield() * 100:.1f}%"],
            ["discards recoverable with per-core EOPs",
             f"{study.recoverable_discard_fraction() * 100:.1f}%"],
            ["mean per-core margin wasted by worst-part nominal",
             f"{study.per_core_margin_waste() * 100:.2f}%"],
            ["within-chip core-to-core Vmin spread (mean/min/max)",
             f"{spread_mean * 100:.2f}% / {spread_min * 100:.2f}% / "
             f"{spread_max * 100:.2f}%"],
        ],
    )
    emit("fig1_population", histogram + "\n\n" + summary)

    assert counts.sum() == 1000
    assert study.classical_yield() < 1.0
    assert study.recoverable_discard_fraction() > 0.0
