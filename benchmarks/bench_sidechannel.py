"""Bench A10 — the telemetry side channel, attacked and mitigated.

Innovation (viii) promises threat analysis *with measured* low-cost
countermeasures.  This bench stages the catalog's telemetry side
channel end to end:

* a victim VM runs a bursty phased workload on a shared node;
* an attacker samples a power signal every tick and tries to recover
  the victim's burst schedule (1-D clustering, no labels);
* three telemetry surfaces are attacked: the raw per-core sensor (what
  an unprotected interface exposes), the exact node total (per-VM power
  still visible through subtraction of idle floor), and the guest-scope
  quantised bucket from
  :class:`~repro.core.interfaces.MonitoringInterface`.

The countermeasure's value is the accuracy drop from raw to quantised.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core.clock import SimClock
from repro.core.events import EventBus
from repro.core.interfaces import MonitoringInterface, Scope
from repro.daemons.healthlog import HealthLog
from repro.hardware import build_uniserver_node
from repro.hypervisor import Hypervisor, VirtualMachine
from repro.security.sidechannel import PhaseInferenceAttack
from repro.workloads import spec_workload
from repro.workloads.phases import burst_style_workload

TICKS = 300


def _run_attack():
    clock = SimClock()
    platform = build_uniserver_node()
    bus = EventBus()
    hypervisor = Hypervisor(platform, clock, bus=bus, seed=6)
    hypervisor.boot()
    healthlog = HealthLog(platform, bus, clock)
    interface = MonitoringInterface(platform, healthlog)

    victim_workload = burst_style_workload(
        duration_cycles=2e12, quiet_fraction=0.6, cycles=15)
    victim = VirtualMachine(name="victim", workload=victim_workload)
    hypervisor.create_vm(victim)
    # A steady co-tenant sharing the node (background confusion).
    hypervisor.create_vm(VirtualMachine(
        name="cotenant",
        workload=spec_workload("hmmer", duration_cycles=1e13)))

    raw_attack = PhaseInferenceAttack("raw per-core sensor")
    total_attack = PhaseInferenceAttack("exact node power")
    guest_attack = PhaseInferenceAttack("guest-scope quantised bucket")

    victim_core = hypervisor._assignments["victim"]
    nominal = platform.chip.spec.nominal
    for _ in range(TICKS):
        hypervisor.tick()
        clock.advance_by(1.0)
        profile = victim_workload.profile_at(victim.progress)
        truth = 1 if profile.droop_intensity > 0.4 else 0
        point = platform.core_point(victim_core)
        raw_power = platform.chip.power.total_power_w(
            point, activity=profile.activity_factor)
        raw_attack.observe(raw_power, truth)
        # Node-total signal: victim + co-tenant + memory.
        cotenant_power = platform.chip.power.total_power_w(
            nominal, activity=0.8)
        node_power = (raw_power + cotenant_power
                      + platform.memory.total_power_w())
        total_attack.observe(node_power, truth)
        # Guest telemetry driven by the true aggregate activity: the
        # countermeasure must hide a real, varying signal.
        aggregate_activity = min(1.0, (profile.activity_factor + 0.8) / 2)
        guest_attack.observe(
            interface.guest_telemetry(
                Scope.GUEST, activity=aggregate_activity).power_bucket_w,
            truth)
    return raw_attack.run(), total_attack.run(), guest_attack.run()


def test_sidechannel_attack_and_countermeasure(benchmark, emit):
    raw, total, guest = run_once(benchmark, _run_attack)

    table = render_table(
        "A10: recovering a victim's burst schedule from power telemetry "
        f"({TICKS} samples, label-invariant accuracy; 0.5 = chance)",
        ["telemetry surface", "accuracy", "signal spread", "effective"],
        [
            [raw.signal_name, f"{raw.accuracy:.3f}",
             f"{raw.signal_spread:.2f} W",
             "yes" if raw.effective else "no"],
            [total.signal_name, f"{total.accuracy:.3f}",
             f"{total.signal_spread:.2f} W",
             "yes" if total.effective else "no"],
            [guest.signal_name, f"{guest.accuracy:.3f}",
             f"{guest.signal_spread:.2f} W",
             "yes" if guest.effective else "no"],
        ],
    )
    emit("sidechannel", table)

    # The unprotected surfaces leak the schedule almost perfectly.
    assert raw.accuracy > 0.9
    assert total.accuracy > 0.9
    # Quantised guest telemetry degrades the attack substantially.
    assert guest.accuracy < raw.accuracy - 0.1
