"""Bench A2 — ablation: predictor-guided EOP vs static policies.

Compares four fleet-wide operating policies on the i7-3970X (the part
with the widest workload-dependent crash spread, −8.4 %…−15.4 %) across
the SPEC-like suite, evaluated over every core:

* **nominal** — conservative stock configuration;
* **static-worst** — one fleet-wide undervolt set by the single worst
  (core, workload) crash point: safe for everything, but workload-
  oblivious;
* **predictor** — the trained Predictor picks a per-workload point
  within the failure budget (pooled over cores, as a real daemon would);
* **oracle** — the true per-workload worst-core crash voltage plus the
  guard margin (the per-workload upper bound).

Reported: mean dynamic-power saving and realised crash rate.  The
predictor must recover most of the per-workload headroom the static
policy leaves on the table, without blowing the failure budget.
"""

import numpy as np
from conftest import run_once

from repro.analysis import render_table
from repro.characterization import UndervoltingCampaign
from repro.daemons import Predictor, dataset_from_campaign
from repro.daemons.predictor import LogisticModel
from repro.hardware import ChipModel, intel_i7_3970x_spec
from repro.workloads import spec_suite

FAILURE_BUDGET = 0.01
GUARD_V = 0.010
RUNS_PER_WORKLOAD_CORE = 40


def _evaluate_policy(chip, point_for_workload):
    """(mean relative power, realised crash rate) over suite × cores."""
    nominal = chip.spec.nominal
    powers, crashes, runs = [], 0, 0
    for workload in spec_suite():
        point = point_for_workload(workload)
        powers.append(chip.power.relative_dynamic_power(point, nominal))
        for core in chip.cores:
            for _ in range(RUNS_PER_WORKLOAD_CORE):
                runs += 1
                if not core.check_run(point, workload.profile):
                    crashes += 1
    return float(np.mean(powers)), crashes / runs


def test_ablation_predictor_vs_static(benchmark, emit):
    chip = ChipModel(intel_i7_3970x_spec(), seed=31)
    suite = spec_suite()
    nominal = chip.spec.nominal

    def build():
        campaign = UndervoltingCampaign(chip, suite).run()
        dataset = dataset_from_campaign(campaign, suite, nominal)
        predictor = Predictor(nominal, model=LogisticModel(
            learning_rate=2.0, epochs=5000, l2=1e-5))
        predictor.ingest(dataset)
        predictor.train()
        return predictor

    predictor = run_once(benchmark, build)

    def worst_core_crash_v(workload):
        return max(core.crash_voltage_v(workload.profile)
                   for core in chip.cores)

    fleet_worst = max(worst_core_crash_v(w) for w in suite)
    static_point = nominal.with_voltage(
        min(nominal.voltage_v, fleet_worst + GUARD_V))

    policies = {
        "nominal": lambda w: nominal,
        "static-worst": lambda w: static_point,
        "predictor": lambda w: predictor.advise(
            w, mode="high-performance",
            failure_budget=FAILURE_BUDGET).point,
        "oracle": lambda w: nominal.with_voltage(min(
            nominal.voltage_v, worst_core_crash_v(w) + GUARD_V)),
    }

    rows = []
    results = {}
    for name, policy in policies.items():
        power, crash_rate = _evaluate_policy(chip, policy)
        results[name] = (power, crash_rate)
        rows.append([
            name,
            f"{(1 - power) * 100:.1f}%",
            f"{crash_rate * 100:.2f}%",
        ])
    table = render_table(
        f"A2: per-workload operating policies on the i7-3970X "
        f"(failure budget {FAILURE_BUDGET * 100:.0f}% per run, "
        f"all cores)",
        ["policy", "mean dynamic-power saving", "realised crash rate"],
        rows,
    )
    emit("ablation_predictor", table)

    nominal_saving = 1 - results["nominal"][0]
    predictor_saving = 1 - results["predictor"][0]
    oracle_saving = 1 - results["oracle"][0]
    static_saving = 1 - results["static-worst"][0]

    assert nominal_saving == 0.0
    assert results["nominal"][1] == 0.0
    # The predictor recovers per-workload headroom the static policy
    # cannot see, and captures most of the oracle's saving.
    assert predictor_saving > static_saving
    assert predictor_saving > 0.7 * oracle_saving
    # ...without blowing through the failure budget (sampling slack x3).
    assert results["predictor"][1] <= FAILURE_BUDGET * 3
