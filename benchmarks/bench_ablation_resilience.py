"""Bench A3 — ablation: the error-resilience mechanisms, on vs off.

Two halves:

1. **Reliable memory domain** — run aggressive refresh relaxation with
   the hypervisor's critical state either pinned to a nominal-refresh
   domain (UniServer) or spread across relaxed memory (ablated).  The
   paper used exactly this isolation to "avoid any system crash that may
   occur under the various relaxed refresh rates" (Section 6.B).

2. **Selective checkpointing** — rerun the Figure 4 SDC campaign with
   the fs/kernel/mm/net checkpoints on, counting recovered corruptions
   and the residual fatal set, against full-coverage checkpointing's
   memory cost (why *selective* matters).
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core.clock import SimClock
from repro.hardware import build_uniserver_node
from repro.hypervisor import (
    CheckpointManager,
    FaultInjectionCampaign,
    Hypervisor,
    HypervisorConfig,
    ObjectCatalog,
    make_vm_fleet,
)
from repro.workloads import ldbc_workload

EXTREME_REFRESH_S = 40.0
TICKS = 300


def _run_relaxed(use_reliable_domain, seed=3):
    clock = SimClock()
    platform = build_uniserver_node()
    hypervisor = Hypervisor(
        platform, clock,
        config=HypervisorConfig(use_reliable_domain=use_reliable_domain),
        seed=seed,
    )
    hypervisor.boot()
    platform.memory.relax_all(
        EXTREME_REFRESH_S, keep_reliable_nominal=use_reliable_domain)
    for vm in make_vm_fleet(ldbc_workload(scale_factor=8.0), 3):
        hypervisor.create_vm(vm)
    for _ in range(TICKS):
        if hypervisor.crashed:
            hypervisor.reboot()
        hypervisor.tick()
        clock.advance_by(1.0)
    return hypervisor


def test_ablation_reliable_domain(benchmark, emit):
    def both():
        return (_run_relaxed(True), _run_relaxed(False))

    with_domain, without_domain = run_once(benchmark, both)

    rows = [
        ["host crashes", with_domain.stats.host_crashes,
         without_domain.stats.host_crashes],
        ["VM data corruptions (masked)", with_domain.stats.vm_sdc_events,
         without_domain.stats.vm_sdc_events],
        ["critical MB exposed to relaxed refresh",
         f"{with_domain.placement.critical_exposure_mb():.0f}",
         f"{without_domain.placement.critical_exposure_mb():.0f}"],
    ]
    table = render_table(
        f"A3a: reliable kernel domain on/off at an extreme "
        f"{EXTREME_REFRESH_S:.0f} s refresh ({TICKS} s of load)",
        ["metric", "reliable domain ON", "reliable domain OFF"],
        rows,
    )
    emit("ablation_reliable_domain", table)

    assert with_domain.stats.host_crashes == 0
    assert without_domain.stats.host_crashes > 0


def test_ablation_selective_checkpointing(benchmark, emit):
    catalog = ObjectCatalog(seed=11)

    def campaigns():
        runner = FaultInjectionCampaign(catalog=catalog, seed=11)
        unprotected = runner.run(loaded=True)
        selective = runner.run(
            loaded=True, checkpoints=CheckpointManager(catalog))
        full = runner.run(
            loaded=True,
            checkpoints=CheckpointManager(
                catalog, protected_categories=catalog.categories()))
        return unprotected, selective, full

    unprotected, selective, full = run_once(benchmark, campaigns)
    selective_manager = CheckpointManager(catalog)
    full_manager = CheckpointManager(
        catalog, protected_categories=catalog.categories())

    table = render_table(
        "A3b: selective checkpointing of fs/kernel/mm/net vs none vs "
        "everything (Figure 4 campaign, loaded)",
        ["metric", "none", "selective", "full"],
        [
            ["fatal failures", unprotected.total_fatal,
             selective.total_fatal, full.total_fatal],
            ["recovered corruptions", 0, selective.total_recovered,
             full.total_recovered],
            ["crucial objects covered", "0%",
             f"{selective_manager.coverage_fraction() * 100:.0f}%",
             f"{full_manager.coverage_fraction() * 100:.0f}%"],
            ["checkpoint memory overhead", "0 MB",
             f"{selective_manager.memory_overhead_mb():.0f} MB",
             f"{full_manager.memory_overhead_mb():.0f} MB"],
        ],
    )
    emit("ablation_checkpointing", table)

    assert selective.total_fatal < unprotected.total_fatal * 0.35
    assert full.total_fatal == 0
    # Selectivity: most of the protection at a fraction of the memory.
    assert selective_manager.memory_overhead_mb() < \
        0.7 * full_manager.memory_overhead_mb()
