"""Bench A9 — phase-aware margins vs average-profile margins.

Section 4.A: the best configuration "may dynamically change depending on
the workload".  A bursty service is the sharpest case: its *average*
stress profile looks benign, but a droop-heavy burst phase arrives
periodically.  This bench runs the same guest at three margin bases:

* **average-profile** — safe for the workload's mean profile (what a
  phase-oblivious characterisation would pick): crashes in every burst;
* **worst-phase** — safe for the burst phase: clean, still saves energy;
* **nominal** — the conservative baseline.

The gap between the first two is why StressLog margins must be set
against worst-case kernels (or worst phases), never against averages.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core.clock import SimClock
from repro.hardware import build_uniserver_node
from repro.hypervisor import Hypervisor, VirtualMachine
from repro.workloads.phases import burst_style_workload

TICKS = 400


def _run_at(margin_basis: str, seed: int = 2):
    clock = SimClock()
    platform = build_uniserver_node()
    hypervisor = Hypervisor(platform, clock, seed=seed)
    hypervisor.boot()
    workload = burst_style_workload(duration_cycles=2e12,
                                    quiet_fraction=0.7, cycles=20)
    core = platform.chip.core(0)
    nominal = platform.chip.spec.nominal
    if margin_basis == "average":
        voltage = core.crash_voltage_v(workload.profile) + 0.010
    elif margin_basis == "worst-phase":
        voltage = core.crash_voltage_v(
            workload.worst_phase().profile) + 0.010
    else:
        voltage = nominal.voltage_v
    point = nominal.with_voltage(min(nominal.voltage_v, voltage))
    platform.set_all_core_points(point)
    hypervisor.create_vm(VirtualMachine(name="bursty",
                                        workload=workload))
    for _ in range(TICKS):
        hypervisor.tick()
    relative_power = platform.chip.power.relative_dynamic_power(
        point, nominal)
    return hypervisor, point, relative_power


def test_phased_margin_bases(benchmark, emit):
    def all_three():
        return {basis: _run_at(basis)
                for basis in ("nominal", "average", "worst-phase")}

    results = run_once(benchmark, all_three)

    rows = []
    for basis, (hypervisor, point, relative_power) in results.items():
        vm = hypervisor.vm("bursty")
        rows.append([
            basis,
            f"{point.voltage_v:.3f} V",
            f"{(1 - relative_power) * 100:.1f}%",
            hypervisor.stats.vm_crashes_masked,
            f"{vm.progress * 100:.1f}%",
        ])
    table = render_table(
        f"A9: margin basis for a bursty guest (70% quiet / 30% burst, "
        f"{TICKS} s)",
        ["margin basis", "core voltage", "power saving",
         "crashes masked", "progress"],
        rows,
    )
    emit("phased_margins", table)

    nominal_hv = results["nominal"][0]
    average_hv = results["average"][0]
    worst_hv = results["worst-phase"][0]
    assert nominal_hv.stats.vm_crashes_masked == 0
    # Average-basis margins crash repeatedly once the burst phase hits.
    assert average_hv.stats.vm_crashes_masked > 5
    # Worst-phase margins are clean and still save energy.
    assert worst_hv.stats.vm_crashes_masked == 0
    assert results["worst-phase"][2] < 1.0
    # Crash-restart churn costs real progress.
    assert average_hv.vm("bursty").progress < \
        worst_hv.vm("bursty").progress
