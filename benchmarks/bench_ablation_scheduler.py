"""Bench A8 — scheduling policies under a live arrival stream.

Section 4.B: UniServer's reliability-aware scheduling must hold up in
"real-world scenarios where OpenStack would manage streams of incoming
and terminating VMs".  This bench drives a 6-node rack — two of its
nodes running degraded (deep undervolts) — with a 12-hour diurnal
arrival trace, comparing:

* the UniServer **filter/weigh** scheduler (reliability-aware), vs
* a **round-robin** baseline that only checks capacity.

The reliability-aware scheduler steers work away from the degraded
nodes, masking far fewer crashes and holding higher fleet availability
at the same admission rate.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.cloudmgr import CloudController, RoundRobinScheduler, build_rack
from repro.cloudmgr.simulation import TraceDrivenSimulation
from repro.core.clock import SimClock
from repro.eop import EOPPolicy
from repro.workloads.traces import TraceConfig, TraceGenerator

DURATION_S = 12 * 3600.0
N_NODES = 6
N_DEGRADED = 2


def _run(scheduler_factory, trace_seed=17):
    clock = SimClock()
    # Full UniServer nodes (Predictor + IsolationManager active),
    # deployed at nominal; degradation is applied by hand below.
    nodes = build_rack(N_NODES, clock=clock, seed=300,
                       characterize=True,
                       eop_policy=EOPPolicy.conservative())
    cloud = CloudController(clock, nodes, proactive_migration=False)
    if scheduler_factory is not None:
        cloud.scheduler = scheduler_factory()
        cloud.migrations.scheduler = cloud.scheduler
    # Two degraded nodes: margins deep enough to crash stressy guests
    # now and then, but not hopeless — the interesting regime.
    for node in nodes[:N_DEGRADED]:
        nominal = node.platform.chip.spec.nominal
        node.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.76))
    events = TraceGenerator(
        TraceConfig(base_rate_per_hour=10.0, mean_lifetime_s=3600.0),
        seed=trace_seed).generate(DURATION_S)
    simulation = TraceDrivenSimulation(cloud, events, step_s=120.0)
    stats = simulation.run(DURATION_S)
    return cloud, stats


def test_ablation_scheduler_policies(benchmark, emit):
    def both():
        smart = _run(None)                       # default FilterScheduler
        naive = _run(RoundRobinScheduler)
        return smart, naive

    (smart_cloud, smart_stats), (naive_cloud, naive_stats) = \
        run_once(benchmark, both)

    def crashes(cloud):
        return sum(n.hypervisor.stats.vm_crashes_masked
                   for n in cloud.node_list())

    def degraded_share(cloud):
        total = sum(
            max(1, len(cloud.telemetry.vm_history(vm)))
            for vm in cloud.tracker.tracked_vms()
        )
        on_degraded = 0
        for vm in cloud.tracker.tracked_vms():
            for sample in cloud.telemetry.vm_history(vm):
                if sample.node in [f"node{i}" for i in range(N_DEGRADED)]:
                    on_degraded += 1
        return on_degraded / total if total else 0.0

    table = render_table(
        f"A8: schedulers under a 12 h diurnal VM stream "
        f"({N_NODES} nodes, {N_DEGRADED} degraded)",
        ["metric", "filter/weigh (UniServer)", "round-robin"],
        [
            ["arrivals", smart_stats.arrivals, naive_stats.arrivals],
            ["admission rate",
             f"{smart_stats.admission_rate * 100:.1f}%",
             f"{naive_stats.admission_rate * 100:.1f}%"],
            ["VM time on degraded nodes",
             f"{degraded_share(smart_cloud) * 100:.1f}%",
             f"{degraded_share(naive_cloud) * 100:.1f}%"],
            ["VM crashes masked", crashes(smart_cloud),
             crashes(naive_cloud)],
            ["fleet availability",
             f"{smart_cloud.fleet_availability():.4f}",
             f"{naive_cloud.fleet_availability():.4f}"],
            ["SLA violations",
             smart_cloud.tracker.violations_total(),
             naive_cloud.tracker.violations_total()],
        ],
    )
    emit("ablation_scheduler", table)

    assert smart_stats.arrivals == naive_stats.arrivals
    assert degraded_share(smart_cloud) < degraded_share(naive_cloud)
    assert crashes(smart_cloud) < crashes(naive_cloud)
    assert smart_cloud.fleet_availability() >= \
        naive_cloud.fleet_availability()
