"""Bench T1 — paper Table 1: sources of variations and voltage guard-bands.

Regenerates the guard-band decomposition (droop ~20 %, Vmin ~15 %,
core-to-core ~5 %) and quantifies what the stacked conservative margin
costs against the per-component margins a UniServer characterisation
reveals on the same silicon.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core import SimClock
from repro.core.eop import GuardBandBreakdown
from repro.daemons import StressLog
from repro.hardware import build_uniserver_node


def test_table1_guardbands(benchmark, emit):
    def campaign():
        guard_bands = GuardBandBreakdown()
        platform = build_uniserver_node()
        stresslog = StressLog(platform, SimClock())
        margins = stresslog.characterize()
        return guard_bands, platform, margins

    guard_bands, platform, margins = run_once(benchmark, campaign)

    rows = [[reason, f"~{value * 100:.0f}%"]
            for reason, value in guard_bands.rows()]
    rows.append(["Total (stacked worst case)",
                 f"~{guard_bands.total() * 100:.0f}%"])
    table = render_table(
        "Table 1: Sources of variations and voltage guard-bands",
        ["Reasons for guard-bands", "Voltage Up-scaling"],
        rows,
    )

    nominal_v = platform.chip.spec.nominal.voltage_v
    core_margins = [m for m in margins.margins
                    if m.component.startswith("core")]
    revealed = [
        1.0 - m.safe_point.voltage_v / nominal_v for m in core_margins
    ]
    followup = render_table(
        "Revealed per-core margins vs the conservative stack "
        "(StressLog on the ARM SoC)",
        ["metric", "value"],
        [
            ["conservative stacked guard-band",
             f"{guard_bands.total() * 100:.0f}%"],
            ["mean revealed safe undervolt",
             f"{sum(revealed) / len(revealed) * 100:.1f}%"],
            ["min revealed safe undervolt",
             f"{min(revealed) * 100:.1f}%"],
            ["max revealed safe undervolt",
             f"{max(revealed) * 100:.1f}%"],
        ],
    )
    emit("table1_guardbands", table + "\n\n" + followup)

    assert guard_bands.total() >= 0.35
    assert all(m > 0 for m in revealed)
