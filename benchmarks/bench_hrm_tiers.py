"""Bench HRM — the heterogeneous-reliability memory tier frontier.

Enforces the claims the tier refactor exists for:

1. **The frontier** — the tiered layout (strong/SECDED/nominal,
   normal/SEC-DAEC/1.5 s, relaxed/BCH-DEC/5 s) burns less refresh
   energy than an all-nominal fleet *and* expects orders of magnitude
   fewer critical uncorrectable errors than an all-relaxed one.
2. **Determinism** — the ``repro hrm`` A/B report is byte-identical
   across runs and across ``jobs`` counts.
3. **Tier-isolated supervision** — under ``EOPPolicy.tiered()`` an
   error storm in a relaxed-tier domain demotes the relaxed tier as
   one batch while the normal tier's adopted margin stands, and the
   normal tier's refresh stays clamped at its stance cap.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core import UniServerNode
from repro.core.events import CorrectableErrorEvent
from repro.daemons.healthlog import HealthLogConfig
from repro.eop import EOPPolicy, EOPState
from repro.hardware.chip import ChipModel, arm_server_soc_spec
from repro.hardware.dram import tiered_server_memory
from repro.hardware.platform import ServerPlatform
from repro.hrm import HrmConfig, run_hrm_ab
from repro.persistence import canonical_json


def test_hrm_tier_frontier(benchmark, emit):
    config = HrmConfig(n_nodes=6)

    def ab():
        return run_hrm_ab(config, jobs=1)

    report = run_once(benchmark, ab)

    # Byte-identity: a second run and a jobs=2 run must reproduce the
    # exact same canonical bytes.
    rerun = canonical_json(run_hrm_ab(config, jobs=1))
    sharded = canonical_json(run_hrm_ab(config, jobs=2))
    assert canonical_json(report) == rerun
    assert canonical_json(report) == sharded

    rows = []
    for arm in ("tiered", "all-nominal", "all-relaxed"):
        row = report["arms"][arm]
        rows.append([
            arm,
            f"{row['refresh_energy_j'] / 3.6e6:.6f} kWh",
            f"{row['ecc_energy_j']:.1f} J",
            f"{row['expected_critical_ue']:.3e}",
            f"{row['spilled_mb']:.0f} MB",
        ])
    frontier = report["frontier"]
    table = render_table(
        f"HRM tier A/B over {config.n_nodes} nodes, "
        f"{config.vms_per_node} VMs/node, {config.duration_s:.0f} s",
        ["arm", "refresh energy", "ECC energy",
         "expected critical UEs", "spilled"],
        rows,
    )
    headline = render_table(
        "Frontier",
        ["metric", "value"],
        [
            ["refresh energy savings vs all-nominal",
             f"{frontier['refresh_energy_savings_vs_nominal']:.1%}"],
            ["critical-UE ratio vs all-relaxed",
             f"{frontier['critical_ue_ratio_vs_relaxed']:.3e}"],
        ],
    )
    emit("hrm_tiers", table + "\n\n" + headline)

    tiered = report["arms"]["tiered"]
    nominal = report["arms"]["all-nominal"]
    relaxed = report["arms"]["all-relaxed"]
    assert frontier["tiered_beats_nominal_energy"]
    assert frontier["tiered_beats_relaxed_ue"]
    assert tiered["refresh_energy_j"] < nominal["refresh_energy_j"]
    assert (tiered["expected_critical_ue"]
            < 1e-6 * relaxed["expected_critical_ue"])
    # The tiered placement never spills; both uniform layouts do (the
    # all-nominal layout has no normal tier, the all-relaxed no strong).
    assert tiered["spilled_mb"] == 0.0
    assert nominal["spilled_mb"] > 0.0
    assert relaxed["spilled_mb"] > 0.0


def _tiered_node() -> UniServerNode:
    platform = ServerPlatform(
        ChipModel(arm_server_soc_spec(), seed=3),
        tiered_server_memory(seed=10), name="hrm0")
    node = UniServerNode(
        platform=platform, seed=3, eop_policy=EOPPolicy.tiered(),
        healthlog_config=HealthLogConfig(error_threshold=1000))
    node.pre_deploy()
    node.deploy()
    return node


def test_governor_demotes_one_tier_only(benchmark, emit):
    def scenario():
        node = _tiered_node()
        for _ in range(25):  # over the relaxed stance budget of 20
            node.bus.publish(CorrectableErrorEvent(
                timestamp=node.clock.now, source="hw",
                component="channel3", detail="retention storm"))
        node.governor.step()
        return node

    node = run_once(benchmark, scenario)
    memory = node.platform.memory

    rows = []
    for record in node.governor.records():
        if record.kind != "domain":
            continue
        domain = memory.domain(record.component)
        rows.append([
            record.component, domain.tier, record.state.value,
            f"{domain.refresh_interval_s:.3f} s", domain.ecc.name,
        ])
    events = node.governor.tier_demotion_events
    table = render_table(
        "Tier-scoped demotion: storm on channel3 (relaxed tier)",
        ["domain", "tier", "state", "refresh", "ECC"],
        rows,
    )
    emit("hrm_tier_demotion", table + "\n\n"
         + "\n".join(str(e["reason"]) for e in events))

    # The relaxed tier demoted as one batch...
    assert len(events) == 1
    assert events[0]["tier"] == "relaxed"
    assert sorted(events[0]["components"]) == ["channel2", "channel3"]
    for name in ("channel2", "channel3"):
        assert node.governor.record(name).state is EOPState.DEMOTED
    # ...while the normal tier's adopted margin stands, clamped at its
    # stance cap, and the strong tier never left nominal.
    normal = node.governor.record("channel1")
    assert normal is not None and normal.state is EOPState.ADOPTED
    assert memory.domain("channel1").refresh_interval_s <= 1.5
    strong = memory.domain("channel0")
    assert strong.reliable and strong.refresh_interval_s <= 0.064
