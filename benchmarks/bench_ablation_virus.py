"""Bench A1 — ablation: GA-evolved viruses vs hand-coded vs real workloads.

Section 3.B claims stress viruses bound real-life workloads, and that
GAs can generate them.  This bench evolves a virus for the i7-3970X and
compares the crash voltage (the revealed worst case) it induces against
the hand-coded viruses and every SPEC-like benchmark — then shows what
margin each characterisation basis would have declared "safe" and
whether that margin actually survives the true worst case.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.hardware import ChipModel, intel_i7_3970x_spec
from repro.workloads import spec_suite, virus_suite
from repro.workloads.genetic import (
    GAConfig,
    VirusEvolver,
    crash_voltage_fitness,
)

GUARD_MARGIN_V = 0.010


def test_ablation_virus_generation(benchmark, emit):
    chip = ChipModel(intel_i7_3970x_spec(), seed=2)
    fitness = crash_voltage_fitness(chip)

    def evolve():
        evolver = VirusEvolver(
            fitness, GAConfig(population_size=40, generations=40), seed=7)
        return evolver.evolve()

    ga_result = run_once(benchmark, evolve)

    rows = []
    entries = []
    for workload in spec_suite():
        entries.append((f"spec/{workload.name}",
                        fitness(workload.profile)))
    for workload in virus_suite():
        entries.append((f"virus/{workload.name}",
                        fitness(workload.profile)))
    entries.append(("virus/ga_evolved", ga_result.best_fitness))
    entries.sort(key=lambda e: e[1])

    worst_spec = max(v for name, v in entries if name.startswith("spec/"))
    true_worst = max(v for _, v in entries)
    for name, crash_v in entries:
        margin_ok = crash_v + GUARD_MARGIN_V >= true_worst
        rows.append([
            name, f"{crash_v:.4f} V",
            f"-{(1 - crash_v / 1.365) * 100:.1f}%",
            "SAFE" if margin_ok else "unsafe basis",
        ])
    table = render_table(
        "A1: worst-core crash voltage induced per workload "
        "(characterising with it + 10 mV guard: does the margin survive "
        "the true worst case?)",
        ["workload", "crash voltage", "offset from nominal",
         "margin basis"],
        rows,
    )
    convergence = render_table(
        "GA convergence (best fitness per 5 generations)",
        ["generation", "best crash voltage"],
        [[g, f"{ga_result.history[g]:.4f} V"]
         for g in range(0, len(ga_result.history), 5)],
    )
    emit("ablation_virus", table + "\n\n" + convergence)

    # The GA virus must beat every real workload and at least match the
    # hand-coded kernels it seeds from.
    assert ga_result.best_fitness > worst_spec
    hand_coded_best = max(
        v for name, v in entries
        if name.startswith("virus/") and name != "virus/ga_evolved")
    assert ga_result.best_fitness >= hand_coded_best - 1e-9
    # A SPEC-only characterisation basis would under-margin the part.
    assert worst_spec + GUARD_MARGIN_V < true_worst
