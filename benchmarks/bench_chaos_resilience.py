"""Bench — chaos campaign: graceful degradation on vs off.

One seeded :class:`~repro.resilience.FaultPlan` is replayed twice
against the same trace-driven rack: once with the full degradation
ladder (heartbeat suspicion ladder, retry policy, circuit breaker,
stale-info fallback, failover escalation), once with a naive controller
(hair-trigger DOWN declarations, single-shot migrations, no breaker, no
fallback, no failover).  The headline claim: under an identical lying,
lossy, failing control path, the policies-on arm achieves strictly
higher fleet availability and strictly lower MTTR.

Scale knobs (for the CI smoke step) come from the environment:

``CHAOS_BENCH_NODES``     rack size           (default 4)
``CHAOS_BENCH_DURATION``  campaign seconds    (default 3600)
``CHAOS_BENCH_SMOKE``     set to 1 to relax the strict A/B win to a
                          sanity check (tiny campaigns are too short
                          for the ladder to pay for itself)
"""

import os

from conftest import run_once

from repro.analysis import render_table
from repro.persistence import StateAuditor
from repro.resilience import run_chaos_ab, run_chaos_campaign

NODES = int(os.environ.get("CHAOS_BENCH_NODES", "4"))
DURATION_S = float(os.environ.get("CHAOS_BENCH_DURATION", "3600"))
SMOKE = os.environ.get("CHAOS_BENCH_SMOKE", "") not in ("", "0")
SEED = 0
RATE_PER_HOUR = 8.0
INTENSITY = 0.7


def _fmt_mttr(mttr_s):
    return f"{mttr_s:.0f} s" if mttr_s is not None else "n/a"


def test_chaos_policies_ab(benchmark, emit):
    def campaign():
        return run_chaos_ab(
            n_nodes=NODES, duration_s=DURATION_S, seed=SEED,
            rate_per_hour=RATE_PER_HOUR, intensity=INTENSITY)

    comparison = run_once(benchmark, campaign)
    on, off = comparison.on, comparison.off

    # Both arms must end in an invariant-clean state: strict mode
    # raises on the first cross-layer inconsistency.
    for arm in (on, off):
        auditor = StateAuditor(strict=True)
        auditor.audit(arm.experiment.cloud, context=arm.label)
        assert auditor.violation_count == 0

    rows = [
        ["fleet availability", f"{on.fleet_availability:.4f}",
         f"{off.fleet_availability:.4f}"],
        ["MTTR", _fmt_mttr(on.mttr_s), _fmt_mttr(off.mttr_s)],
        ["SLA violations", on.sla_violations, off.sla_violations],
        ["evacuation success rate",
         f"{on.evacuation_success_rate:.2f}",
         f"{off.evacuation_success_rate:.2f}"],
        ["node crash episodes", on.node_crashes, off.node_crashes],
        ["recoveries", on.recoveries, off.recoveries],
        ["failovers", on.failovers, off.failovers],
        ["breaker trips", on.breaker_trips, off.breaker_trips],
        ["flaps", on.flaps, off.flaps],
        ["heartbeats missed", on.heartbeats_missed,
         off.heartbeats_missed],
        ["VMs admitted", on.admitted, off.admitted],
    ]
    table = render_table(
        f"Chaos campaign A/B: {NODES} nodes, {DURATION_S:.0f} s, "
        f"seed {SEED}, {on.plan_faults} planned control-plane faults",
        ["metric", "policies ON", "policies OFF"],
        rows,
    )
    table += (f"\navailability recovered: "
              f"{comparison.availability_gain:+.4f}")
    if comparison.mttr_reduction_s is not None:
        table += f"\nMTTR reduction: {comparison.mttr_reduction_s:.0f} s"
    emit("chaos_resilience", table)

    # Both arms replay the identical plan: same faults scheduled.
    assert on.plan_faults == off.plan_faults > 0
    assert 0.0 < on.fleet_availability <= 1.0
    assert 0.0 < off.fleet_availability <= 1.0
    if SMOKE:
        # Tiny CI campaigns: only sanity, not the strict win.
        assert on.fleet_availability >= off.fleet_availability - 0.05
        return
    # The headline claim: the degradation ladder strictly wins both.
    assert on.fleet_availability > off.fleet_availability
    assert on.mttr_s is not None and off.mttr_s is not None
    assert on.mttr_s < off.mttr_s


def test_chaos_campaign_is_reproducible(benchmark, emit):
    duration = min(DURATION_S, 1800.0)

    def twice():
        first = run_chaos_campaign(
            n_nodes=NODES, duration_s=duration, seed=SEED,
            rate_per_hour=RATE_PER_HOUR, intensity=INTENSITY)
        second = run_chaos_campaign(
            n_nodes=NODES, duration_s=duration, seed=SEED,
            rate_per_hour=RATE_PER_HOUR, intensity=INTENSITY)
        return first, second

    first, second = run_once(benchmark, twice)
    emit("chaos_reproducibility",
         f"same-seed chaos campaigns replay bit-for-bit: "
         f"{first == second}\n\n{first.describe()}")
    # CampaignResult equality covers every headline number and the
    # injection counts; the attached experiment is excluded.
    assert first == second
    assert first.injections == second.injections
