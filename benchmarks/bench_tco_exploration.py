"""Bench T3b — datacenter design-space exploration with the TCO tool.

The paper promises a TCO tool for "data-center design exploration"
considering "specific requirements and architecture of both the Cloud
and the Edge".  This bench prices a fixed service capacity across
site × margin-policy combinations and extracts the cost/availability
Pareto set — the menu a deployment architect actually chooses from.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.tco import (
    BASELINE_ARM_SERVER,
    DatacenterSpec,
    DesignSpaceExplorer,
    EDGE_SITE,
    cheapest_meeting_availability,
    cost_availability_pareto,
)


def test_tco_design_space(benchmark, emit):
    explorer = DesignSpaceExplorer(required_capacity_units=1000.0,
                                   capacity_per_server=10.0)

    def explore():
        return explorer.explore(
            sites=(DatacenterSpec(), EDGE_SITE),
            servers=(BASELINE_ARM_SERVER,),
        )

    points = run_once(benchmark, explore)

    rows = [
        [p.site, p.policy, p.n_servers,
         f"${p.fleet_tco_usd / 1e6:.2f}M",
         f"${p.tco_per_capacity_usd:.0f}",
         f"{p.effective_availability:.5f}"]
        for p in sorted(points, key=lambda x: x.tco_per_capacity_usd)
    ]
    table = render_table(
        "T3b: design space for 1000 capacity units "
        "(site x margin policy)",
        ["site", "policy", "servers", "fleet TCO", "TCO/unit",
         "availability"],
        rows,
    )

    front = cost_availability_pareto(points)
    front_table = render_table(
        "Cost/availability Pareto set",
        ["site", "policy", "TCO/unit", "availability"],
        [[p.site, p.policy, f"${p.tco_per_capacity_usd:.0f}",
          f"{p.effective_availability:.5f}"] for p in front],
    )
    strict = cheapest_meeting_availability(points, 0.9998)
    loose = cheapest_meeting_availability(points, 0.99)
    queries = render_table(
        "Architect queries",
        ["requirement", "chosen design", "TCO/unit"],
        [
            ["availability >= 0.9998",
             f"{strict.site}/{strict.policy}",
             f"${strict.tco_per_capacity_usd:.0f}"],
            ["availability >= 0.99",
             f"{loose.site}/{loose.policy}",
             f"${loose.tco_per_capacity_usd:.0f}"],
        ],
    )
    emit("tco_exploration",
         table + "\n\n" + front_table + "\n\n" + queries)

    # EOP policies beat conservative at every site.
    by_key = {(p.site, p.policy): p for p in points}
    for site in ("cloud", "edge"):
        assert by_key[(site, "moderate-eop")].tco_per_capacity_usd < \
            by_key[(site, "conservative")].tco_per_capacity_usd
    # The Pareto set is a strict subset.
    assert 0 < len(front) < len(points)
    assert loose.tco_per_capacity_usd <= strict.tco_per_capacity_usd
