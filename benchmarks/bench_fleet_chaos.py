"""Bench — fault-tolerant fleet execution: replay identity and cost.

The acceptance bar for the supervised fleet executor
(``repro.fleet.campaign._ProcessExecutor``) and the vectorized chaos
layer (``repro.fleet.chaos``):

* a campaign with a seeded fault plan *and* injected worker SIGKILLs
  must produce a report **byte-identical** to the clean run — the
  supervisor detects every death, respawns the worker, and
  deterministically replays its shards from the last per-shard
  checkpoint;
* a campaign whose restart budget is exhausted must *complete* (exit
  0) with the quarantined shards recorded in the report, instead of
  raising;
* supervision must be cheap: the supervised executor with periodic
  checkpointing enabled must cost no more than 10% wall-clock over the
  same executor with checkpointing disabled.

``PYTHONHASHSEED`` is pinned for the CLI arms, as in the other
cross-process identity benches.

Scale knobs from the environment:

``FLEET_CHAOS_NODES``          CLI fleet size            (default 16)
``FLEET_CHAOS_OVERHEAD_NODES`` overhead-arm fleet size   (default 128)
``FLEET_CHAOS_OVERHEAD_PCT``   supervision cost ceiling  (default 10)
``FLEET_CHAOS_SMOKE``          set to relax the overhead assert to a
                               report line (shared CI boxes)
"""

import json
import os
import pathlib
import subprocess
import sys
import time

from conftest import run_once

NODES = int(os.environ.get("FLEET_CHAOS_NODES", "16"))
OVERHEAD_NODES = int(os.environ.get("FLEET_CHAOS_OVERHEAD_NODES",
                                    "128"))
OVERHEAD_PCT = float(os.environ.get("FLEET_CHAOS_OVERHEAD_PCT", "10"))
SMOKE = bool(os.environ.get("FLEET_CHAOS_SMOKE"))
DURATION_S = 1800.0
CHAOS_SEED = 5

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "0"
    return env


def _fleet_argv(report_path, *extra):
    return [sys.executable, "-m", "repro", "fleet",
            "--nodes", str(NODES),
            "--duration", str(DURATION_S),
            "--shards", "4",
            "--chaos-seed", str(CHAOS_SEED),
            "--report-json", str(report_path), *extra]


def test_worker_kills_replay_to_identical_report(
        benchmark, emit, tmp_path):
    """Two SIGKILLed workers + chaos == the clean report, bytewise."""
    clean = tmp_path / "fleet-chaos-clean.json"
    killed = tmp_path / "fleet-chaos-killed.json"
    quarantined = tmp_path / "fleet-chaos-quarantined.json"

    def harness():
        subprocess.run(_fleet_argv(clean), check=True, env=_env(),
                       cwd=_REPO_ROOT, stdout=subprocess.DEVNULL,
                       timeout=600)
        subprocess.run(
            _fleet_argv(killed, "--jobs", "2",
                        "--kill-worker-at", "7:0",
                        "--kill-worker-at", "19:1",
                        "--max-worker-restarts", "3"),
            check=True, env=_env(), cwd=_REPO_ROOT,
            stdout=subprocess.DEVNULL, timeout=600)
        # Restart budget 0: the first kill must quarantine, and the
        # campaign must still exit 0 with the block in the report.
        subprocess.run(
            _fleet_argv(quarantined, "--jobs", "2",
                        "--kill-worker-at", "7:0",
                        "--max-worker-restarts", "0"),
            check=True, env=_env(), cwd=_REPO_ROOT,
            stdout=subprocess.DEVNULL, timeout=600)

    run_once(benchmark, harness)

    clean_bytes = clean.read_bytes()
    identical = clean_bytes == killed.read_bytes()
    q_report = json.loads(quarantined.read_text())
    quarantine = q_report.get("quarantine")
    clean_report = json.loads(clean.read_text())

    emit("fleet_chaos_identity", "\n".join([
        f"fleet chaos identity: {NODES} nodes, chaos seed "
        f"{CHAOS_SEED}, 2 injected SIGKILLs",
        f"killed run byte-identical to clean: {identical}",
        f"clean report has quarantine block: "
        f"{'quarantine' in clean_report}",
        f"quarantined run completed with block: {quarantine}",
    ]))

    assert identical, (
        "worker SIGKILLs leaked into the report: deterministic "
        "replay failed")
    assert "quarantine" not in clean_report, (
        "clean run must not carry a quarantine block")
    assert quarantine and quarantine["nodes"] > 0, (
        "exhausted restart budget did not record a quarantine")
    assert q_report["totals"]["steps"] \
        == clean_report["totals"]["steps"], (
        "quarantined campaign did not run to completion")


def test_supervision_overhead_is_bounded(benchmark, emit):
    """Checkpointing + supervised receives cost <= the ceiling.

    Runs a larger fleet than the identity arms: the costs being priced
    (poll-based receives, the periodic checkpoint gather) are per-step
    constants, so a too-small campaign would measure scheduler noise
    instead of supervision.
    """
    from repro.fleet import FleetCampaignConfig, FleetConfig
    from repro.fleet.campaign import FleetCampaign

    config = FleetCampaignConfig(
        fleet=FleetConfig(n_nodes=OVERHEAD_NODES, seed=0),
        duration_s=DURATION_S, shards=4, chaos_seed=CHAOS_SEED)

    def run_campaign(checkpoint_every):
        campaign = FleetCampaign(
            config, jobs=2, checkpoint_every_steps=checkpoint_every)
        try:
            start = time.perf_counter()
            campaign.run()
            campaign.report()
            return time.perf_counter() - start
        finally:
            campaign.close()

    def harness():
        run_campaign(None)  # warm both paths once
        bare = min(run_campaign(None) for _ in range(3))
        supervised = min(run_campaign(25) for _ in range(3))
        return bare, supervised

    bare_s, supervised_s = run_once(benchmark, harness)
    overhead_pct = (supervised_s / bare_s - 1.0) * 100.0

    emit("fleet_chaos_overhead", "\n".join([
        f"supervision overhead: {OVERHEAD_NODES} nodes, jobs=2, "
        f"{int(DURATION_S // 60)} steps",
        f"no checkpoints:       {bare_s:8.3f} s",
        f"checkpoint every 25:  {supervised_s:8.3f} s",
        f"overhead: {overhead_pct:+.1f}% "
        f"(ceiling {OVERHEAD_PCT:.0f}%)",
        f"smoke mode (assert relaxed): {SMOKE}",
    ]))

    if not SMOKE:
        assert overhead_pct <= OVERHEAD_PCT, (
            f"supervision overhead {overhead_pct:.1f}% exceeds the "
            f"{OVERHEAD_PCT:.0f}% ceiling")
