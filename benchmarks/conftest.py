"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table or figure.  Rendered output is
both printed (visible with ``pytest -s``) and written to
``benchmarks/results/<name>.txt`` so the regenerated artifacts survive
the run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Benchmark an expensive campaign with a single measured round."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
