"""Bench — multi-horizon failure prediction: scoring and the migration A/B.

The acceptance bar for the prediction stack
(``repro.cloudmgr.failure_prediction`` + ``repro.sweep.harvest``):

* the predictor trained on sweep-harvested labels must *detect* held-out
  failure events at its nearest horizon (non-zero recall with positive
  mean lead time against the ground-truth fault ledger);
* under the pinned storm plan, the risk-aware arm (trained predictor +
  horizon-report weigher) must beat the threshold baseline on **both**
  fleet availability and SLA violations — prediction that cannot pay
  for its own migrations is churn, not resilience;
* the harvest is deterministic: the labelled-observation payload must be
  byte-identical between ``--jobs 1`` and ``--jobs 2``.

Scale knobs from the environment:

``PRED_BENCH_NODES``     A/B rack size                 (default 5)
``PRED_BENCH_DURATION``  A/B campaign seconds          (default 7200)
``PRED_BENCH_SMOKE``     set to relax the A/B asserts to report lines
                         (shared CI boxes)
"""

import os

from conftest import run_once

NODES = int(os.environ.get("PRED_BENCH_NODES", "5"))
DURATION_S = float(os.environ.get("PRED_BENCH_DURATION", "7200"))
SMOKE = bool(os.environ.get("PRED_BENCH_SMOKE"))

TRAIN_SEEDS = (11, 12, 13)
EVAL_SEED = 21
HARVEST_NODES = 3
HARVEST_DURATION_S = 10800.0
HARVEST_RATE = 8.0
INTENSITY = 0.9
THRESHOLD = 0.35
AB_SEED = 42


def _harvest(seeds, jobs=2):
    from repro.sweep import SweepSpec, harvest_report, run_sweep

    spec = SweepSpec(
        seeds=tuple(seeds), n_nodes=HARVEST_NODES,
        duration_s=HARVEST_DURATION_S, rate_per_hour=HARVEST_RATE,
        intensity=INTENSITY, harvest=True)
    outcome = run_sweep(spec, jobs=jobs)
    assert not outcome.failures, [r.error for r in outcome.failures]
    return harvest_report(outcome)


def test_risk_aware_arm_beats_threshold_baseline(benchmark, emit):
    """Train on harvested labels, score held-out, win the pinned A/B."""
    from repro.cloudmgr import (
        run_prediction_ab,
        score_harvest,
        train_from_observations,
    )

    def harness():
        training = _harvest(TRAIN_SEEDS)
        predictor = train_from_observations(
            training["observations"], threshold=THRESHOLD)
        scores = score_harvest(
            predictor, _harvest((EVAL_SEED,))["observations"])
        ab = run_prediction_ab(
            predictor, n_nodes=NODES, duration_s=DURATION_S,
            seed=AB_SEED)
        return predictor, scores, ab

    predictor, scores, ab = run_once(benchmark, harness)
    near = scores["horizons"]["15m"]
    base = ab["arms"]["baseline"]
    risk = ab["arms"]["risk_aware"]

    lead = (f"{near['mean_lead_s']:.0f}s"
            if near["mean_lead_s"] is not None else "n/a")
    emit("failure_prediction_ab", "\n".join([
        f"failure prediction: trained horizons "
        f"{', '.join(predictor.trained_horizons()) or 'none'}, "
        f"threshold {THRESHOLD}",
        f"held-out 15m scoring: precision={near['precision']:.3f} "
        f"recall={near['recall']:.3f} events={near['events']} "
        f"detected={near['detected']} mean lead={lead}",
        f"pinned storm A/B ({NODES} nodes, "
        f"{int(DURATION_S // 60)} steps, seed {AB_SEED}, "
        f"{ab['plan_faults']} faults):",
        f"  availability    {base['availability']:.4f} -> "
        f"{risk['availability']:.4f} "
        f"({ab['deltas']['availability']:+.4f})",
        f"  sla violations  {base['sla_violations']} -> "
        f"{risk['sla_violations']} "
        f"({ab['deltas']['sla_violations']:+d})",
        f"  evacuations     {base['evacuations']} -> "
        f"{risk['evacuations']}",
        f"smoke mode (asserts relaxed): {SMOKE}",
    ]))

    assert "15m" in predictor.trained_horizons(), (
        "the nearest horizon did not train on the harvested labels")
    if not SMOKE:
        assert near["detected"] > 0 and near["recall"] > 0, (
            "the trained predictor detected no held-out failure events")
        assert risk["availability"] > base["availability"], (
            "risk-aware arm did not improve fleet availability")
        assert risk["sla_violations"] < base["sla_violations"], (
            "risk-aware arm did not reduce SLA violations")


def test_harvest_is_jobs_independent(benchmark, emit):
    """The labelled-observation payload is identical across --jobs."""
    from repro.persistence import canonical_json

    def harness():
        serial = canonical_json(_harvest(TRAIN_SEEDS[:2], jobs=1))
        fanned = canonical_json(_harvest(TRAIN_SEEDS[:2], jobs=2))
        return serial, fanned

    serial, fanned = run_once(benchmark, harness)
    identical = serial == fanned
    emit("failure_prediction_harvest", "\n".join([
        f"harvest determinism: seeds {TRAIN_SEEDS[:2]}, "
        f"{HARVEST_NODES} nodes, {int(HARVEST_DURATION_S // 60)} steps",
        f"jobs=1 vs jobs=2 byte-identical: {identical}",
        f"payload bytes: {len(serial)}",
    ]))
    assert identical, (
        "harvest payload differs between --jobs 1 and --jobs 2")
