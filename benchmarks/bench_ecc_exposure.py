"""Bench S6Bb — the ECC safety chain behind refresh relaxation.

Quantifies the argument the paper compresses into one sentence
("classical ECC-SECDED can handle error rates up to 1e-6"):

1. at the 5 s refresh point, the static weak-cell population of an 8 GB
   domain is ~69 cells, and the expected number of words holding *two*
   of them (the only statically fatal configuration) is ~2e-6;
2. transient upsets pair with those static cells at a rate giving a
   mean time to uncorrectable error near a million years — and page
   retirement removes even that term;
3. the domain-level static-BER ceiling sits between the measured 1e-9
   and the quoted per-word 1e-6 capability.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.hardware.dram import (
    DEFAULT_TIER_REFRESH_S,
    DEFAULT_TIER_UE_TARGETS,
    MEMORY_TIERS,
    Dimm,
    MemoryDomain,
    RetentionModel,
)
from repro.hardware.ecc import (
    RETENTION_ADJACENT_FRACTION,
    EccSelector,
)
from repro.hardware.scrubbing import (
    EccExposureModel,
    ScrubPolicy,
    scrub_policy_table,
)

YEAR_S = 365.25 * 24 * 3600.0


def test_ecc_exposure_chain(benchmark, emit):
    def assess():
        domain = MemoryDomain("relaxed", [Dimm(dimm_id=0)], seed=1)
        domain.set_refresh_interval(5.0)
        base = EccExposureModel(
            ScrubPolicy(scrub_interval_s=3600.0)).assess(domain)
        retired = EccExposureModel(ScrubPolicy(
            scrub_interval_s=3600.0,
            retire_weak_pages=True)).assess(domain)
        ceiling = EccExposureModel().max_safe_ber(domain.capacity_bits)
        policies = scrub_policy_table(domain)
        return domain, base, retired, ceiling, policies

    domain, base, retired, ceiling, policies = run_once(benchmark, assess)

    chain = render_table(
        "S6Bb: ECC exposure of an 8 GB domain at the 5 s refresh point",
        ["quantity", "value"],
        [
            ["static weak cells (BER 1e-9)", f"{base.weak_cells:.0f}"],
            ["expected words with 2 weak cells",
             f"{base.static_pair_words:.1e}"],
            ["statically safe", "yes" if base.statically_safe else "NO"],
            ["transient-on-static UE rate",
             f"{base.transient_on_static_rate_s:.1e} /s"],
            ["MTTUE (hourly scrub)",
             f"{base.mean_time_to_ue_s() / YEAR_S:.0f} years"],
            ["MTTUE with weak-page retirement",
             f"{retired.mean_time_to_ue_s() / YEAR_S:.1e} years"],
            ["domain static-BER ceiling (<0.01 dead words)",
             f"{ceiling:.1e}"],
            ["paper's per-word SECDED capability", "1e-06"],
        ],
    )
    policy_table = render_table(
        "Scrub-policy sweep (no page retirement)",
        ["scrub interval", "total UE rate", "MTTUE"],
        [[f"{interval / 3600.0:.1f} h", f"{rate:.1e} /s",
          f"{mttue / YEAR_S:.0f} y"]
         for interval, rate, mttue in policies],
    )
    emit("ecc_exposure", chain + "\n\n" + policy_table)

    assert base.statically_safe
    assert base.mean_time_to_ue_s() > 100 * YEAR_S
    assert retired.mean_time_to_ue_s() > base.mean_time_to_ue_s()
    assert 1e-9 < ceiling < 1e-6


def test_tier_ecc_selection(benchmark, emit):
    """Per-tier ECC exposure: the scheme each tier's UE target forces."""

    def select():
        retention = RetentionModel()
        selector = EccSelector(
            adjacent_fraction=RETENTION_ADJACENT_FRACTION)
        rows = []
        for tier in MEMORY_TIERS:
            interval = DEFAULT_TIER_REFRESH_S[tier]
            target = DEFAULT_TIER_UE_TARGETS[tier]
            ber = retention.ber(interval)
            scheme = selector.select(ber, target)
            ue = scheme.uncorrectable_word_probability(
                ber, adjacent_fraction=RETENTION_ADJACENT_FRACTION)
            rows.append((tier, interval, ber, target, scheme, ue))
        return rows

    selected = run_once(benchmark, select)

    table = render_table(
        "Per-tier ECC selection (cheapest scheme meeting the UE target)",
        ["tier", "refresh", "raw BER", "UE target", "scheme",
         "parity", "pJ/access", "UE word prob"],
        [
            [tier, f"{interval:.3f} s", f"{ber:.2e}", f"{target:.0e}",
             scheme.name, f"{scheme.parity_bits} b",
             f"{scheme.energy_pj_per_access:.1f}", f"{ue:.2e}"]
            for tier, interval, ber, target, scheme, ue in selected
        ],
    )
    emit("ecc_exposure_tiers", table)

    by_tier = {row[0]: row for row in selected}
    # The verified selection matrix: stronger raw BER forces costlier
    # schemes down the tiers, and each meets its tier's target.
    assert by_tier["strong"][4].name == "secded"
    assert by_tier["normal"][4].name == "sec-daec"
    assert by_tier["relaxed"][4].name == "bch-dec"
    for tier, _, _, target, _, ue in selected:
        assert ue <= target
    # Parity overhead rises monotonically with scheme strength.
    assert (by_tier["strong"][4].parity_bits
            < by_tier["normal"][4].parity_bits
            < by_tier["relaxed"][4].parity_bits)
