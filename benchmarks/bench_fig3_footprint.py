"""Bench F3 — paper Figure 3: hypervisor memory footprint under 4 LDBC VMs.

Repeatedly executes four LDBC-SNB VM instances on one hypervisor
(completed instances are immediately replaced, per the paper's
"repeatedly executing four instances") and plots hypervisor / VM /
application footprints over time.  Paper claim: the hypervisor footprint
is *always less than 7 %* of total utilized memory — which justifies
pinning the whole hypervisor into the reliable memory domain.
"""

from conftest import run_once

from repro.analysis import render_series, render_table
from repro.core.clock import SimClock
from repro.hardware import build_uniserver_node
from repro.hypervisor import Hypervisor, VMState, make_vm_fleet
from repro.hypervisor.vm import VirtualMachine
from repro.workloads import ldbc_workload

GUEST_OS_MB = 1024.0
DURATION_TICKS = 240


def _run_fleet():
    clock = SimClock()
    hypervisor = Hypervisor(build_uniserver_node(), clock, seed=5)
    hypervisor.boot()
    workload = ldbc_workload(scale_factor=2.0)
    for vm in make_vm_fleet(workload, 4, guest_os_mb=GUEST_OS_MB):
        hypervisor.create_vm(vm)
    generation = 4
    for _ in range(DURATION_TICKS):
        hypervisor.tick()
        clock.advance_by(1.0)
        for vm in list(hypervisor.vms):
            if vm.state is VMState.COMPLETED:
                hypervisor.destroy_vm(vm.name)
                replacement = VirtualMachine(
                    name=f"vm{generation}", workload=workload,
                    guest_os_mb=GUEST_OS_MB,
                    _memory_seed=generation * 97)
                generation += 1
                hypervisor.create_vm(replacement)
    return hypervisor


def test_fig3_hypervisor_footprint(benchmark, emit):
    hypervisor = run_once(benchmark, _run_fleet)
    samples = hypervisor.accountant.samples
    fractions = [s.hypervisor_fraction for s in samples]
    max_fraction = max(fractions)
    mean_fraction = sum(fractions) / len(fractions)

    # Downsample the series for readable output.
    series = [
        (s.timestamp, s.hypervisor_fraction * 100)
        for s in samples[::20]
    ]
    chart = render_series(
        "Figure 3: hypervisor footprint as % of utilized memory over "
        "repeated 4-VM LDBC executions",
        "t (s)", "hypervisor share (%)", series,
        fmt_y="{:.2f}%",
    )
    mid = samples[len(samples) // 2]
    summary = render_table(
        "Footprint summary (paper: hypervisor always < 7 %)",
        ["metric", "value"],
        [
            ["samples", len(samples)],
            ["hypervisor footprint (steady state)",
             f"{mid.hypervisor_mb:.0f} MB"],
            ["VM footprint (steady state)", f"{mid.vm_mb:.0f} MB"],
            ["application footprint (steady state)",
             f"{mid.application_mb:.0f} MB"],
            ["max hypervisor share", f"{max_fraction * 100:.2f}%"],
            ["mean hypervisor share", f"{mean_fraction * 100:.2f}%"],
        ],
    )
    emit("fig3_footprint", chart + "\n\n" + summary)

    assert max_fraction < 0.07, "paper: hypervisor share always < 7 %"
    assert len(samples) == DURATION_TICKS
