"""Bench A7 — RAIDR-style multirate refresh vs uniform relaxation.

The paper's Section 6.B relaxes refresh *uniformly* per domain and cites
RAIDR [26] for the refresh-power stakes.  This bench quantifies what
retention-aware row binning adds: uniform relaxation is limited by the
weakest row the domain must still serve, while binning refreshes the
tiny weak tail fast and everything else slowly — recovering nearly all
refresh power with a residual BER at the nominal-refresh level.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core.eop import NOMINAL_REFRESH_INTERVAL_S
from repro.hardware.dram import Dimm
from repro.hardware.raidr import MultirateRefresh, bin_rows


def test_raidr_vs_uniform(benchmark, emit):
    dimm = Dimm(dimm_id=0)

    def build():
        bins = bin_rows(dimm.retention,
                        intervals_s=(0.064, 0.256, 1.0, 4.0))
        return bins, MultirateRefresh(dimm, bins)

    bins, scheme = run_once(benchmark, build)

    bin_rows_table = render_table(
        "A7: retention bins of an 8 GB DIMM (rows by the longest "
        "interval their weakest cell sustains)",
        ["bin interval", "row fraction"],
        [[f"{b.interval_s * 1e3:.0f} ms",
          f"{b.row_fraction * 100:.6f}%"] for b in bins],
    )

    model = dimm.power_model()
    nominal_refresh = (model.refresh_power_w(NOMINAL_REFRESH_INTERVAL_S)
                       * dimm.n_devices)
    uniform_safe = nominal_refresh          # weak rows pin uniform at 64 ms
    uniform_bold_interval = 1.5             # Section 6.B's relaxed point
    uniform_bold = (model.refresh_power_w(uniform_bold_interval)
                    * dimm.n_devices)
    comparison = render_table(
        "Refresh power per scheme (whole DIMM)",
        ["scheme", "refresh power", "saving vs nominal",
         "residual cell BER"],
        [
            ["uniform @64 ms (safe for every row)",
             f"{nominal_refresh:.3f} W", "0%",
             f"{dimm.retention.ber(0.064):.1e}"],
            ["uniform @1.5 s (paper 6.B)",
             f"{uniform_bold:.3f} W",
             f"{(1 - uniform_bold / nominal_refresh) * 100:.1f}%",
             f"{dimm.retention.ber(1.5):.1e}"],
            ["RAIDR binned (64 ms..4 s)",
             f"{scheme.refresh_power_w():.3f} W",
             f"{scheme.saving_vs_nominal() * 100:.1f}%",
             f"{scheme.residual_ber(dimm.retention):.1e}"],
        ],
    )
    emit("raidr_refresh", bin_rows_table + "\n\n" + comparison)

    # Binning approaches the uniform-relaxed saving while keeping the
    # weak rows at a BER equal to nominal refresh.
    assert scheme.saving_vs_nominal() > 0.95
    assert scheme.residual_ber(dimm.retention) < dimm.retention.ber(1.5)
    # The binned tail is tiny: the RAIDR premise.
    weak_fraction = sum(b.row_fraction for b in bins
                        if b.interval_s < 1.0)
    assert weak_fraction < 1e-3
