"""Bench T2 — paper Table 2: undervolting characterisation of two Intel parts.

Regenerates the three-row table for the i5-4200U and i7-3970X: crash
points below nominal VID, core-to-core variation, and cache ECC error
counts, using the full campaign (8 SPEC-like benchmarks × every core ×
3 runs, 5 mV steps at pinned maximum frequency).

Paper values — i5: crash −10 %/−11.2 %, c2c 0 %/2.7 %, ECC 1/17;
i7: crash −8.4 %/−15.4 %, c2c 3.7 %/8 %, ECC not exposed.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.characterization import UndervoltingCampaign
from repro.hardware import (
    ChipModel,
    intel_i5_4200u_spec,
    intel_i7_3970x_spec,
)
from repro.workloads import spec_suite


def _run_both():
    suite = spec_suite()
    i5 = UndervoltingCampaign(
        ChipModel(intel_i5_4200u_spec(), seed=11), suite).run()
    i7 = UndervoltingCampaign(
        ChipModel(intel_i7_3970x_spec(), seed=22), suite).run()
    return i5, i7


def test_table2_cpu_characterization(benchmark, emit):
    i5, i7 = run_once(benchmark, _run_both)

    def fmt(campaign):
        cmin, cmax = campaign.crash_offset_range()
        vmin, vmax = campaign.core_variation_range()
        ecc = campaign.ecc_count_range()
        return [
            f"-{cmin * 100:.1f}% / -{cmax * 100:.1f}%",
            f"{vmin * 100:.1f}% / {vmax * 100:.1f}%",
            f"{ecc[0]} / {ecc[1]}" if ecc else "- / -",
        ]

    i5_cells, i7_cells = fmt(i5), fmt(i7)
    table = render_table(
        "Table 2: Initial results for two Intel microprocessors "
        "(min/max; paper: i5 -10/-11.2, 0/2.7, 1/17; "
        "i7 -8.4/-15.4, 3.7/8, -)",
        ["metric", "i5-4200U", "i7-3970X"],
        [
            ["crash points below nominal VID", i5_cells[0], i7_cells[0]],
            ["core-to-core variation", i5_cells[1], i7_cells[1]],
            ["number of cache ECC errors", i5_cells[2], i7_cells[2]],
        ],
    )
    onset = i5.mean_ecc_onset_margin_v()
    note = (
        f"mean voltage offset between first ECC errors and crash on the "
        f"i5: {onset * 1e3:.1f} mV (paper: ~15 mV)"
    )
    emit("table2_cpu", table + "\n" + note)

    # Shape assertions: who exposes ECC, whose variation is wider.
    assert i5.ecc_count_range() is not None
    assert i7.ecc_count_range() is None
    assert i7.core_variation_range()[1] > i5.core_variation_range()[1]
    assert i7.crash_offset_range()[1] > i5.crash_offset_range()[1]
