"""Bench V0 — the whole reproduction, validated in one table.

Re-runs the core campaigns and checks every quantified paper claim
against its measured value through
:mod:`repro.analysis.validation` — the executable version of
EXPERIMENTS.md.
"""

from conftest import run_once

from repro.analysis.validation import PaperClaim, Tolerance, validate
from repro.characterization import (
    RefreshRelaxationCampaign,
    UndervoltingCampaign,
)
from repro.hardware import (
    ChipModel,
    DramPowerModel,
    intel_i5_4200u_spec,
    intel_i7_3970x_spec,
    standard_server_memory,
)
from repro.hypervisor import run_figure4_campaign
from repro.tco import EDGE, EdgeServiceModel, project_table3
from repro.workloads import spec_suite


def _claims():
    suite = spec_suite()
    i5 = UndervoltingCampaign(
        ChipModel(intel_i5_4200u_spec(), seed=11), suite).run()
    i7 = UndervoltingCampaign(
        ChipModel(intel_i7_3970x_spec(), seed=22), suite).run()
    dram = RefreshRelaxationCampaign(
        standard_server_memory(seed=5), "channel1").run()
    fig4 = run_figure4_campaign(seed=7)
    edge = EdgeServiceModel().service_point(EDGE)
    table3 = project_table3()

    return [
        PaperClaim("T2", "i5 max crash offset", 0.112,
                   lambda: i5.crash_offset_range()[1],
                   Tolerance.ABSOLUTE, 0.01),
        PaperClaim("T2", "i5 max core-to-core variation", 0.027,
                   lambda: i5.core_variation_range()[1],
                   Tolerance.ABSOLUTE, 0.006),
        PaperClaim("T2", "i5 ECC onset above crash (V)", 0.015,
                   lambda: i5.mean_ecc_onset_margin_v(),
                   Tolerance.ABSOLUTE, 0.004),
        PaperClaim("T2", "i7 max crash offset", 0.154,
                   lambda: i7.crash_offset_range()[1],
                   Tolerance.ABSOLUTE, 0.01),
        PaperClaim("T2", "i7 min core-to-core variation", 0.037,
                   lambda: i7.core_variation_range()[0],
                   Tolerance.ABSOLUTE, 0.008),
        PaperClaim("S6B", "error-free refresh interval (s)", 1.5,
                   dram.max_error_free_interval_s, Tolerance.AT_LEAST),
        PaperClaim("S6B", "BER at 5 s refresh", 1e-9,
                   lambda: dram.step_at(5.0).cumulative_ber,
                   Tolerance.ORDER_OF_MAGNITUDE, 0.5),
        PaperClaim("S6B", "refresh share of 2 Gb device", 0.09,
                   lambda: DramPowerModel(
                       density_gbit=2.0).refresh_share(),
                   Tolerance.ABSOLUTE, 0.01),
        PaperClaim("S6B", "refresh share of 32 Gb device", 0.34,
                   lambda: DramPowerModel(
                       density_gbit=32.0).refresh_share(),
                   Tolerance.AT_LEAST),
        PaperClaim("F4", "injected objects", 16820,
                   lambda: fig4.loaded_report.total_injections / 5,
                   Tolerance.ABSOLUTE, 0),
        PaperClaim("F4", "load amplification (~10x)", 10.0,
                   fig4.load_amplification,
                   Tolerance.ORDER_OF_MAGNITUDE, 0.3),
        PaperClaim("S6D", "edge energy saving", 0.50,
                   lambda: edge.energy_saving, Tolerance.ABSOLUTE, 0.05),
        PaperClaim("S6D", "edge power saving", 0.75,
                   lambda: edge.power_saving, Tolerance.ABSOLUTE, 0.05),
        PaperClaim("T3", "TCO improvement, EE only", 1.15,
                   lambda: table3.ee_only_tco, Tolerance.ABSOLUTE, 0.05),
    ]


def test_validation_summary(benchmark, emit):
    report = run_once(benchmark, lambda: validate(_claims()))
    emit("validation_summary", report.render(
        "UniServer reproduction: quantified paper claims"))

    assert report.all_passed, [
        (r.claim.experiment, r.claim.description, r.measured)
        for r in report.failures()
    ]
