"""Bench — scaling and determinism of the parallel sweep engine.

The acceptance bar for ``repro.sweep``: fanning a multi-seed campaign
sweep across worker subprocesses must be *faster* than running it
serially and must not change a single byte of the aggregate report.

Two arms, both run as subprocesses of the ``repro sweep`` CLI:

* **serial** — ``--jobs 1``, wall-clock timed, writes its
  canonical-JSON report;
* **parallel** — ``--jobs N`` (default 4), timed, and its report
  compared byte-for-byte against the serial arm's.

``PYTHONHASHSEED`` is pinned for both arms: the VM application-trace
seeds hash VM names, so cross-process equivalence is
per-interpreter-configuration (exactly as the kill/resume bench pins
it).

The byte-identity assertion always runs.  The speedup assertion only
runs when the machine actually has cores to parallelise over (>= 2
visible CPUs); on a single-core host the parallel arm degenerates to
serial plus scheduling overhead and a speedup bar would only measure
the host, not the engine.

Scale knobs from the environment:

``SWEEP_BENCH_NODES``        rack size per campaign   (default 3)
``SWEEP_BENCH_DURATION``     campaign seconds         (default 1800)
``SWEEP_BENCH_SEEDS``        seed list/ranges         (default 0:4)
``SWEEP_BENCH_JOBS``         parallel arm width       (default 4)
``SWEEP_BENCH_MIN_SPEEDUP``  speedup floor            (default 1.5)
"""

import os
import pathlib
import subprocess
import sys
import time

from conftest import run_once

NODES = int(os.environ.get("SWEEP_BENCH_NODES", "3"))
DURATION_S = float(os.environ.get("SWEEP_BENCH_DURATION", "1800"))
SEEDS = os.environ.get("SWEEP_BENCH_SEEDS", "0:4")
JOBS = int(os.environ.get("SWEEP_BENCH_JOBS", "4"))
MIN_SPEEDUP = float(os.environ.get("SWEEP_BENCH_MIN_SPEEDUP", "1.5"))
RATE_PER_HOUR = 20.0
INTENSITY = 0.8

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _sweep_argv(jobs, report_path):
    return [
        sys.executable, "-m", "repro", "sweep",
        "--nodes", str(NODES), "--duration", str(DURATION_S),
        "--rate", str(RATE_PER_HOUR), "--intensity", str(INTENSITY),
        "--seeds", SEEDS, "--jobs", str(jobs), "--quiet",
        "--report-json", str(report_path),
    ]


def _env():
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "0"
    return env


def _timed_sweep(jobs, report_path) -> float:
    start = time.perf_counter()
    subprocess.run(
        _sweep_argv(jobs, report_path), check=True, env=_env(),
        cwd=_REPO_ROOT, stdout=subprocess.DEVNULL, timeout=600)
    return time.perf_counter() - start


def test_parallel_sweep_is_faster_and_bit_identical(
        benchmark, emit, tmp_path):
    report_serial = tmp_path / "sweep-jobs1.json"
    report_parallel = tmp_path / f"sweep-jobs{JOBS}.json"

    def harness():
        serial_s = _timed_sweep(1, report_serial)
        parallel_s = _timed_sweep(JOBS, report_parallel)
        return serial_s, parallel_s

    serial_s, parallel_s = run_once(benchmark, harness)
    speedup = serial_s / parallel_s
    cpus = _cpus()
    enforce_speedup = cpus >= 2
    n_seeds = report_serial.read_text().count('"seed"')
    emit("sweep_scaling", "\n".join([
        f"sweep scaling: {NODES} nodes, {DURATION_S:.0f} s per "
        f"campaign, seeds {SEEDS}",
        f"visible cpus: {cpus} (speedup bar "
        f"{'enforced' if enforce_speedup else 'reported only'})",
        f"serial   --jobs 1:      {serial_s:8.2f} s",
        f"parallel --jobs {JOBS}:      {parallel_s:8.2f} s",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.2f}x)",
        f"reports byte-identical: "
        f"{report_serial.read_bytes() == report_parallel.read_bytes()}",
    ]))
    assert n_seeds > 0, "serial report carries no rows"
    # The headline: --jobs N must not change a byte of the report.
    assert report_serial.read_bytes() == report_parallel.read_bytes()
    if enforce_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel sweep only {speedup:.2f}x faster than serial "
            f"(floor {MIN_SPEEDUP:.2f}x on {cpus} cpus)")
