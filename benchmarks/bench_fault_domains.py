"""Bench — correlated fault domains: defense A/B and replay identity.

The acceptance bar for topology-aware chaos (``repro.fleet.domains``,
the correlated kinds in ``repro.fleet.chaos``) and the domain-aware
defenses (anti-affinity placement, partition routing, evacuation
backpressure, the correlated-demotion guard):

* under one seeded correlated plan containing **at least one PDU
  brownout, one cooling failure and one rack partition**, the
  defended arm must beat the undefended arm on **both** fleet
  availability and total SLA violations — and must actually exercise
  the machinery (migrations > 0, domain demotions > 0);
* the defended campaign's report must be **byte-identical** across
  ``--shards 1`` vs ``--shards 4`` and across an injected worker
  SIGKILL with deterministic replay — correlated blast radii must not
  leak execution geometry into the physics;
* the EOP governor's correlated guard must demote a whole component
  kind (the browned-out rail's cores) in **one** batch transaction
  when K budget breaches land inside the correlation window.

``PYTHONHASHSEED`` is pinned for the CLI arms, as in the other
cross-process identity benches.

Scale knobs from the environment:

``FAULT_DOMAINS_NODES``     fleet size for every arm   (default 32)
``FAULT_DOMAINS_DURATION``  campaign seconds           (default 7200)
"""

import json
import os
import pathlib
import subprocess
import sys

from conftest import run_once

NODES = int(os.environ.get("FAULT_DOMAINS_NODES", "32"))
DURATION_S = float(os.environ.get("FAULT_DOMAINS_DURATION", "7200"))
ARRIVALS_PER_HOUR = 240.0
CORRELATED_SEED = 7
CORRELATED_RATE = 0.6
CORRELATED_INTENSITY = 0.6

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "0"
    return env


def _fleet_argv(report_path, *extra):
    return [sys.executable, "-m", "repro", "fleet",
            "--nodes", str(NODES),
            "--duration", str(DURATION_S),
            "--rate", str(ARRIVALS_PER_HOUR),
            "--correlated-seed", str(CORRELATED_SEED),
            "--correlated-rate", str(CORRELATED_RATE),
            "--correlated-intensity", str(CORRELATED_INTENSITY),
            "--domain-defense",
            "--report-json", str(report_path), *extra]


def test_domain_defense_ab(benchmark, emit):
    """Defenses on vs off under one plan: both headline metrics win."""
    from dataclasses import replace

    from repro.fleet import FleetCampaignConfig, FleetConfig
    from repro.fleet.campaign import run_fleet_campaign

    base = FleetCampaignConfig(
        fleet=FleetConfig(n_nodes=NODES, seed=0),
        duration_s=DURATION_S,
        arrivals_per_hour=ARRIVALS_PER_HOUR,
        mean_lifetime_s=1800.0,
        correlated_seed=CORRELATED_SEED,
        correlated_rate_per_hour=CORRELATED_RATE,
        correlated_intensity=CORRELATED_INTENSITY,
        domain_defense=False)

    def harness():
        baseline = run_fleet_campaign(base)
        defended = run_fleet_campaign(
            replace(base, domain_defense=True))
        return baseline, defended

    baseline, defended = run_once(benchmark, harness)
    kinds = sorted({spec.kind.value for spec in base.correlated_plan()})
    b, d = baseline["totals"], defended["totals"]

    emit("fault_domains_ab", "\n".join([
        f"fault-domain defense A/B: {NODES} nodes, "
        f"{int(DURATION_S)} s, correlated seed {CORRELATED_SEED}",
        f"plan kinds: {kinds}",
        f"{'metric':<22}{'baseline':>12}{'defended':>12}",
        f"{'availability':<22}{b['availability']:>12.4f}"
        f"{d['availability']:>12.4f}",
        f"{'sla_violations':<22}{b['sla_violations']:>12}"
        f"{d['sla_violations']:>12}",
        f"{'vm_failures':<22}{b['vm_failures']:>12}"
        f"{d['vm_failures']:>12}",
        f"{'rejected':<22}{b['rejected']:>12}{d['rejected']:>12}",
        f"{'migrations':<22}{b['migrations']:>12}"
        f"{d['migrations']:>12}",
        f"{'domain_demotions':<22}{b['domain_demotions']:>12}"
        f"{d['domain_demotions']:>12}",
    ]))

    assert {"pdu_brownout", "cooling_failure",
            "rack_partition"} <= set(kinds), (
        f"the seeded plan must carry every correlated kind, got {kinds}")
    assert d["availability"] > b["availability"], (
        "domain defenses did not improve availability")
    assert d["sla_violations"] < b["sla_violations"], (
        "domain defenses did not reduce SLA violations")
    assert d["migrations"] > 0, "zone evacuation never moved a VM"
    assert d["domain_demotions"] > 0, (
        "the correlated-demotion guard never fired")
    assert b["migrations"] == 0 and b["domain_demotions"] == 0, (
        "the undefended arm must not run defense machinery")


def test_correlated_identity_across_shards_and_replay(
        benchmark, emit, tmp_path):
    """Shards 1 vs 4, and a SIGKILLed worker, report identical bytes."""
    shards1 = tmp_path / "fault-domains-shards1.json"
    shards4 = tmp_path / "fault-domains-shards4.json"
    killed = tmp_path / "fault-domains-killed.json"

    def harness():
        subprocess.run(
            _fleet_argv(shards1, "--shards", "1"),
            check=True, env=_env(), cwd=_REPO_ROOT,
            stdout=subprocess.DEVNULL, timeout=600)
        subprocess.run(
            _fleet_argv(shards4, "--shards", "4"),
            check=True, env=_env(), cwd=_REPO_ROOT,
            stdout=subprocess.DEVNULL, timeout=600)
        subprocess.run(
            _fleet_argv(killed, "--shards", "4", "--jobs", "2",
                        "--kill-worker-at", "11:0",
                        "--max-worker-restarts", "3"),
            check=True, env=_env(), cwd=_REPO_ROOT,
            stdout=subprocess.DEVNULL, timeout=600)

    run_once(benchmark, harness)

    base_bytes = shards1.read_bytes()
    shard_identical = base_bytes == shards4.read_bytes()
    replay_identical = base_bytes == killed.read_bytes()
    report = json.loads(shards1.read_text())

    emit("fault_domains_identity", "\n".join([
        f"fault-domain identity: {NODES} nodes, correlated seed "
        f"{CORRELATED_SEED}, defense on",
        f"shards 1 == shards 4:      {shard_identical}",
        f"clean == SIGKILL + replay: {replay_identical}",
        f"fault_domains block: {report['fault_domains']['by_kind']}",
    ]))

    assert shard_identical, (
        "correlated chaos leaked the shard split into the report")
    assert replay_identical, (
        "worker SIGKILL replay diverged under correlated chaos")
    assert report["fault_domains"]["defense"] is True


def test_correlated_guard_demotes_rail_in_one_transaction(
        benchmark, emit):
    """K budget breaches inside the window demote every remaining
    adopted core in a single batch — one event, no individual strikes.
    """
    from repro.core import UniServerNode
    from repro.core.events import CorrectableErrorEvent
    from repro.daemons.healthlog import HealthLogConfig
    from repro.eop import EOPPolicy, EOPState

    policy = EOPPolicy.adopt_within_budget().with_overrides(
        error_budget=3, correlated_k=2, correlated_window_s=120.0)

    def harness():
        node = UniServerNode(
            seed=3, eop_policy=policy,
            healthlog_config=HealthLogConfig(error_threshold=100))
        node.pre_deploy()
        node.deploy()
        adopted_before = node.governor.adopted_count()
        # A sagging rail: two cores breach their error budget back to
        # back (below the HealthLog anomaly threshold, so only the
        # governor's own supervision loop sees them).
        for component in ("core1", "core2"):
            for _ in range(3):
                node.bus.publish(CorrectableErrorEvent(
                    timestamp=node.clock.now, source="hw",
                    component=component, detail="brownout"))
        node.governor.step()
        return node, adopted_before

    node, adopted_before = run_once(benchmark, harness)
    events = node.governor.domain_demotion_events
    cores = [r for r in node.governor.records() if r.kind == "core"]
    batch = [r for r in cores
             if r.component not in ("core1", "core2")]

    emit("fault_domains_guard", "\n".join([
        f"correlated guard: {adopted_before} components adopted, "
        f"K=2 breaches in 120 s",
        f"guard firings (transactions): {len(events)}",
        f"batch-demoted components: "
        f"{events[0]['components'] if events else []}",
        f"individual strikes on the batch: "
        f"{[r.demotions for r in batch]}",
    ]))

    assert len(events) == 1, (
        "the guard must fire exactly once per correlated episode")
    assert events[0]["kind"] == "core"
    assert all(r.state is EOPState.DEMOTED for r in cores), (
        "the whole rail must come off its extended points")
    assert set(events[0]["components"]) == \
        {r.component for r in batch}, (
        "the batch must cover exactly the not-yet-demoted rail members")
    assert all(r.demotions == 0 for r in batch), (
        "a domain fault must not charge individual demotion strikes")
    assert node.metrics.counter("eop.correlated_demotions") == 1.0
