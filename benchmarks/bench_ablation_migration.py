"""Bench A4 — ablation: proactive vs reactive failure handling in the rack.

Section 5.B: UniServer's OpenStack extension predicts node failures and
"proactively migrate[s] the running workloads on the healthy nodes".
This bench runs a 8-node rack where some nodes operate at recklessly
deep margins (guaranteed to start crashing), hosting silver-tier VMs,
and compares fleet availability and SLA violations between:

* **proactive** — the threshold failure predictor evacuates at-risk
  nodes before they wedge;
* **reactive** — VMs ride their node down, restart after node recovery.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.cloudmgr import CloudController, SILVER, build_rack
from repro.core.clock import SimClock
from repro.eop import EOPPolicy
from repro.hypervisor.vm import VirtualMachine
from repro.workloads import spec_workload

N_NODES = 8
N_RISKY = 3
N_VMS = 8
DURATION_S = 120.0


def _run_rack(proactive):
    clock = SimClock()
    # Full UniServer nodes: characterised, Predictor trained, isolation
    # reviews running — but deployed at nominal (margins applied below
    # by hand, not from the EOP tables).
    nodes = build_rack(N_NODES, clock=clock, seed=100,
                       characterize=True,
                       eop_policy=EOPPolicy.conservative())
    cloud = CloudController(clock, nodes,
                            proactive_migration=proactive,
                            node_recovery_s=60.0)
    for i in range(N_VMS):
        vm = VirtualMachine(
            name=f"vm{i}",
            workload=spec_workload("hmmer", duration_cycles=1e13))
        cloud.launch(vm, SILVER)
    # Push the first N_RISKY nodes to a hopeless operating point: below
    # static Vmin, so every run on them crashes.
    for node in nodes[:N_RISKY]:
        nominal = node.platform.chip.spec.nominal
        node.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.70))
    cloud.run(DURATION_S)
    return cloud


def test_ablation_proactive_migration(benchmark, emit):
    def both():
        return _run_rack(proactive=True), _run_rack(proactive=False)

    proactive, reactive = run_once(benchmark, both)

    def summarise(cloud):
        return {
            "availability": cloud.fleet_availability(),
            "violations": cloud.tracker.violations_total(),
            "evacuations": cloud.stats.evacuations,
            "migrations": len(cloud.migrations.records),
            "vm_crashes": sum(
                n.hypervisor.stats.vm_crashes_masked
                for n in cloud.node_list()),
        }

    p, r = summarise(proactive), summarise(reactive)
    table = render_table(
        f"A4: proactive vs reactive failure handling "
        f"({N_NODES} nodes, {N_RISKY} driven below Vmin, {N_VMS} "
        f"silver VMs, {DURATION_S:.0f} s)",
        ["metric", "proactive", "reactive"],
        [
            ["fleet availability", f"{p['availability']:.4f}",
             f"{r['availability']:.4f}"],
            ["SLA violations", p["violations"], r["violations"]],
            ["evacuations", p["evacuations"], r["evacuations"]],
            ["live migrations", p["migrations"], r["migrations"]],
            ["VM crashes masked", p["vm_crashes"], r["vm_crashes"]],
        ],
    )
    emit("ablation_migration", table)

    assert p["evacuations"] > 0
    assert r["evacuations"] == 0
    assert p["availability"] >= r["availability"]
    assert p["vm_crashes"] <= r["vm_crashes"]
