"""Bench T3 — paper Table 3: energy-efficiency and TCO improvements.

Regenerates the 2019 projection over a baseline ARM micro-server: the
four EE sources (scaling, sw maturity, fog, margins), the overall EE
factor, and the TCO improvements computed through the cost model.

Paper row (garbled scan, see EXPERIMENTS.md): sources 1.15/4/2/3 with a
printed overall of 36 and TCO 1.5; the prose anchors the EE-only TCO
improvement at 1.15x.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.tco import (
    BASELINE_ARM_SERVER,
    TCOModel,
    project_table3,
)


def test_table3_tco_projection(benchmark, emit):
    projection = run_once(benchmark, project_table3)

    rows = [[name, f"{value:.3g}x"] for name, value in projection.rows()]
    table = render_table(
        "Table 3: Energy efficiency and TCO improvement estimations "
        "(paper: sources 1.15/4/2/3, TCO 1.15x EE-only, 1.5x overall)",
        ["source / metric", "factor"],
        rows,
    )

    breakdown = TCOModel().breakdown(BASELINE_ARM_SERVER)
    detail = render_table(
        "Baseline per-server lifetime TCO breakdown (USD)",
        ["component", "USD"],
        [[name, round(value)] for name, value in breakdown.rows()],
    )
    emit("table3_tco", table + "\n\n" + detail)

    assert projection.sources.overall() > 20.0
    assert 1.05 < projection.ee_only_tco < 1.3
    assert projection.overall_tco > projection.ee_only_tco


def test_table3_yield_sensitivity(benchmark, emit):
    """Paper: 'The actual TCO improvement will be even more because of
    lower chip cost due to higher yield' — sweep the recovered yield."""

    def sweep():
        return [
            (y, project_table3(recovered_yield=y).overall_tco)
            for y in (0.85, 0.90, 0.95, 1.00)
        ]

    rows = run_once(benchmark, sweep)
    table = render_table(
        "Overall TCO improvement vs recovered binning yield",
        ["recovered yield", "overall TCO improvement"],
        [[f"{y:.2f}", f"{tco:.3f}x"] for y, tco in rows],
    )
    emit("table3_yield_sensitivity", table)

    improvements = [tco for _, tco in rows]
    assert improvements == sorted(improvements)
