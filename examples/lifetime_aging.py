#!/usr/bin/env python
"""Five years in the life of a UniServer node: aging and re-characterisation.

BTI aging raises every core's Vmin while the node runs undervolted and
warm; the StressLog's periodic re-characterisation (Section 3.D) is what
keeps deployment-time margins from silently going stale.  This example
simulates two identical nodes across five accelerated years — one
re-characterising quarterly, one frozen at its deployment margins — and
prints the diverging trajectories.

Run with::

    python examples/lifetime_aging.py
"""

from repro.analysis import render_table
from repro.core.lifetime import LifetimeSimulator


def simulate(cadence_months, label):
    simulator = LifetimeSimulator(
        recharacterize_every_months=cadence_months,
        operating_temperature_c=65.0,
        seed=4,
    )
    result = simulator.run(years=5.0, epoch_months=6.0)
    print(f"\n=== {label} ===")
    rows = [
        [f"{e.age_years:.1f}",
         f"{e.mean_vmin_drift_mv:.1f}",
         f"{e.mean_margin_headroom_mv:.1f}",
         f"{e.crash_rate * 100:.1f}%",
         f"{e.mean_relative_power:.3f}"]
        for e in result.epochs
    ]
    print(render_table(
        label,
        ["age (y)", "Vmin drift (mV)", "headroom (mV)",
         "crash rate", "rel. power"],
        rows,
    ))
    unsafe = result.first_unsafe_epoch(0.01)
    if unsafe is None:
        print("verdict: safe for the whole deployment "
              f"({result.total_recharacterizations()} StressLog cycles)")
    else:
        print(f"verdict: UNSAFE from year {unsafe.age_years:.1f} "
              f"(crash rate {unsafe.crash_rate * 100:.1f}%) — margins "
              "characterised at deployment no longer hold")
    return result


def main() -> None:
    periodic = simulate(3.0, "Quarterly re-characterisation (UniServer)")
    frozen = simulate(None, "Frozen deployment margins (ablated)")

    print("\n=== The trade ===")
    power_cost = (periodic.final().mean_relative_power
                  - frozen.final().mean_relative_power)
    print(f"tracking aging costs {power_cost * 100:.1f}% extra relative "
          "power at end of life (margins retreat as silicon ages),")
    print(f"and buys a {frozen.final().crash_rate * 100:.1f}% -> "
          f"{periodic.final().crash_rate * 100:.1f}% crash-rate "
          "reduction under worst-case stress.")


if __name__ == "__main__":
    main()
