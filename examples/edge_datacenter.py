#!/usr/bin/env python
"""An edge micro-datacenter: rack orchestration under failure prediction.

The paper's motivating deployment: micro-servers at the edge, managed by
the OpenStack-like layer with SLA tiers, node failure prediction and
proactive migration.  This example:

1. builds an 6-node rack and launches a mixed gold/silver/bronze fleet
   of VMs (interactive services and batch work);
2. pushes two nodes toward failure (deep undervolts, as if their silicon
   aged past its characterised margins);
3. watches the controller evacuate the at-risk nodes proactively;
4. reports per-tier availability and the TCO/edge-latency story.

Run with::

    python examples/edge_datacenter.py
"""

from repro.analysis import render_table
from repro.cloudmgr import (
    BRONZE,
    CloudController,
    ComputeNode,
    GOLD,
    SILVER,
)
from repro.core.clock import SimClock
from repro.hypervisor.vm import VirtualMachine
from repro.tco import EdgeServiceModel, project_table3
from repro.workloads import ldbc_workload, spec_workload


def main() -> None:
    clock = SimClock()
    nodes = [ComputeNode(f"edge{i}", clock, seed=200 + i)
             for i in range(6)]
    cloud = CloudController(clock, nodes, proactive_migration=True,
                            node_recovery_s=120.0)

    print("=== Launching the VM fleet ===")
    fleet = [
        ("web-frontend", GOLD, ldbc_workload(scale_factor=1.0)),
        ("graph-db", GOLD, ldbc_workload(scale_factor=2.0)),
        ("api-gateway", SILVER, spec_workload("hmmer",
                                              duration_cycles=1e13)),
        ("analytics", SILVER, spec_workload("milc",
                                            duration_cycles=1e13)),
        ("batch-compress", BRONZE, spec_workload("bzip2",
                                                 duration_cycles=1e13)),
        ("batch-encode", BRONZE, spec_workload("h264ref",
                                               duration_cycles=1e13)),
    ]
    for name, sla, workload in fleet:
        vm = VirtualMachine(name=name, workload=workload)
        placement = cloud.launch(vm, sla)
        print(f"  {name:16s} [{sla.name:6s}] -> {placement.node}")

    print("\n=== 60 s of healthy operation ===")
    cloud.run(60.0)
    print(cloud.describe())

    print("\n=== Two nodes drift past their margins ===")
    for node in nodes[:2]:
        nominal = node.platform.chip.spec.nominal
        node.platform.set_all_core_points(
            nominal.with_voltage(nominal.voltage_v * 0.72))
        print(f"  {node.name}: cores now at "
              f"{nominal.voltage_v * 0.72:.3f} V (below safe margins)")
    cloud.run(120.0)

    print(f"\nevacuations triggered: {cloud.stats.evacuations}")
    for record in cloud.migrations.records:
        print(f"  {record.vm_name}: {record.source} -> "
              f"{record.destination} "
              f"(downtime {record.downtime_s * 1e3:.0f} ms, "
              f"{'proactive' if record.proactive else 'reactive'})")

    print("\n=== Per-VM availability ===")
    rows = []
    for name, sla, _ in fleet:
        record = cloud.tracker.record(name)
        rows.append([
            name, sla.name, f"{record.availability:.5f}",
            f"{sla.availability_target:.4f}",
            "OK" if record.meets_target else "VIOLATED",
            record.migrations,
        ])
    print(render_table(
        "SLA compliance after the incident",
        ["vm", "tier", "achieved", "target", "status", "migrations"],
        rows,
    ))

    print("\n=== Why the edge? (Section 6.D + Table 3) ===")
    comparison = EdgeServiceModel().compare()
    edge_point = comparison["edge"]
    print(f"  latency budget allows {edge_point.frequency_fraction * 100:.0f}% "
          f"frequency at {edge_point.voltage_fraction * 100:.0f}% voltage")
    print(f"  -> {edge_point.energy_saving * 100:.0f}% energy and "
          f"{edge_point.power_saving * 100:.0f}% power savings vs peak")
    projection = project_table3()
    print(f"  projected TCO improvement: {projection.ee_only_tco:.2f}x "
          f"from energy alone, {projection.overall_tco:.2f}x overall")


if __name__ == "__main__":
    main()
