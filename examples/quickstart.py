#!/usr/bin/env python
"""Quickstart: bring up one UniServer node and run VMs at extended margins.

The five-minute tour of the public API:

1. build a node (ARM SoC + 4 refresh domains, one reliable);
2. pre-deployment StressLog characterisation reveals the EOPs;
3. deploy — the hypervisor adopts every margin within the failure budget;
4. train the Predictor and ask it for per-workload advice;
5. run VMs and compare node power against the conservative baseline.

Run with::

    python examples/quickstart.py
"""

from repro import UniServerNode
from repro.hypervisor import make_vm_fleet
from repro.workloads import spec_workload


def main() -> None:
    node = UniServerNode(seed=42)

    print("=== 1. The platform ===")
    print(node.platform.describe())

    print("\n=== 2. Pre-deployment StressLog characterisation ===")
    margins = node.pre_deploy()
    for margin in margins.margins:
        print(f"  {margin.component:10s} -> {margin.safe_point.describe()}"
              f"  (p_fail {margin.failure_probability:.1e}, "
              f"relative power {margin.relative_power:.2f})")

    print("\n=== 3. Deploy: hypervisor adopts the safe EOPs ===")
    changed = node.deploy()
    print(f"  components reconfigured: {', '.join(changed)}")

    print("\n=== 4. Predictor advice ===")
    node.train_predictor()
    for name in ("mcf", "zeusmp"):
        advice = node.predictor.advise(
            spec_workload(name), mode="high-performance",
            failure_budget=1e-3)
        print(f"  {name:8s}: {advice.point.describe()}  "
              f"(p_fail {advice.predicted_failure_probability:.1e})")

    print("\n=== 5. Run VMs at the extended operating points ===")
    vms = make_vm_fleet(spec_workload("hmmer", duration_cycles=5e10), 4)
    for vm in vms:
        node.launch_vm(vm)
    node.run(60.0)
    for vm in vms:
        print(f"  {vm.name}: {vm.progress * 100:.0f}% complete, "
              f"state {vm.state.value}")

    report = node.energy_report()
    print(f"\nnode power at nominal: {report.nominal_power_w:.1f} W")
    print(f"node power at EOP:     {report.eop_power_w:.1f} W")
    print(f"energy saving:         {report.saving_fraction * 100:.1f}%")
    snapshot = node.snapshot()
    print(f"HealthLog: ce={snapshot.correctable_errors} "
          f"ue={snapshot.uncorrectable_errors} "
          f"crashes={snapshot.crashes}")


if __name__ == "__main__":
    main()
