#!/usr/bin/env python
"""DRAM refresh relaxation with a reliable kernel domain (Section 6.B).

Walks the paper's memory experiment end to end:

1. a 4-channel server memory with the kernel pinned to a reliable
   domain at the nominal 64 ms refresh;
2. a refresh sweep with random patterns — error counts, cumulative BER
   and power at each step;
3. the SECDED safety argument, demonstrated on real codewords;
4. what happens *without* the reliable domain (the crash the paper's
   isolation avoided).

Run with::

    python examples/dram_relaxation.py
"""

from repro.analysis import render_table
from repro.characterization import RefreshRelaxationCampaign
from repro.core.clock import SimClock
from repro.hardware import build_uniserver_node, standard_server_memory
from repro.hardware.ecc import (
    DecodeStatus,
    SECDED_BER_CAPABILITY,
    decode,
    encode,
    inject_bit_flips,
)
from repro.hypervisor import Hypervisor, HypervisorConfig, make_vm_fleet
from repro.workloads import ldbc_workload


def sweep() -> None:
    print("=== Refresh-relaxation sweep (channel1, random patterns) ===")
    memory = standard_server_memory(seed=5)
    result = RefreshRelaxationCampaign(memory, "channel1").run()
    rows = [
        [f"{step.refresh_interval_s * 1e3:.0f} ms",
         f"{step.relaxation_factor:.1f}x",
         step.observed_errors,
         f"{step.cumulative_ber:.2e}",
         f"{step.refresh_power_w:.3f} W"]
        for step in result.steps
    ]
    print(render_table(
        "Refresh sweep on an 8 GB domain",
        ["interval", "vs 64 ms", "errors", "BER", "refresh power"],
        rows,
    ))
    print(f"longest error-free interval: "
          f"{result.max_error_free_interval_s():.1f} s "
          f"(paper: 1.5 s, and 5 s stays at BER ~1e-9)")


def secded_demo() -> None:
    print("\n=== SECDED(72,64) on real codewords ===")
    word = 0xFEEDFACECAFEBEEF
    codeword = encode(word)
    single = decode(inject_bit_flips(codeword, [17]))
    double = decode(inject_bit_flips(codeword, [17, 42]))
    print(f"  data word:          0x{word:016X}")
    print(f"  single-bit flip ->  {single.status.value} "
          f"(data intact: {single.data == word})")
    print(f"  double-bit flip ->  {double.status.value} "
          f"(flagged, not miscorrected)")
    print(f"  SECDED handles raw BERs up to {SECDED_BER_CAPABILITY:.0e}; "
          "the 5 s refresh point sits three orders below it")


def reliable_domain_story() -> None:
    print("\n=== Why the kernel lives in the reliable domain ===")
    for use_reliable in (True, False):
        clock = SimClock()
        platform = build_uniserver_node()
        hypervisor = Hypervisor(
            platform, clock,
            config=HypervisorConfig(use_reliable_domain=use_reliable),
            seed=3,
        )
        hypervisor.boot()
        platform.memory.relax_all(40.0,
                                  keep_reliable_nominal=use_reliable)
        for vm in make_vm_fleet(ldbc_workload(scale_factor=8.0), 3):
            hypervisor.create_vm(vm)
        for _ in range(300):
            if hypervisor.crashed:
                break
            hypervisor.tick()
            clock.advance_by(1.0)
        label = "ON " if use_reliable else "OFF"
        print(f"  reliable domain {label}: "
              f"host crashes={hypervisor.stats.host_crashes}, "
              f"guest corruptions masked="
              f"{hypervisor.stats.vm_sdc_events} "
              f"(40 s refresh, 300 s of load)")


def main() -> None:
    sweep()
    secded_demo()
    reliable_domain_story()


if __name__ == "__main__":
    main()
