#!/usr/bin/env python
"""Hypervisor criticality analysis and selective protection (Figure 4).

Runs the SDC fault-injection campaign over all 16 820 statically
allocated hypervisor objects, derives the sensitive categories, and
shows how selective checkpointing driven by that analysis converts fatal
corruptions into recoveries at a fraction of full protection's memory
cost — the paper's "educated checking and selective checkpointing".

Run with::

    python examples/fault_injection_study.py
"""

from repro.analysis import render_bar_chart, render_table
from repro.hypervisor import (
    CheckpointManager,
    FaultInjectionCampaign,
    ObjectCatalog,
    run_figure4_campaign,
)


def main() -> None:
    print("=== Figure 4 campaign: 16 820 objects x 5 executions ===")
    result = run_figure4_campaign(seed=7)

    categories = [row.category for row in result.rows]
    print(render_bar_chart(
        "Fatal hypervisor failures WITH workload",
        categories,
        [float(row.failures_loaded) for row in result.rows],
    ))
    print()
    print(render_bar_chart(
        "Fatal hypervisor failures WITHOUT workload",
        categories,
        [float(row.failures_unloaded) for row in result.rows],
    ))
    print(f"\nload amplification: {result.load_amplification():.1f}x "
          "(paper: an order of magnitude)")
    sensitive = result.sensitive_categories(4)
    print(f"sensitive categories: {', '.join(sensitive)} "
          f"(load-invariant: {result.sensitivity_is_load_invariant(4)})")

    print("\n=== Selective protection driven by the analysis ===")
    catalog = ObjectCatalog(seed=7)
    campaign = FaultInjectionCampaign(catalog=catalog, seed=7)
    selective = CheckpointManager(catalog, protected_categories=sensitive)
    everything = CheckpointManager(catalog,
                                   protected_categories=catalog.categories())

    unprotected_report = campaign.run(loaded=True)
    selective_report = campaign.run(loaded=True, checkpoints=selective)
    full_report = campaign.run(loaded=True, checkpoints=everything)

    print(render_table(
        "Protection strategies compared",
        ["strategy", "fatal", "recovered", "crucial coverage",
         "memory overhead"],
        [
            ["none", unprotected_report.total_fatal, 0, "0%", "0 MB"],
            ["selective (analysis-driven)",
             selective_report.total_fatal,
             selective_report.total_recovered,
             f"{selective.coverage_fraction() * 100:.0f}%",
             f"{selective.memory_overhead_mb():.0f} MB"],
            ["everything",
             full_report.total_fatal,
             full_report.total_recovered,
             f"{everything.coverage_fraction() * 100:.0f}%",
             f"{everything.memory_overhead_mb():.0f} MB"],
        ],
    ))
    saved = (1 - selective.memory_overhead_mb()
             / everything.memory_overhead_mb())
    prevented = (1 - selective_report.total_fatal
                 / unprotected_report.total_fatal)
    print(f"\nselective checkpointing prevents "
          f"{prevented * 100:.0f}% of fatal corruptions using "
          f"{saved * 100:.0f}% less checkpoint memory than full coverage")


if __name__ == "__main__":
    main()
