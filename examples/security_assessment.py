#!/usr/bin/env python
"""Security assessment of a node operating at Extended Operating Points.

Paper innovation (viii): operating beyond nominal margins opens attack
surface a conservative platform does not have.  This example assesses
three configurations against the EOP threat catalog, plans low-cost
countermeasures for the risky one, and demonstrates the runtime stress
throttler catching a power-virus guest while leaving real workloads
untouched.

Run with::

    python examples/security_assessment.py
"""

from repro.analysis import render_table
from repro.security import (
    NodeExposure,
    StressThrottler,
    ThreatAnalyzer,
    plan_countermeasures,
)
from repro.workloads import CPU_POWER_VIRUS, spec_suite

CONFIGURATIONS = {
    "conservative single-tenant": NodeExposure(
        voltage_margin_used=0.0, refresh_relaxation=1.0,
        multi_tenant=False, sensors_exposed_to_guests=False,
        margin_interface_authenticated=True,
    ),
    "moderate EOP, multi-tenant": NodeExposure(
        voltage_margin_used=0.08, refresh_relaxation=23.4,
        multi_tenant=True, sensors_exposed_to_guests=False,
        margin_interface_authenticated=True,
    ),
    "aggressive EOP, open telemetry": NodeExposure(
        voltage_margin_used=0.18, refresh_relaxation=78.0,
        multi_tenant=True, sensors_exposed_to_guests=True,
        margin_interface_authenticated=False,
    ),
}


def main() -> None:
    analyzer = ThreatAnalyzer()

    print("=== Risk registers ===")
    for name, exposure in CONFIGURATIONS.items():
        entries = analyzer.assess(exposure)
        print(render_table(
            f"{name} (aggregate risk "
            f"{analyzer.overall_risk(exposure):.3f})",
            ["threat", "surface", "likelihood", "risk", "severity"],
            [[e.threat.name, e.threat.surface,
              f"{e.likelihood:.3f}", f"{e.risk:.3f}", e.severity]
             for e in entries],
        ))
        print()

    print("=== Countermeasure plan for the aggressive node ===")
    aggressive = CONFIGURATIONS["aggressive EOP, open telemetry"]
    plan = plan_countermeasures(aggressive, risk_target=0.1)
    for cm in plan.countermeasures:
        print(f"  deploy: {cm.name}")
        print(f"          {cm.description}")
    print(f"residual risk: {plan.residual_risk:.3f} "
          f"(performance cost {plan.total_performance_cost * 100:.1f}%, "
          f"energy cost {plan.total_energy_cost * 100:.1f}% — low cost, "
          "per the paper's constraint)")

    print("\n=== Runtime stress-attack detection ===")
    throttler = StressThrottler(frequency_cap_fraction=0.6)
    for workload in spec_suite():
        flagged = throttler.review_guest(workload.name, workload.profile)
        assert not flagged, "a real benchmark must never be throttled"
    print("  8/8 SPEC-like guests pass unthrottled")
    flagged = throttler.review_guest("suspicious-guest",
                                     CPU_POWER_VIRUS.profile)
    capped = throttler.effective_profile("suspicious-guest",
                                         CPU_POWER_VIRUS.profile)
    print(f"  power-virus guest flagged: {flagged}; droop intensity "
          f"{CPU_POWER_VIRUS.profile.droop_intensity:.2f} -> "
          f"{capped.droop_intensity:.2f} under the frequency cap")


if __name__ == "__main__":
    main()
