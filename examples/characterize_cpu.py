#!/usr/bin/env python
"""Characterising a processor: the Table 2 methodology, step by step.

Reproduces the paper's CPU campaign interactively on the two modelled
Intel parts: voltage sweeps per benchmark and core, crash points, cache
ECC error onset, and the GA-evolved stress virus that bounds them all.

Run with::

    python examples/characterize_cpu.py
"""

from repro.analysis import render_table
from repro.characterization import UndervoltingCampaign
from repro.hardware import (
    ChipModel,
    intel_i5_4200u_spec,
    intel_i7_3970x_spec,
)
from repro.workloads import spec_suite
from repro.workloads.genetic import GAConfig, evolve_virus_for_chip


def characterize(spec_fn, seed: int) -> None:
    chip = ChipModel(spec_fn(), seed=seed)
    suite = spec_suite()
    print(f"\n### {chip.name} "
          f"({chip.spec.nominal.describe()}, {chip.n_cores} cores) ###")

    result = UndervoltingCampaign(chip, suite).run()

    rows = []
    for benchmark in result.benchmarks():
        per_core = [
            f"-{result.mean_crash_offset(benchmark, c) * 100:.1f}%"
            for c in result.cores()
        ]
        rows.append([benchmark,
                     f"-{result.mean_crash_offset(benchmark) * 100:.1f}%",
                     f"{result.core_to_core_spread(benchmark) * 100:.1f}%",
                     " ".join(per_core)])
    print(render_table(
        "Per-benchmark crash offsets (mean over 3 runs)",
        ["benchmark", "mean", "core-to-core", "per-core"],
        rows,
    ))

    print(render_table(
        "Table 2 summary",
        ["metric", "min", "max"],
        result.table2_rows(),
    ))
    onset = result.mean_ecc_onset_margin_v()
    if onset is not None:
        print(f"cache ECC errors appear on average "
              f"{onset * 1e3:.1f} mV above the crash point")
    else:
        print("this part does not expose cache ECC corrections")

    print("evolving a diagnostic stress virus (GA, 25 generations)...")
    virus = evolve_virus_for_chip(
        chip, GAConfig(population_size=30, generations=25), seed=seed)
    worst_spec = max(
        max(core.crash_voltage_v(w.profile) for core in chip.cores)
        for w in suite
    )
    virus_crash = max(
        core.crash_voltage_v(virus.profile) for core in chip.cores)
    print(f"worst SPEC-induced crash voltage:  {worst_spec:.4f} V")
    print(f"GA-virus-induced crash voltage:    {virus_crash:.4f} V "
          f"(+{(virus_crash - worst_spec) * 1e3:.1f} mV of hidden margin "
          "revealed)")


def main() -> None:
    characterize(intel_i5_4200u_spec, seed=11)
    characterize(intel_i7_3970x_spec, seed=22)


if __name__ == "__main__":
    main()
