"""Analysis helpers: summary statistics and ASCII table/figure rendering."""

from .stats import (
    Summary,
    exponential_moving_average,
    geometric_mean,
    quantize,
    summarize,
    wilson_interval,
)
from .tables import (
    render_bar_chart,
    render_histogram,
    render_series,
    render_table,
)

from .validation import (
    ClaimResult,
    PaperClaim,
    Tolerance,
    ValidationReport,
    validate,
)

__all__ = [
    "ClaimResult", "PaperClaim", "Tolerance", "ValidationReport", "validate",
    "Summary", "exponential_moving_average", "geometric_mean", "quantize",
    "summarize", "wilson_interval",
    "render_bar_chart", "render_histogram", "render_series", "render_table",
]
