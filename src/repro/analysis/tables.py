"""ASCII table and chart rendering for benchmark harness output.

Every bench regenerates a paper table or figure as text; these helpers
keep the formatting consistent: fixed-width tables with a title row, and
horizontal bar charts for figure-shaped results.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, width: int) -> str:
    """Format one cell right-aligned for numbers, left-aligned for text."""
    if isinstance(value, float):
        text = f"{value:.4g}"
        return text.rjust(width)
    if isinstance(value, int):
        return str(value).rjust(width)
    return str(value).ljust(width)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]],
                 min_width: int = 6) -> str:
    """Render a titled fixed-width ASCII table."""
    rows = [list(r) for r in rows]
    n_cols = len(headers)
    for row in rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells, header has {n_cols}"
            )
    widths = []
    for col in range(n_cols):
        cells = [headers[col]] + [
            f"{row[col]:.4g}" if isinstance(row[col], float) else str(row[col])
            for row in rows
        ]
        widths.append(max(min_width, max(len(c) for c in cells)))

    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = [title, sep]
    header_line = "|".join(
        f" {headers[i].ljust(widths[i])} " for i in range(n_cols)
    )
    lines.append(f"|{header_line}|")
    lines.append(sep)
    for row in rows:
        line = "|".join(
            f" {format_cell(row[i], widths[i])} " for i in range(n_cols)
        )
        lines.append(f"|{line}|")
    lines.append(sep)
    return "\n".join(lines)


def render_bar_chart(title: str, labels: Sequence[str],
                     values: Sequence[float], width: int = 50,
                     unit: str = "") -> str:
    """Render a horizontal ASCII bar chart (figure-shaped output)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return f"{title}\n(no data)"
    max_value = max(max(values), 1e-12)
    label_width = max(len(l) for l in labels)
    lines = [title]
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / max_value))
        bar = "#" * bar_len
        lines.append(
            f"  {label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)


def render_histogram(title: str, bin_edges: Sequence[float],
                     counts: Sequence[int], width: int = 50,
                     fmt: str = "{:.3f}") -> str:
    """Render a histogram as an ASCII bar chart with range labels."""
    if len(counts) != len(bin_edges) - 1:
        raise ValueError("counts must have len(bin_edges) - 1 entries")
    labels = [
        f"[{fmt.format(bin_edges[i])}, {fmt.format(bin_edges[i + 1])})"
        for i in range(len(counts))
    ]
    return render_bar_chart(title, labels, [float(c) for c in counts],
                            width=width)


def render_series(title: str, x_label: str, y_label: str,
                  points: Sequence[tuple], fmt_x: str = "{:.4g}",
                  fmt_y: str = "{:.4g}") -> str:
    """Render an (x, y) series as a two-column listing (figure data)."""
    lines = [title, f"  {x_label:>16}  {y_label}"]
    for x, y in points:
        lines.append(f"  {fmt_x.format(x):>16}  {fmt_y.format(y)}")
    return "\n".join(lines)
