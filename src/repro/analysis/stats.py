"""Small statistics helpers shared by campaigns and benches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def range(self) -> float:
        """Max minus min of the sample."""
        return self.maximum - self.minimum


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        n=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedups, ratios)."""
    arr = np.asarray(values, dtype=float)
    if len(arr) == 0:
        raise ValueError("cannot average an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def quantize(value: float, step: float) -> float:
    """Snap a value to the measurement grid (e.g. a 5 mV voltage step)."""
    if step <= 0:
        raise ValueError("step must be positive")
    return round(value / step) * step


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used when reporting measured failure probabilities from a finite
    number of stress runs.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denom = 1 + z ** 2 / trials
    center = (p + z ** 2 / (2 * trials)) / denom
    half = z * math.sqrt(
        p * (1 - p) / trials + z ** 2 / (4 * trials ** 2)
    ) / denom
    return max(0.0, center - half), min(1.0, center + half)


def exponential_moving_average(values: Sequence[float],
                               alpha: float = 0.3) -> List[float]:
    """EMA smoothing used by telemetry consumers."""
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    out: List[float] = []
    state: Optional[float] = None
    for v in values:
        state = v if state is None else alpha * v + (1 - alpha) * state
        out.append(state)
    return out
