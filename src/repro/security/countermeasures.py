"""Low-cost countermeasures for EOP-specific threats.

Each countermeasure targets one attack surface from
:mod:`repro.security.threats` and carries a cost model (performance and
energy overhead), because the paper's constraint is that protections stay
*low cost* — a countermeasure that eats the EOP savings defeats the
purpose.  :func:`plan_countermeasures` picks the cheapest set that brings
a node's residual risk under a target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..workloads.base import StressProfile
from .threats import (
    NodeExposure,
    RiskEntry,
    Threat,
    ThreatAnalyzer,
    looks_like_stress_attack,
)


@dataclass(frozen=True)
class Countermeasure:
    """One deployable mitigation."""

    name: str
    surface: str
    #: Multiplier applied to the likelihood of threats on the surface.
    likelihood_reduction: float
    #: Performance overhead (fraction of throughput lost).
    performance_cost: float
    #: Energy overhead (fraction of the EOP saving given back).
    energy_cost: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.likelihood_reduction <= 1:
            raise ConfigurationError("reduction must be in [0, 1]")
        if self.performance_cost < 0 or self.energy_cost < 0:
            raise ConfigurationError("costs must be >= 0")


STRESS_THROTTLER = Countermeasure(
    name="per-VM stress throttling",
    surface="voltage",
    likelihood_reduction=0.08,
    performance_cost=0.01,
    energy_cost=0.02,
    description=(
        "HealthLog-driven detector: guests sustaining virus-like droop "
        "signatures are frequency-capped; EOP nodes keep a dynamic guard "
        "margin while any guest is throttled."
    ),
)

REFRESH_GUARD = Countermeasure(
    name="activation-rate refresh guard",
    surface="refresh",
    likelihood_reduction=0.10,
    performance_cost=0.005,
    energy_cost=0.05,
    description=(
        "Row-activation counters temporarily restore nominal refresh on "
        "banks seeing adversarial activation patterns."
    ),
)

SENSOR_QUANTIZER = Countermeasure(
    name="sensor access control and quantisation",
    surface="sensors",
    likelihood_reduction=0.05,
    performance_cost=0.0,
    energy_cost=0.0,
    description=(
        "Guests get coarse, delayed, per-VM-normalised telemetry; raw "
        "per-component sensors stay host-only."
    ),
)

INTERFACE_AUTH = Countermeasure(
    name="authenticated margin interfaces",
    surface="interface",
    likelihood_reduction=0.05,
    performance_cost=0.0,
    energy_cost=0.0,
    description=(
        "Margin vectors are signed by the StressLog and verified by the "
        "hypervisor before adoption; out-of-range points are rejected."
    ),
)

COUNTERMEASURE_CATALOG = (
    STRESS_THROTTLER, REFRESH_GUARD, SENSOR_QUANTIZER, INTERFACE_AUTH,
)


@dataclass(frozen=True)
class MitigationPlan:
    """A chosen countermeasure set and its residual risk."""

    countermeasures: Tuple[Countermeasure, ...]
    residual_risk: float
    total_performance_cost: float
    total_energy_cost: float


def residual_risk(analyzer: ThreatAnalyzer, exposure: NodeExposure,
                  deployed: Sequence[Countermeasure]) -> float:
    """Aggregate risk with the given countermeasures deployed."""
    reduction: Dict[str, float] = {}
    for cm in deployed:
        reduction[cm.surface] = min(
            reduction.get(cm.surface, 1.0), cm.likelihood_reduction
        )
    survival = 1.0
    for entry in analyzer.assess(exposure):
        factor = reduction.get(entry.threat.surface, 1.0)
        survival *= 1.0 - entry.risk * factor
    return 1.0 - survival


def plan_countermeasures(exposure: NodeExposure,
                         risk_target: float = 0.05,
                         analyzer: Optional[ThreatAnalyzer] = None,
                         catalog: Sequence[Countermeasure]
                         = COUNTERMEASURE_CATALOG) -> MitigationPlan:
    """Greedy cheapest-first selection until the risk target is met.

    Countermeasures are added in increasing (performance + energy) cost
    order; selection stops as soon as the residual risk drops under the
    target, keeping the deployed set minimal.
    """
    if not 0 < risk_target < 1:
        raise ConfigurationError("risk target must be in (0, 1)")
    analyzer = analyzer or ThreatAnalyzer()
    chosen: List[Countermeasure] = []
    remaining = sorted(
        catalog, key=lambda cm: cm.performance_cost + cm.energy_cost
    )
    risk = residual_risk(analyzer, exposure, chosen)
    for cm in remaining:
        if risk <= risk_target:
            break
        candidate = chosen + [cm]
        new_risk = residual_risk(analyzer, exposure, candidate)
        if new_risk < risk:
            chosen = candidate
            risk = new_risk
    return MitigationPlan(
        countermeasures=tuple(chosen),
        residual_risk=risk,
        total_performance_cost=sum(c.performance_cost for c in chosen),
        total_energy_cost=sum(c.energy_cost for c in chosen),
    )


class StressThrottler:
    """Runtime enforcement of the stress-throttling countermeasure."""

    def __init__(self, frequency_cap_fraction: float = 0.7) -> None:
        if not 0 < frequency_cap_fraction <= 1:
            raise ConfigurationError("cap must be in (0, 1]")
        self.frequency_cap_fraction = frequency_cap_fraction
        self.throttled: List[str] = []

    def review_guest(self, vm_name: str,
                     profile: StressProfile) -> bool:
        """Throttle a guest whose profile looks like a stress attack.

        Returns ``True`` when the guest was (or stays) throttled.
        """
        if looks_like_stress_attack(profile):
            if vm_name not in self.throttled:
                self.throttled.append(vm_name)
            return True
        if vm_name in self.throttled:
            self.throttled.remove(vm_name)
        return False

    def effective_profile(self, vm_name: str,
                          profile: StressProfile) -> StressProfile:
        """The stress profile after throttling is applied."""
        if vm_name not in self.throttled:
            return profile
        cap = self.frequency_cap_fraction
        return replace(
            profile,
            droop_intensity=profile.droop_intensity * cap,
            activity_factor=profile.activity_factor * cap,
        )
