"""Telemetry side-channel analysis: inferring co-tenant activity.

The threat catalog's ``telemetry side channel`` entry states that
fine-grained power/temperature sensors exposed to guests leak co-tenant
activity.  This module makes the attack concrete and measurable:

* the attacker records a power-signal trace while a victim executes a
  phased workload (bursts vs quiet);
* :class:`PhaseInferenceAttack` recovers the victim's phase schedule
  from the trace with a self-calibrating threshold classifier;
* :func:`attack_accuracy` scores the recovery against ground truth,
  label-invariantly (the attacker does not know which cluster is
  "burst").

The sensor-quantisation countermeasure is then evaluated by running the
same attack against the coarse guest-scope telemetry of
:class:`~repro.core.interfaces.MonitoringInterface` — the accuracy drop
is the countermeasure's measured value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError


def threshold_classify(samples: Sequence[float]) -> List[int]:
    """Two-cluster 1-D classification by iterative midpoint (1-D k-means).

    Returns a 0/1 label per sample.  Converges in a handful of
    iterations for bimodal traces; for unimodal traces the split is
    arbitrary, which is exactly what a defender wants.
    """
    if len(samples) < 2:
        raise ConfigurationError("need at least two samples to classify")
    values = np.asarray(samples, dtype=float)
    threshold = float(values.mean())
    for _ in range(32):
        low = values[values <= threshold]
        high = values[values > threshold]
        if len(low) == 0 or len(high) == 0:
            break
        new_threshold = (low.mean() + high.mean()) / 2.0
        if abs(new_threshold - threshold) < 1e-12:
            break
        threshold = float(new_threshold)
    return [1 if v > threshold else 0 for v in values]


def attack_accuracy(predicted: Sequence[int],
                    truth: Sequence[int]) -> float:
    """Label-invariant agreement between prediction and ground truth.

    The attacker's clusters carry no names, so both labelings are tried
    and the better one scored; 0.5 is chance for balanced traces.
    """
    if len(predicted) != len(truth) or not predicted:
        raise ConfigurationError("prediction/truth length mismatch")
    pred = np.asarray(predicted)
    actual = np.asarray(truth)
    direct = float(np.mean(pred == actual))
    flipped = float(np.mean((1 - pred) == actual))
    return max(direct, flipped)


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one side-channel attack run."""

    signal_name: str
    accuracy: float
    n_samples: int
    signal_spread: float

    @property
    def effective(self) -> bool:
        """Whether the attack recovers meaningfully more than chance."""
        return self.accuracy >= 0.8


class PhaseInferenceAttack:
    """Recovers a victim's phase schedule from a power-signal trace."""

    def __init__(self, signal_name: str = "power") -> None:
        self.signal_name = signal_name
        self._samples: List[float] = []
        self._truth: List[int] = []

    def observe(self, signal: float, truth_phase: int) -> None:
        """Record one (signal sample, ground-truth phase) pair.

        The ground truth is only used for *scoring*; the classifier
        never sees it.
        """
        if truth_phase not in (0, 1):
            raise ConfigurationError("truth phase must be 0 or 1")
        self._samples.append(float(signal))
        self._truth.append(truth_phase)

    @property
    def n_samples(self) -> int:
        """Number of recorded observations."""
        return len(self._samples)

    def run(self) -> AttackResult:
        """Classify the trace and score against the ground truth."""
        if len(self._samples) < 10:
            raise ConfigurationError(
                "need at least 10 observations to attack"
            )
        predicted = threshold_classify(self._samples)
        values = np.asarray(self._samples)
        return AttackResult(
            signal_name=self.signal_name,
            accuracy=attack_accuracy(predicted, self._truth),
            n_samples=len(self._samples),
            signal_spread=float(values.max() - values.min()),
        )
