"""EOP-specific security-threat analysis and low-cost countermeasures."""

from .countermeasures import (
    COUNTERMEASURE_CATALOG,
    Countermeasure,
    INTERFACE_AUTH,
    MitigationPlan,
    REFRESH_GUARD,
    SENSOR_QUANTIZER,
    STRESS_THROTTLER,
    StressThrottler,
    plan_countermeasures,
    residual_risk,
)
from .threats import (
    MARGIN_INTERFACE_ABUSE,
    NodeExposure,
    RETENTION_ABUSE,
    RiskEntry,
    SENSOR_SIDE_CHANNEL,
    STRESS_ATTACK,
    THREAT_CATALOG,
    Threat,
    ThreatAnalyzer,
    looks_like_stress_attack,
)

from .sidechannel import (
    AttackResult,
    PhaseInferenceAttack,
    attack_accuracy,
    threshold_classify,
)

__all__ = [
    "AttackResult", "PhaseInferenceAttack", "attack_accuracy", "threshold_classify",
    "COUNTERMEASURE_CATALOG", "Countermeasure", "INTERFACE_AUTH",
    "MitigationPlan", "REFRESH_GUARD", "SENSOR_QUANTIZER",
    "STRESS_THROTTLER", "StressThrottler", "plan_countermeasures",
    "residual_risk",
    "MARGIN_INTERFACE_ABUSE", "NodeExposure", "RETENTION_ABUSE",
    "RiskEntry", "SENSOR_SIDE_CHANNEL", "STRESS_ATTACK", "THREAT_CATALOG",
    "Threat", "ThreatAnalyzer", "looks_like_stress_attack",
]
