"""Security-threat analysis for operation under Extended Operating Points.

Paper innovation (viii): "analyze security threats in servers operating
under the new EOP and provide low cost countermeasures."  Exposing
margin/voltage/refresh knobs and fine-grained sensors to software creates
attack surface that conservative platforms simply do not have:

* **stress-induced fault attacks** — a malicious co-located VM runs a
  power-virus-like kernel to push a node operating near its EOP over the
  crash point, faulting victim VMs (an undervolting fault attack);
* **retention abuse** — adversarial access patterns on a refresh-relaxed
  domain raise the effective error rate in neighbouring data;
* **sensor side channels** — per-component power/temperature telemetry
  leaks co-tenant activity;
* **margin-interface abuse** — compromising the daemon interfaces lets an
  attacker publish unsafely aggressive margins.

The analyzer scores each threat for a concrete node configuration: a
node at nominal with no co-tenancy carries near-zero EOP-specific risk;
an aggressively undervolted multi-tenant node carries the most.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError
from ..workloads.base import StressProfile, Workload


@dataclass(frozen=True)
class Threat:
    """One catalogued threat."""

    name: str
    description: str
    #: Base likelihood in [0, 1] on a maximally exposed configuration.
    base_likelihood: float
    #: Impact severity in [0, 1].
    impact: float
    #: Which knob exposes it: "voltage", "refresh", "sensors", "interface".
    surface: str

    def __post_init__(self) -> None:
        if not 0 <= self.base_likelihood <= 1 or not 0 <= self.impact <= 1:
            raise ConfigurationError("likelihood/impact are in [0, 1]")


STRESS_ATTACK = Threat(
    name="stress-induced fault attack",
    description=(
        "A co-located VM runs a dI/dt stress kernel to drive a node "
        "operating near its EOP below the crash point, faulting victims."
    ),
    base_likelihood=0.6,
    impact=0.9,
    surface="voltage",
)

RETENTION_ABUSE = Threat(
    name="refresh-relaxation retention abuse",
    description=(
        "Adversarial row-activation patterns on a relaxed-refresh domain "
        "accelerate charge loss in neighbouring victim rows."
    ),
    base_likelihood=0.4,
    impact=0.7,
    surface="refresh",
)

SENSOR_SIDE_CHANNEL = Threat(
    name="telemetry side channel",
    description=(
        "Fine-grained power/temperature sensors exposed to guests leak "
        "co-tenant activity patterns (keys, workload fingerprints)."
    ),
    base_likelihood=0.5,
    impact=0.5,
    surface="sensors",
)

MARGIN_INTERFACE_ABUSE = Threat(
    name="margin-interface abuse",
    description=(
        "A compromised daemon channel publishes unsafe margins, turning "
        "the EOP mechanism itself into a fault-injection primitive."
    ),
    base_likelihood=0.2,
    impact=1.0,
    surface="interface",
)

THREAT_CATALOG = (
    STRESS_ATTACK, RETENTION_ABUSE, SENSOR_SIDE_CHANNEL,
    MARGIN_INTERFACE_ABUSE,
)


@dataclass(frozen=True)
class NodeExposure:
    """Security-relevant posture of one node configuration."""

    #: Deepest fractional undervolt adopted across cores (0 = nominal).
    voltage_margin_used: float
    #: Worst refresh relaxation factor across domains (1 = nominal).
    refresh_relaxation: float
    #: Whether multiple tenants share the node.
    multi_tenant: bool
    #: Whether guests can read fine-grained sensors.
    sensors_exposed_to_guests: bool
    #: Whether daemon interfaces are authenticated.
    margin_interface_authenticated: bool

    def __post_init__(self) -> None:
        if self.voltage_margin_used < 0:
            raise ConfigurationError("margin used must be >= 0")
        if self.refresh_relaxation < 1:
            raise ConfigurationError("relaxation factor must be >= 1")


@dataclass(frozen=True)
class RiskEntry:
    """Assessed risk of one threat on one configuration."""

    threat: Threat
    likelihood: float
    risk: float

    @property
    def severity(self) -> str:
        """Qualitative severity bucket for the risk value."""
        if self.risk >= 0.4:
            return "high"
        if self.risk >= 0.1:
            return "medium"
        return "low"


class ThreatAnalyzer:
    """Scores the threat catalog against a node's exposure."""

    def __init__(self, catalog: Sequence[Threat] = THREAT_CATALOG) -> None:
        if not catalog:
            raise ConfigurationError("threat catalog cannot be empty")
        self.catalog = tuple(catalog)

    def _exposure_factor(self, threat: Threat,
                         exposure: NodeExposure) -> float:
        """How much of the threat's base likelihood this config realises."""
        if threat.surface == "voltage":
            # No margin spent, or single tenant => no co-located attacker.
            if not exposure.multi_tenant:
                return 0.05
            return min(1.0, exposure.voltage_margin_used / 0.15)
        if threat.surface == "refresh":
            if exposure.refresh_relaxation <= 1.0:
                return 0.0
            import math
            return min(1.0, math.log2(exposure.refresh_relaxation) / 6.0) \
                * (1.0 if exposure.multi_tenant else 0.3)
        if threat.surface == "sensors":
            return 1.0 if exposure.sensors_exposed_to_guests else 0.1
        if threat.surface == "interface":
            return 0.15 if exposure.margin_interface_authenticated else 1.0
        raise ConfigurationError(f"unknown surface {threat.surface!r}")

    def assess(self, exposure: NodeExposure) -> List[RiskEntry]:
        """Risk register for one node, sorted most severe first."""
        entries = []
        for threat in self.catalog:
            likelihood = (threat.base_likelihood
                          * self._exposure_factor(threat, exposure))
            entries.append(RiskEntry(
                threat=threat,
                likelihood=likelihood,
                risk=likelihood * threat.impact,
            ))
        return sorted(entries, key=lambda e: e.risk, reverse=True)

    def overall_risk(self, exposure: NodeExposure) -> float:
        """1 − Π(1 − risk): probability-like aggregate of the register."""
        survival = 1.0
        for entry in self.assess(exposure):
            survival *= 1.0 - entry.risk
        return 1.0 - survival


def looks_like_stress_attack(profile: StressProfile,
                             droop_threshold: float = 0.9,
                             activity_threshold: float = 0.95) -> bool:
    """Signature check: does a workload profile resemble a power virus?

    Real-life workloads stay well below virus-level droop (Section 3.B) —
    the heaviest SPEC-class codes reach droop ≈0.8 with activity ≈0.9,
    so the thresholds sit just above that to avoid throttling legitimate
    guests while still catching every hand-coded or GA-evolved virus.
    """
    return (profile.droop_intensity >= droop_threshold
            or (profile.activity_factor >= activity_threshold
                and profile.droop_intensity >= 0.85))
