"""Heartbeat-based node health: what the controller actually knows.

The original controller was omniscient — it read
``node.hypervisor.crashed`` and the platform registers directly.  Real
control planes only ever see *last-received telemetry*: a node that
stops heartbeating might be dead, partitioned, or merely slow, and the
controller must decide anyway.  This module is that epistemic layer:

* :class:`Heartbeat` — the node's self-report: scheduling metrics,
  telemetry samples, the node-local risk verdict and info-vector age;
* :class:`NodeView` — the controller's belief about one node, built
  exclusively from received heartbeats.  It duck-types the scheduling
  surface of ``ComputeNode`` (``can_host``/``metrics``/``hypervisor``…)
  so the filter/weigh scheduler runs unmodified on *believed* state;
* :class:`NodeHealthView` — the fleet belief table with the SUSPECT/
  DOWN ladder: N missed heartbeats make a node SUSPECT (no new
  placements), M make it DOWN (recovery machinery engages).

Controller decisions must go through this module only; ground-truth
node objects are touched exclusively to *actuate* decisions (issue a
migration, a reboot) and to *measure* outcomes (SLA accounting).
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, replace
from enum import Enum
from types import SimpleNamespace
from typing import Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..core.exceptions import ConfigurationError

if TYPE_CHECKING:  # import-free at runtime: cloudmgr imports us
    from ..cloudmgr.failure_prediction import (HorizonRiskReport,
                                               RiskAssessment)
    from ..cloudmgr.node import NodeMetrics
    from ..cloudmgr.telemetry import NodeSample, VMSample
    from ..hypervisor.vm import VirtualMachine


@dataclass(frozen=True)
class Heartbeat:
    """One node's periodic self-report to the controller.

    Everything the control plane is allowed to know about a node is in
    here; a crashed (or partitioned) node simply stops producing them.
    """

    timestamp: float
    node: str
    metrics: "NodeMetrics"
    sample: "NodeSample"
    vm_samples: Tuple["VMSample", ...]
    #: Node-local failure-risk verdict; None when the Predictor daemon
    #: is down (one rung of the degradation ladder).
    risk: Optional["RiskAssessment"]
    #: Age of the newest HealthLog info vector at emission time.
    info_vector_age_s: float
    #: Names of VMs active on the node (for evacuation planning).
    active_vms: Tuple[str, ...]
    #: EOP bookkeeping the SLA filters need.
    margin_applications: int = 0
    failure_budget: float = 1e-4
    #: Governor state counts (components currently adopted / demoted /
    #: quarantined) — the cloud's view of the node's EOP control plane.
    eop_adopted: int = 0
    eop_demoted: int = 0
    eop_quarantined: int = 0
    #: Full multi-horizon risk report (probability + confidence per
    #: horizon, per-DRAM-domain hazards); None when the node's
    #: predictor cannot produce one (Predictor daemon down, or a
    #: predictor without horizon support).
    horizon_report: Optional["HorizonRiskReport"] = None


def heartbeat_to_dict(heartbeat: Heartbeat) -> Dict[str, object]:
    """Plain-dict form of a heartbeat (all leaves are primitives)."""
    state = asdict(heartbeat)
    state["vm_samples"] = [asdict(s) for s in heartbeat.vm_samples]
    state["horizon_report"] = (None if heartbeat.horizon_report is None
                               else heartbeat.horizon_report.as_dict())
    return state


def heartbeat_from_dict(state: Dict[str, object]) -> Heartbeat:
    """Rebuild a heartbeat saved by :func:`heartbeat_to_dict`.

    Imports are local: this module is imported by ``cloudmgr`` at class
    definition time, so the concrete sample types only resolve lazily.
    """
    from ..cloudmgr.failure_prediction import (HorizonRiskReport,
                                               RiskAssessment)
    from ..cloudmgr.node import NodeMetrics
    from ..cloudmgr.telemetry import NodeSample, VMSample

    risk = state["risk"]
    report = state.get("horizon_report")
    return Heartbeat(
        timestamp=float(state["timestamp"]),  # type: ignore[arg-type]
        node=str(state["node"]),
        metrics=NodeMetrics(**state["metrics"]),  # type: ignore[arg-type]
        sample=NodeSample(**state["sample"]),  # type: ignore[arg-type]
        vm_samples=tuple(VMSample(**s)
                         for s in state["vm_samples"]),  # type: ignore[union-attr]
        risk=None if risk is None else RiskAssessment(**risk),  # type: ignore[arg-type]
        info_vector_age_s=float(state["info_vector_age_s"]),  # type: ignore[arg-type]
        active_vms=tuple(str(v) for v in state["active_vms"]),  # type: ignore[union-attr]
        margin_applications=int(state["margin_applications"]),  # type: ignore[arg-type]
        failure_budget=float(state["failure_budget"]),  # type: ignore[arg-type]
        eop_adopted=int(state.get("eop_adopted", 0)),  # type: ignore[arg-type]
        eop_demoted=int(state.get("eop_demoted", 0)),  # type: ignore[arg-type]
        eop_quarantined=int(state.get("eop_quarantined", 0)),  # type: ignore[arg-type]
        horizon_report=(None if report is None
                        else HorizonRiskReport.from_dict(report)),  # type: ignore[arg-type]
    )


class NodeStatus(Enum):
    """The controller's belief about one node."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"          # missed heartbeats; no new placements
    DOWN = "down"                # declared failed; recovery engaged
    QUARANTINED = "quarantined"  # circuit breaker open; hands off


class NodeView:
    """The controller's belief about one node, from heartbeats only.

    Duck-types the slice of ``ComputeNode`` the filter/weigh scheduler
    consumes, answering from the last received heartbeat (adjusted by
    optimistic reservations for placements issued since).
    """

    #: Reported (timestamp, reliability) pairs retained for the
    #: windowed reliability query; at the default 60 s heartbeat period
    #: this spans over two hours of reports.
    RELIABILITY_HISTORY = 128

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = NodeStatus.HEALTHY
        self.last: Optional[Heartbeat] = None
        self.missed = 0
        self.last_seen_s: Optional[float] = None
        self._reserved_vcpus = 0
        self._reserved_mb = 0.0
        self._reliability_reports: Deque[Tuple[float, float]] = deque(
            maxlen=self.RELIABILITY_HISTORY)

    # -- belief updates ----------------------------------------------------

    def observe(self, heartbeat: Heartbeat) -> None:
        """Fold in a received heartbeat (clears reservations)."""
        self.last = heartbeat
        self.last_seen_s = heartbeat.timestamp
        self.missed = 0
        self._reserved_vcpus = 0
        self._reserved_mb = 0.0
        self._reliability_reports.append(
            (heartbeat.timestamp, heartbeat.metrics.reliability))

    def reserve(self, vcpus: int, memory_mb: float) -> None:
        """Optimistically debit capacity for a placement just issued."""
        self._reserved_vcpus += vcpus
        self._reserved_mb += memory_mb

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable belief state about this node."""
        return {
            "state": self.state.value,
            "last": None if self.last is None else heartbeat_to_dict(self.last),
            "missed": self.missed,
            "last_seen_s": self.last_seen_s,
            "reserved_vcpus": self._reserved_vcpus,
            "reserved_mb": self._reserved_mb,
            "reliability_reports": [list(pair) for pair
                                    in self._reliability_reports],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the belief saved by :meth:`state_dict`."""
        self.state = NodeStatus(state["state"])
        last = state["last"]
        self.last = None if last is None else heartbeat_from_dict(last)  # type: ignore[arg-type]
        self.missed = int(state["missed"])  # type: ignore[arg-type]
        seen = state["last_seen_s"]
        self.last_seen_s = None if seen is None else float(seen)  # type: ignore[arg-type]
        self._reserved_vcpus = int(state["reserved_vcpus"])  # type: ignore[arg-type]
        self._reserved_mb = float(state["reserved_mb"])  # type: ignore[arg-type]
        self._reliability_reports = deque(
            ((float(stamp), float(value)) for stamp, value
             in state.get("reliability_reports", [])),  # type: ignore[union-attr]
            maxlen=self.RELIABILITY_HISTORY)

    # -- the scheduling surface (duck-typing ComputeNode) ------------------

    def free_vcpus(self) -> int:
        """Believed free vCPUs (last report minus reservations)."""
        if self.last is None:
            return 0
        return max(0, self.last.metrics.free_vcpus - self._reserved_vcpus)

    def free_memory_mb(self) -> float:
        """Believed free memory (last report minus reservations)."""
        if self.last is None:
            return 0.0
        return max(0.0, self.last.metrics.free_memory_mb - self._reserved_mb)

    def can_host(self, vm: "VirtualMachine") -> bool:
        """Capacity check against believed state."""
        if self.state is not NodeStatus.HEALTHY or self.last is None:
            return False
        need_mb = vm.guest_os_mb + vm.workload.demand.memory_mb
        return vm.vcpus <= self.free_vcpus() \
            and need_mb <= self.free_memory_mb()

    def metrics(self) -> "NodeMetrics":
        """Last reported scheduling metrics, reservation-adjusted."""
        if self.last is None:
            raise ConfigurationError(
                f"no heartbeat ever received from {self.name!r}")
        return replace(self.last.metrics,
                       free_vcpus=self.free_vcpus(),
                       free_memory_mb=self.free_memory_mb())

    def reliability(self, window_s: float = 3600.0) -> float:
        """Worst reliability reported within the last ``window_s``.

        The window is anchored at the newest received heartbeat (a
        belief has no "now" of its own) and the *minimum* report inside
        it is returned — the conservative reading of the ground-truth
        semantics, where every fault inside the window still dents the
        score.  Mirrors ``ComputeNode.reliability(window_s)`` so the
        duck-typed scheduler surface windows the same way.
        """
        if window_s <= 0:
            raise ConfigurationError("reliability window must be positive")
        latest = self.metrics().reliability
        if not self._reliability_reports:
            return latest
        anchor = self._reliability_reports[-1][0]
        since = anchor - window_s
        in_window = [value for stamp, value in self._reliability_reports
                     if stamp >= since]
        return min(in_window) if in_window else latest

    def utilization(self) -> float:
        """Last reported utilization."""
        return self.metrics().utilization

    def frequency_fraction(self) -> float:
        """Last reported mean frequency fraction."""
        return self.metrics().frequency_fraction

    def risk_report(self) -> Optional["HorizonRiskReport"]:
        """Last reported multi-horizon risk report, if any.

        Duck-types ``ComputeNode.risk_report()`` so risk-aware weighers
        score believed state and live nodes identically.
        """
        return self.last.horizon_report if self.last is not None else None

    @property
    def hypervisor(self) -> SimpleNamespace:
        """Shim for scheduler filters that peek at ``node.hypervisor``.

        ``crashed`` here means "not believed schedulable" — any state
        other than HEALTHY — which is exactly what the health filter
        should act on when ground truth is out of reach.
        """
        hb = self.last
        return SimpleNamespace(
            crashed=self.state is not NodeStatus.HEALTHY or hb is None,
            stats=SimpleNamespace(
                margin_applications=hb.margin_applications if hb else 0),
            config=SimpleNamespace(
                failure_budget=hb.failure_budget if hb else 1e-4),
        )

    @property
    def governor(self) -> SimpleNamespace:
        """Shim for scheduler filters that peek at ``node.governor``.

        Mirrors the heartbeat's governor counts so the reliability
        filter sees the same "is this node spending margin right now"
        signal it reads from a live :class:`~repro.eop.EOPGovernor`.
        """
        hb = self.last
        adopted = hb.eop_adopted if hb else 0
        return SimpleNamespace(adopted_count=lambda: adopted)

    def describe(self) -> str:
        """One-line belief summary."""
        seen = (f"last seen t={self.last_seen_s:.0f}s"
                if self.last_seen_s is not None else "never seen")
        return (f"{self.name}: {self.state.value} "
                f"(missed={self.missed}, {seen})")


class NodeHealthView:
    """The controller's belief table over the whole rack."""

    def __init__(self, suspect_after_missed: int = 2,
                 down_after_missed: int = 3) -> None:
        if suspect_after_missed < 1:
            raise ConfigurationError("suspect_after_missed must be >= 1")
        if down_after_missed < suspect_after_missed:
            raise ConfigurationError(
                "down_after_missed must be >= suspect_after_missed")
        self.suspect_after_missed = suspect_after_missed
        self.down_after_missed = down_after_missed
        self._views: Dict[str, NodeView] = {}

    def register(self, name: str) -> NodeView:
        """Add a node to the belief table (starts HEALTHY, no data)."""
        if name in self._views:
            raise ConfigurationError(f"node {name!r} already registered")
        view = NodeView(name)
        self._views[name] = view
        return view

    def view(self, name: str) -> NodeView:
        """The belief about one node."""
        if name not in self._views:
            raise KeyError(f"node {name!r} is not registered")
        return self._views[name]

    def views(self) -> List[NodeView]:
        """All node beliefs, name-sorted (deterministic iteration)."""
        return [self._views[name] for name in sorted(self._views)]

    def schedulable_views(self) -> List[NodeView]:
        """Nodes believed able to take new work."""
        return [v for v in self.views()
                if v.state is NodeStatus.HEALTHY and v.last is not None]

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable belief table (views in registration order)."""
        return {"views": {name: view.state_dict()
                          for name, view in self._views.items()}}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore beliefs onto a table with the same registered nodes."""
        saved = state["views"]
        for name, view_state in saved.items():  # type: ignore[union-attr]
            self.view(str(name)).load_state_dict(view_state)

    # -- the suspicion ladder ---------------------------------------------

    def observe(self, heartbeat: Heartbeat) -> NodeStatus:
        """Ingest a heartbeat; returns the *previous* belief state.

        A quarantined node stays quarantined until the breaker releases
        it — a heartbeat alone is not parole.
        """
        view = self.view(heartbeat.node)
        previous = view.state
        view.observe(heartbeat)
        if view.state is not NodeStatus.QUARANTINED:
            view.state = NodeStatus.HEALTHY
        return previous

    def note_missed(self, name: str) -> NodeStatus:
        """Count one missed heartbeat; returns the new belief state."""
        view = self.view(name)
        view.missed += 1
        if view.state is NodeStatus.QUARANTINED:
            return view.state
        if view.missed >= self.down_after_missed:
            view.state = NodeStatus.DOWN
        elif view.missed >= self.suspect_after_missed:
            view.state = NodeStatus.SUSPECT
        return view.state

    def quarantine(self, name: str) -> None:
        """Circuit breaker opened: hands off this node."""
        self.view(name).state = NodeStatus.QUARANTINED

    def release(self, name: str) -> None:
        """Breaker probe admitted: node returns to DOWN (a heartbeat
        must confirm recovery before it is believed HEALTHY again)."""
        view = self.view(name)
        if view.state is NodeStatus.QUARANTINED:
            view.state = NodeStatus.DOWN

    def describe(self) -> str:
        """Multi-line belief summary of the rack."""
        return "\n".join(v.describe() for v in self.views())
