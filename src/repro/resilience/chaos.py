"""Seeded chaos engine: declarative fault plans for the control path.

The faults injected here are *control-plane* faults — the ones the paper's
resilience story implicitly assumes away: daemons stall, telemetry lies or
vanishes, heartbeats stop crossing the rack network, migrations die
mid-flight, recoveries do not stick.  Data-plane faults (bit flips,
crashes from undervolting) already live in ``repro.hardware.faults``; the
chaos engine attacks the machinery that is supposed to *react* to those.

Everything is deterministic: a :class:`FaultPlan` is either written by
hand or drawn from a seeded generator (:meth:`FaultPlan.random`), and all
in-campaign randomness (dropout draws, corruption noise, migration-abort
draws) comes from per-node named :class:`~repro.core.runtime.NodeRuntime`
streams, so the same seed replays the same campaign bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from ..core.exceptions import ConfigurationError

if TYPE_CHECKING:
    from ..cloudmgr.node import ComputeNode
    from .health import Heartbeat


class FaultKind(Enum):
    """The control-plane fault taxonomy."""

    #: HealthLog stops refreshing info vectors (daemon stall).
    HEALTHLOG_STALL = "healthlog_stall"
    #: The node-local failure Predictor dies: no risk verdicts.
    PREDICTOR_CRASH = "predictor_crash"
    #: Heartbeat payloads (risk verdicts, VM samples) are lost with some
    #: probability; the bare liveness signal still arrives.
    TELEMETRY_DROPOUT = "telemetry_dropout"
    #: Heartbeats arrive but their metrics are noise-corrupted.
    TELEMETRY_CORRUPTION = "telemetry_corruption"
    #: Full node <-> controller partition: no heartbeats at all.
    HEARTBEAT_LOSS = "heartbeat_loss"
    #: Live migrations from the node abort mid-flight.
    MIGRATION_FAILURE = "migration_failure"
    #: The node host-crashes once (hypervisor down, VMs failed).
    NODE_CRASH = "node_crash"
    #: The node re-crashes after every recovery while the window lasts.
    CRASH_LOOP = "crash_loop"
    #: Recovery commands are swallowed: reboot requests do nothing.
    STUCK_RECOVERY = "stuck_recovery"
    #: The EOP governor wedges: supervision stops (no demotions, no
    #: probation reviews) while the window lasts.  Not in the random
    #: menu — adding a kind there would re-roll every seeded plan.
    EOP_GOVERNOR_WEDGE = "eop_governor_wedge"
    #: Correlated fault-domain kinds (targets name a *domain*, not a
    #: node: ``pdu{i}``/``cooling{i}``/``rack{i}``).  Like the wedge,
    #: none of these join the random menu — they are drawn by the
    #: fleet's own :func:`repro.fleet.chaos.fleet_correlated_plan`.
    #: A shared PDU rail browns out: every node on it sags and may
    #: crash while the window lasts.
    PDU_BROWNOUT = "pdu_brownout"
    #: A cooling zone loses its chiller: effective ambient ramps up,
    #: raising DRAM retention-failure rates zone-wide.
    COOLING_FAILURE = "cooling_failure"
    #: A rack's network partitions: telemetry blackout and no new
    #: admissions for the window.
    RACK_PARTITION = "rack_partition"


#: Fault kinds whose effect is a window, not an instant.
_WINDOWED = frozenset({
    FaultKind.HEALTHLOG_STALL,
    FaultKind.PREDICTOR_CRASH,
    FaultKind.TELEMETRY_DROPOUT,
    FaultKind.TELEMETRY_CORRUPTION,
    FaultKind.HEARTBEAT_LOSS,
    FaultKind.MIGRATION_FAILURE,
    FaultKind.CRASH_LOOP,
    FaultKind.STUCK_RECOVERY,
    FaultKind.EOP_GOVERNOR_WEDGE,
    FaultKind.PDU_BROWNOUT,
    FaultKind.COOLING_FAILURE,
    FaultKind.RACK_PARTITION,
})


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what, where, when, how hard.

    ``magnitude`` is kind-specific: drop/abort probability for
    TELEMETRY_DROPOUT and MIGRATION_FAILURE, relative noise amplitude
    for TELEMETRY_CORRUPTION; ignored elsewhere.
    """

    kind: FaultKind
    node: str
    start_s: float
    duration_s: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("fault start must be >= 0")
        if self.duration_s < 0:
            raise ConfigurationError("fault duration must be >= 0")
        if self.kind in _WINDOWED and self.duration_s <= 0:
            raise ConfigurationError(
                f"{self.kind.value} needs a positive duration")
        if not 0 <= self.magnitude <= 1:
            raise ConfigurationError("magnitude must be in [0, 1]")

    def active(self, now: float) -> bool:
        """Whether the fault window covers ``now``."""
        if self.kind not in _WINDOWED:
            return now >= self.start_s
        return self.start_s <= now < self.start_s + self.duration_s

    def describe(self) -> str:
        """One-line spec summary."""
        window = (f"[{self.start_s:.0f}s, "
                  f"{self.start_s + self.duration_s:.0f}s)"
                  if self.kind in _WINDOWED else f"at {self.start_s:.0f}s")
        return (f"{self.kind.value} on {self.node} {window} "
                f"magnitude={self.magnitude:.2f}")

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for snapshots and campaign configs."""
        return {
            "kind": self.kind.value,
            "node": self.node,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "magnitude": self.magnitude,
        }

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "FaultSpec":
        """Rebuild a spec saved by :meth:`as_dict`."""
        return FaultSpec(
            kind=FaultKind(state["kind"]),
            node=str(state["node"]),
            start_s=float(state["start_s"]),  # type: ignore[arg-type]
            duration_s=float(state["duration_s"]),  # type: ignore[arg-type]
            magnitude=float(state["magnitude"]),  # type: ignore[arg-type]
        )


#: Kinds eligible for randomly drawn plans, with relative weights and
#: (min, max) window durations in seconds.  NODE_CRASH is instantaneous.
_RANDOM_MENU: Tuple[Tuple[FaultKind, float, Tuple[float, float]], ...] = (
    (FaultKind.HEALTHLOG_STALL, 1.5, (240.0, 720.0)),
    (FaultKind.PREDICTOR_CRASH, 1.0, (300.0, 900.0)),
    (FaultKind.TELEMETRY_DROPOUT, 1.5, (180.0, 600.0)),
    (FaultKind.TELEMETRY_CORRUPTION, 1.0, (180.0, 600.0)),
    (FaultKind.HEARTBEAT_LOSS, 1.0, (180.0, 480.0)),
    (FaultKind.MIGRATION_FAILURE, 1.5, (300.0, 900.0)),
    (FaultKind.NODE_CRASH, 1.0, (0.0, 0.0)),
    (FaultKind.CRASH_LOOP, 1.0, (600.0, 1200.0)),
    (FaultKind.STUCK_RECOVERY, 1.0, (450.0, 900.0)),
)


class FaultPlan:
    """An immutable, time-sorted collection of fault specs."""

    def __init__(self, specs: Iterable[FaultSpec]) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(
            sorted(specs, key=lambda s: (s.start_s, s.node, s.kind.value)))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_node(self, node: str) -> Tuple[FaultSpec, ...]:
        """The subset of specs targeting one node."""
        return tuple(s for s in self.specs if s.node == node)

    def for_kinds(self, kinds: Iterable[FaultKind]) -> "FaultPlan":
        """A new plan keeping only the given fault kinds.

        The vectorized fleet (:mod:`repro.fleet.chaos`) uses this to
        ignore control-plane kinds it does not simulate while replaying
        the same seeded plan the object stack sees.
        """
        wanted = frozenset(kinds)
        return FaultPlan(s for s in self.specs if s.kind in wanted)

    @classmethod
    def random(cls, nodes: Sequence[str], duration_s: float,
               rate_per_hour: float = 4.0, seed: int = 0,
               intensity: float = 0.5) -> "FaultPlan":
        """Draw a reproducible plan from a seeded generator.

        ``rate_per_hour`` is the expected fault count per node-hour;
        ``intensity`` scales the magnitudes of probabilistic faults.
        """
        if not nodes:
            raise ConfigurationError("need at least one node")
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if rate_per_hour < 0:
            raise ConfigurationError("rate must be >= 0")
        if not 0 < intensity <= 1:
            raise ConfigurationError("intensity must be in (0, 1]")
        rng = np.random.default_rng(seed)
        kinds = [entry[0] for entry in _RANDOM_MENU]
        weights = np.array([entry[1] for entry in _RANDOM_MENU])
        weights = weights / weights.sum()
        windows = {entry[0]: entry[2] for entry in _RANDOM_MENU}

        specs: List[FaultSpec] = []
        expected = rate_per_hour * duration_s / 3600.0
        for node in sorted(nodes):
            for _ in range(int(rng.poisson(expected))):
                kind = kinds[int(rng.choice(len(kinds), p=weights))]
                lo, hi = windows[kind]
                fault_duration = float(rng.uniform(lo, hi)) if hi > 0 else 0.0
                # Leave room so windowed faults are not all cut short by
                # the campaign end.
                latest = max(0.0, duration_s - min(fault_duration, duration_s / 2))
                start = float(rng.uniform(0.0, latest)) if latest > 0 else 0.0
                magnitude = float(np.clip(
                    intensity * rng.uniform(0.6, 1.0), 0.05, 1.0))
                specs.append(FaultSpec(
                    kind=kind, node=node, start_s=start,
                    duration_s=fault_duration, magnitude=magnitude))
        return cls(specs)

    def describe(self) -> str:
        """Multi-line plan summary."""
        if not self.specs:
            return "empty fault plan"
        return "\n".join(s.describe() for s in self.specs)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for snapshots and campaign configs."""
        return {"specs": [s.as_dict() for s in self.specs]}

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan saved by :meth:`as_dict`."""
        return FaultPlan(FaultSpec.from_dict(s)
                         for s in state["specs"])  # type: ignore[union-attr]


class ChaosEngine:
    """Executes a :class:`FaultPlan` against a rack of compute nodes.

    The engine has three touch points, called by the campaign loop and
    the control plane respectively:

    * :meth:`apply` — before each control step, reconcile node-side
      fault state (daemon stalls, crashes, stuck recoveries) with the
      windows active at ``now``;
    * :meth:`filter_heartbeat` — applied to each heartbeat in flight:
      may swallow it (loss/dropout) or corrupt it (noise);
    * :meth:`migration_should_fail` — consulted by the migration
      manager's failure hook mid-flight.

    All random draws use per-node runtime streams (``chaos.telemetry``,
    ``chaos.migration``) so campaigns replay bit-for-bit per seed.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Indices into ``plan.specs`` of one-shot faults already fired.
        #: Stable positions (not object identities) so the fired-set
        #: survives serialization and process restarts.
        self._fired: set = set()
        self.injections: Dict[str, int] = {}

    def _count(self, kind: FaultKind) -> None:
        self.injections[kind.value] = self.injections.get(kind.value, 0) + 1

    def _active(self, kind: FaultKind, node: str,
                now: float) -> Optional[FaultSpec]:
        for spec in self.plan.specs:
            if spec.kind is kind and spec.node == node and spec.active(now):
                return spec
        return None

    # -- node-side fault reconciliation ------------------------------------

    def apply(self, nodes: Sequence["ComputeNode"], now: float) -> None:
        """Reconcile every node's fault state with the plan at ``now``."""
        for node in nodes:
            stall = self._active(FaultKind.HEALTHLOG_STALL, node.name, now)
            if stall is not None and not node.healthlog.stalled:
                self._count(FaultKind.HEALTHLOG_STALL)
            node.healthlog.stalled = stall is not None

            predictor = self._active(
                FaultKind.PREDICTOR_CRASH, node.name, now)
            if predictor is not None and not node.predictor_down:
                self._count(FaultKind.PREDICTOR_CRASH)
            node.predictor_down = predictor is not None

            stuck = self._active(FaultKind.STUCK_RECOVERY, node.name, now)
            if stuck is not None and not node.recovery_stuck:
                self._count(FaultKind.STUCK_RECOVERY)
            node.recovery_stuck = stuck is not None

            wedge = self._active(
                FaultKind.EOP_GOVERNOR_WEDGE, node.name, now)
            if wedge is not None and not node.governor.wedged:
                self._count(FaultKind.EOP_GOVERNOR_WEDGE)
            node.governor.wedged = wedge is not None

            for index, spec in enumerate(self.plan.specs):
                if spec.node == node.name \
                        and spec.kind is FaultKind.NODE_CRASH \
                        and spec.active(now) and index not in self._fired:
                    self._fired.add(index)
                    if not node.hypervisor.crashed:
                        node.hypervisor.inject_crash()
                    self._count(FaultKind.NODE_CRASH)

            loop = self._active(FaultKind.CRASH_LOOP, node.name, now)
            if loop is not None and not node.hypervisor.crashed:
                node.hypervisor.inject_crash()
                self._count(FaultKind.CRASH_LOOP)

    # -- control-path interception -----------------------------------------

    def filter_heartbeat(self, node: "ComputeNode",
                         heartbeat: "Heartbeat",
                         now: float) -> Optional["Heartbeat"]:
        """Pass, swallow or corrupt one heartbeat in flight."""
        if self._active(FaultKind.HEARTBEAT_LOSS, node.name, now) is not None:
            self._count(FaultKind.HEARTBEAT_LOSS)
            return None
        dropout = self._active(FaultKind.TELEMETRY_DROPOUT, node.name, now)
        if dropout is not None:
            rng = node.runtime.rng("chaos.telemetry")
            if rng.random() < dropout.magnitude:
                # The liveness signal survives; the payload does not.
                # (A full partition is FaultKind.HEARTBEAT_LOSS.)
                self._count(FaultKind.TELEMETRY_DROPOUT)
                heartbeat = replace(heartbeat, risk=None, vm_samples=(),
                                    horizon_report=None)
        corrupt = self._active(
            FaultKind.TELEMETRY_CORRUPTION, node.name, now)
        if corrupt is not None:
            self._count(FaultKind.TELEMETRY_CORRUPTION)
            return self._corrupt(node, heartbeat, corrupt.magnitude)
        return heartbeat

    def _corrupt(self, node: "ComputeNode", heartbeat: "Heartbeat",
                 magnitude: float) -> "Heartbeat":
        """Noise-corrupt the scheduling-relevant metric fields."""
        rng = node.runtime.rng("chaos.telemetry")

        def noisy(value: float, lo: float, hi: float) -> float:
            return float(np.clip(
                value * (1.0 + magnitude * (2.0 * rng.random() - 1.0)),
                lo, hi))

        metrics = heartbeat.metrics
        corrupted = replace(
            metrics,
            utilization=noisy(metrics.utilization, 0.0, 1.0),
            reliability=noisy(metrics.reliability, 0.0, 1.0),
            power_w=noisy(metrics.power_w, 0.0, float("inf")),
            frequency_fraction=noisy(
                metrics.frequency_fraction, 0.05, 2.0),
        )
        return replace(heartbeat, metrics=corrupted)

    def migration_should_fail(self, source: "ComputeNode",
                              destination: str, now: float) -> bool:
        """Whether a migration leaving ``source`` aborts mid-flight."""
        spec = self._active(FaultKind.MIGRATION_FAILURE, source.name, now)
        if spec is None:
            return False
        rng = source.runtime.rng("chaos.migration")
        if rng.random() < spec.magnitude:
            self._count(FaultKind.MIGRATION_FAILURE)
            return True
        return False

    def describe(self) -> str:
        """Injection counts so far, name-sorted."""
        if not self.injections:
            return "no faults injected"
        return ", ".join(f"{kind}={count}" for kind, count
                         in sorted(self.injections.items()))

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable engine cursor (the plan is config, not state)."""
        return {
            "fired": sorted(self._fired),
            "injections": dict(self.injections),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the cursor saved by :meth:`state_dict`."""
        self._fired = {int(i) for i in state["fired"]}  # type: ignore[union-attr]
        self.injections = {str(k): int(v) for k, v
                           in state["injections"].items()}  # type: ignore[union-attr]
