"""Graceful-degradation policies: retries, circuit breaking, fallbacks.

The paper's resilience claim only holds if the *control plane itself* is
allowed to fail: daemons stall, telemetry goes stale, migrations abort
mid-flight, recoveries do not stick.  This module collects the three
policy primitives the degradation-aware controller composes:

* :class:`RetryPolicy` — exponential backoff with jitter and a hard
  attempt/elapsed budget, wrapping migrations and evacuations so one
  flaky control-path RPC does not strand a workload on a doomed node;
* :class:`CircuitBreaker` — the classical CLOSED → OPEN → HALF_OPEN
  automaton, quarantining crash-looping nodes instead of endlessly
  power-cycling them;
* :class:`DegradationConfig` — one bundle of every knob, with ``on()``
  and ``off()`` presets that are exactly the A/B of
  ``benchmarks/bench_chaos_resilience.py``.

Everything here is deterministic given a seeded generator: jitter draws
come from the RNG the caller passes in, never from global state.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, capped by attempts and elapsed time.

    Attempt numbering is 1-based: attempt 1 is the first try (no delay),
    and :meth:`delay_s` answers "how long to wait before attempt
    ``attempt + 1``".  The budget is double-capped — a maximum number of
    attempts *and* a maximum elapsed time since the first attempt — so a
    retry storm can neither spin forever nor pile up unboundedly.
    """

    max_attempts: int = 4
    base_delay_s: float = 60.0
    multiplier: float = 2.0
    max_delay_s: float = 600.0
    jitter_fraction: float = 0.25
    budget_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("need at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.multiplier < 1:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0 <= self.jitter_fraction < 1:
            raise ConfigurationError("jitter fraction must be in [0, 1)")
        if self.budget_s <= 0:
            raise ConfigurationError("budget must be positive")

    def delay_s(self, attempt: int,
                rng: Optional[np.random.Generator] = None) -> float:
        """Backoff before the attempt after ``attempt`` (1-based) failed."""
        if attempt < 1:
            raise ConfigurationError("attempt numbering is 1-based")
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter_fraction > 0 and delay > 0:
            # Symmetric jitter decorrelates fleet-wide retry waves.
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return delay

    def should_retry(self, attempt: int, first_attempt_at: float,
                     now: float) -> bool:
        """Whether another attempt fits inside the budget."""
        if attempt >= self.max_attempts:
            return False
        return (now - first_attempt_at) < self.budget_s


class BreakerState(Enum):
    """Circuit-breaker automaton states."""

    CLOSED = "closed"        # operations flow normally
    OPEN = "open"            # quarantined: operations refused
    HALF_OPEN = "half-open"  # one probe outstanding


class CircuitBreaker:
    """Quarantine gate for a repeatedly failing operation target.

    ``failure_threshold`` consecutive failures trip the breaker OPEN;
    after ``cooldown_s`` one probe is allowed (HALF_OPEN).  A probe
    success closes the breaker, a probe failure re-opens it.  A
    threshold of 0 disables the breaker entirely (it never opens) —
    that is the policies-off configuration.
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown_s: float = 900.0) -> None:
        if failure_threshold < 0:
            raise ConfigurationError("failure threshold must be >= 0")
        if cooldown_s <= 0:
            raise ConfigurationError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    @property
    def enabled(self) -> bool:
        """Whether the breaker can ever open."""
        return self.failure_threshold > 0

    def state_dict(self) -> dict:
        """Serializable automaton state."""
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_at": self.opened_at,
            "trips": self.trips,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the automaton saved by :meth:`state_dict`."""
        self.state = BreakerState(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        opened = state["opened_at"]
        self.opened_at = None if opened is None else float(opened)
        self.trips = int(state["trips"])

    def record_failure(self, now: float) -> BreakerState:
        """Note one failure; may trip CLOSED->OPEN or HALF_OPEN->OPEN."""
        self.consecutive_failures += 1
        if not self.enabled:
            return self.state
        if self.state is BreakerState.HALF_OPEN or (
                self.consecutive_failures >= self.failure_threshold):
            if self.state is not BreakerState.OPEN:
                self.trips += 1
            self.state = BreakerState.OPEN
            self.opened_at = now
        return self.state

    def record_success(self) -> None:
        """Note a confirmed success: reset to CLOSED."""
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def allows(self, now: float) -> bool:
        """Whether an operation may proceed right now.

        While OPEN, returns False until the cooldown elapses, then
        transitions to HALF_OPEN and admits exactly one probe.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and (
                    now - self.opened_at >= self.cooldown_s):
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        # HALF_OPEN: the single probe is already outstanding.
        return False


@dataclass(frozen=True)
class DegradationConfig:
    """Every graceful-degradation knob of the control plane, in one place.

    The degradation ladder, from healthiest to most conservative:

    1. fresh heartbeats — full EOP operation, proactive migration;
    2. ``suspect_after_missed`` missed heartbeats — node marked SUSPECT,
       excluded from new placements;
    3. ``down_after_missed`` missed heartbeats — node declared DOWN,
       recovery timer starts;
    4. stale info vectors on the node side — the hypervisor falls back
       from the EOPs to the nominal guard-banded V-F-R point
       (``stale_info_fallback_s``);
    5. recovery demonstrably failing — once an attempt failed (or the
       breaker quarantined the node) and the outage is at least
       ``failover_after_s`` old, workloads are cold-restarted on
       healthy nodes instead of waiting out further attempts;
    6. crash-looping recoveries — the circuit breaker quarantines the
       node for ``breaker_cooldown_s`` before probing again.
    """

    #: Missed heartbeats before a node is SUSPECT (no new placements).
    suspect_after_missed: int = 2
    #: Missed heartbeats before a node is declared DOWN.
    down_after_missed: int = 3
    #: Retry policy wrapping migrations and evacuations.
    retry: RetryPolicy = RetryPolicy()
    #: Consecutive failed/flapped recoveries before quarantine
    #: (0 disables the breaker).
    breaker_threshold: int = 3
    #: Quarantine duration before a HALF_OPEN recovery probe.
    breaker_cooldown_s: float = 900.0
    #: A recovery followed by a re-crash within this window counts as a
    #: flap (a breaker failure).
    flap_window_s: float = 300.0
    #: Node-side: info vectors older than this trigger the conservative
    #: fallback to nominal V-F-R (None disables).
    stale_info_fallback_s: Optional[float] = 180.0
    #: Controller-side: minimum outage age before VMs on a node whose
    #: recovery failed (or that is quarantined) are failed over to
    #: healthy nodes (None disables failover entirely).
    failover_after_s: Optional[float] = 120.0

    def __post_init__(self) -> None:
        if self.suspect_after_missed < 1:
            raise ConfigurationError("suspect_after_missed must be >= 1")
        if self.down_after_missed < self.suspect_after_missed:
            raise ConfigurationError(
                "down_after_missed must be >= suspect_after_missed")
        if self.stale_info_fallback_s is not None \
                and self.stale_info_fallback_s <= 0:
            raise ConfigurationError("stale fallback must be positive")
        if self.failover_after_s is not None and self.failover_after_s < 0:
            raise ConfigurationError("failover_after_s must be >= 0")

    @classmethod
    def on(cls) -> "DegradationConfig":
        """The full degradation ladder (the policies-on arm)."""
        return cls()

    @classmethod
    def off(cls) -> "DegradationConfig":
        """A naive controller: hair-trigger DOWN declarations, a single
        migration attempt, no breaker, no fallback, no failover."""
        return cls(
            suspect_after_missed=1,
            down_after_missed=1,
            retry=RetryPolicy(max_attempts=1),
            breaker_threshold=0,
            stale_info_fallback_s=None,
            failover_after_s=None,
        )
