"""Chaos engineering and graceful degradation for the control plane.

The paper's resilience claim is only credible if the *control path
itself* is allowed to fail: this package provides the seeded
:class:`ChaosEngine` that injects control-plane faults (daemon stalls,
telemetry loss and corruption, heartbeat partitions, mid-flight
migration aborts, crash loops, stuck recoveries), the heartbeat-based
:class:`NodeHealthView` the controller acts on instead of ground truth,
the :class:`RetryPolicy`/:class:`CircuitBreaker` degradation primitives,
and the campaign runner behind ``repro chaos`` and
``benchmarks/bench_chaos_resilience.py``.
"""

from .campaign import (
    CampaignComparison,
    CampaignResult,
    run_chaos_ab,
    run_chaos_campaign,
)
from .chaos import ChaosEngine, FaultKind, FaultPlan, FaultSpec
from .health import Heartbeat, NodeHealthView, NodeStatus, NodeView
from .policies import (
    BreakerState,
    CircuitBreaker,
    DegradationConfig,
    RetryPolicy,
)

__all__ = [
    "CampaignComparison", "CampaignResult", "run_chaos_ab",
    "run_chaos_campaign",
    "ChaosEngine", "FaultKind", "FaultPlan", "FaultSpec",
    "Heartbeat", "NodeHealthView", "NodeStatus", "NodeView",
    "BreakerState", "CircuitBreaker", "DegradationConfig", "RetryPolicy",
]
