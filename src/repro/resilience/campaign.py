"""Chaos campaigns: seeded fault storms, and the policies-on/off A/B.

A *campaign* is one trace-driven rack run with a :class:`FaultPlan`
replayed against it by a :class:`ChaosEngine`, reduced to the headline
resilience numbers: fleet availability, SLA violations, MTTR (mean VM
service-restoration time) and evacuation success rate.  The A/B runner
replays the *same* plan twice — once with the full degradation ladder
(:meth:`DegradationConfig.on`), once with a naive controller
(:meth:`DegradationConfig.off`) — which is the paper-style demonstration
that graceful degradation recovers most of the availability a lying,
lossy, failing control path takes away.

Everything derives from one seed, so campaigns replay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, TYPE_CHECKING

from ..core.exceptions import ConfigurationError
from .chaos import FaultPlan
from .policies import DegradationConfig

if TYPE_CHECKING:  # runtime import is lazy: cloudmgr imports us
    from ..cloudmgr.simulation import RackExperiment


@dataclass
class CampaignResult:
    """One chaos campaign, reduced to its headline numbers."""

    label: str
    n_nodes: int
    duration_s: float
    seed: int
    plan_faults: int
    fleet_availability: float
    #: Mean VM service-restoration time; None when nothing went down.
    mttr_s: Optional[float]
    sla_violations: int
    evacuation_success_rate: float
    node_crashes: int
    recoveries: int
    failovers: int
    breaker_trips: int
    flaps: int
    heartbeats_missed: int
    admitted: int
    rejected: int
    completed: int
    injections: Dict[str, int] = field(default_factory=dict)
    #: The full experiment, for drill-down (excluded from comparisons).
    experiment: Optional["RackExperiment"] = field(
        default=None, repr=False, compare=False)

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        mttr = f"{self.mttr_s:.0f}s" if self.mttr_s is not None else "n/a"
        return "\n".join([
            f"{self.label}: {self.n_nodes} nodes, "
            f"{self.duration_s:.0f}s, seed {self.seed}, "
            f"{self.plan_faults} planned faults",
            f"  availability={self.fleet_availability:.4f} "
            f"mttr={mttr} sla_violations={self.sla_violations}",
            f"  evac_success={self.evacuation_success_rate:.2f} "
            f"crashes={self.node_crashes} recoveries={self.recoveries} "
            f"failovers={self.failovers}",
            f"  breaker_trips={self.breaker_trips} flaps={self.flaps} "
            f"heartbeats_missed={self.heartbeats_missed}",
            f"  admitted={self.admitted} rejected={self.rejected} "
            f"completed={self.completed}",
        ])


def run_chaos_campaign(n_nodes: int = 4, duration_s: float = 3600.0,
                       seed: int = 0, rate_per_hour: float = 6.0,
                       intensity: float = 0.6,
                       plan: Optional[FaultPlan] = None,
                       degradation: Optional[DegradationConfig] = None,
                       base_rate_per_hour: float = 12.0,
                       step_s: float = 60.0,
                       label: str = "policies-on") -> CampaignResult:
    """One seeded chaos campaign over a trace-driven rack.

    With no explicit ``plan``, a reproducible one is drawn from the
    seed via :meth:`FaultPlan.random`.  All stochasticity — the rack's
    hardware, the arrival trace, the fault draws — hangs off ``seed``,
    so same-seed campaigns replay bit-for-bit.
    """
    from ..cloudmgr.simulation import run_rack_experiment

    if n_nodes < 2:
        raise ConfigurationError(
            "a chaos campaign needs at least two nodes to fail over to")
    if plan is None:
        plan = FaultPlan.random(
            [f"node{i}" for i in range(n_nodes)], duration_s,
            rate_per_hour=rate_per_hour, seed=seed, intensity=intensity)
    experiment = run_rack_experiment(
        n_nodes=n_nodes, duration_s=duration_s, seed=seed,
        degradation=degradation, fault_plan=plan,
        base_rate_per_hour=base_rate_per_hour, step_s=step_s)
    cloud = experiment.cloud
    return CampaignResult(
        label=label, n_nodes=n_nodes, duration_s=duration_s, seed=seed,
        plan_faults=len(plan),
        fleet_availability=cloud.fleet_availability(),
        mttr_s=cloud.mttr_s(),
        sla_violations=cloud.tracker.violations_total(),
        evacuation_success_rate=cloud.migrations.success_rate(),
        node_crashes=cloud.stats.node_crashes,
        recoveries=cloud.stats.recoveries,
        failovers=cloud.stats.failovers,
        breaker_trips=cloud.stats.breaker_trips,
        flaps=cloud.stats.flaps,
        heartbeats_missed=cloud.stats.heartbeats_missed,
        admitted=experiment.stats.admitted,
        rejected=experiment.stats.rejected,
        completed=cloud.stats.completed,
        injections=dict(cloud.chaos.injections) if cloud.chaos else {},
        experiment=experiment,
    )


@dataclass
class CampaignComparison:
    """The headline A/B: same fault plan, policies on vs off."""

    on: CampaignResult
    off: CampaignResult

    @property
    def availability_gain(self) -> float:
        """Availability recovered by the degradation policies."""
        return self.on.fleet_availability - self.off.fleet_availability

    @property
    def mttr_reduction_s(self) -> Optional[float]:
        """MTTR saved by the policies (None if either arm saw no outage)."""
        if self.on.mttr_s is None or self.off.mttr_s is None:
            return None
        return self.off.mttr_s - self.on.mttr_s

    def describe(self) -> str:
        """Human-readable A/B summary."""
        lines = [self.on.describe(), self.off.describe()]
        lines.append(
            f"delta: availability {self.availability_gain:+.4f}")
        if self.mttr_reduction_s is not None:
            lines.append(f"delta: mttr {-self.mttr_reduction_s:+.0f}s")
        return "\n".join(lines)


def run_chaos_ab(n_nodes: int = 4, duration_s: float = 3600.0,
                 seed: int = 0, rate_per_hour: float = 6.0,
                 intensity: float = 0.6,
                 plan: Optional[FaultPlan] = None,
                 base_rate_per_hour: float = 12.0,
                 step_s: float = 60.0,
                 jobs: int = 1) -> CampaignComparison:
    """Replay one fault plan with the degradation ladder on, then off.

    With ``jobs >= 2`` the two arms run concurrently in shared-nothing
    worker subprocesses (they are independent replays of the same plan,
    so running them serially wastes an idle core and 2× the wall
    clock).  The parallel path returns bit-identical headline numbers
    to the serial one, but the per-arm ``experiment`` drill-down
    handles stay behind in the workers and come back as ``None``.
    """
    if plan is None:
        plan = FaultPlan.random(
            [f"node{i}" for i in range(n_nodes)], duration_s,
            rate_per_hour=rate_per_hour, seed=seed, intensity=intensity)
    if jobs >= 2:
        return _run_chaos_ab_parallel(
            n_nodes=n_nodes, duration_s=duration_s, seed=seed,
            rate_per_hour=rate_per_hour, intensity=intensity, plan=plan,
            base_rate_per_hour=base_rate_per_hour, step_s=step_s)
    common = dict(n_nodes=n_nodes, duration_s=duration_s, seed=seed,
                  plan=plan, base_rate_per_hour=base_rate_per_hour,
                  step_s=step_s)
    on = run_chaos_campaign(degradation=DegradationConfig.on(),
                            label="policies-on", **common)
    off = run_chaos_campaign(degradation=DegradationConfig.off(),
                             label="policies-off", **common)
    return CampaignComparison(on=on, off=off)


def _run_chaos_ab_parallel(n_nodes: int, duration_s: float, seed: int,
                           rate_per_hour: float, intensity: float,
                           plan: FaultPlan, base_rate_per_hour: float,
                           step_s: float) -> CampaignComparison:
    """Both A/B arms at once, through the sweep engine."""
    from ..core.exceptions import SweepError
    from ..sweep.engine import (
        SweepSpec,
        campaign_result_from_row,
        run_sweep,
    )

    spec = SweepSpec(
        seeds=(seed,), n_nodes=n_nodes, duration_s=duration_s,
        rate_per_hour=rate_per_hour, intensity=intensity,
        base_rate_per_hour=base_rate_per_hour, step_s=step_s,
        grid={"policies": ["on", "off"]}, plan=plan.as_dict())
    outcome = run_sweep(spec, jobs=2)
    if outcome.failures:
        failed = outcome.failures[0]
        raise SweepError(
            f"A/B arm {failed.point!r} failed after {failed.attempts} "
            f"attempts: {failed.error}")
    by_point = {row.point: row for row in outcome.rows}
    # The arm labels ride through CampaignResult.label; restore the
    # serial path's human-readable names.
    on = replace(campaign_result_from_row(by_point["policies=on"]),
                 label="policies-on")
    off = replace(campaign_result_from_row(by_point["policies=off"]),
                  label="policies-off")
    return CampaignComparison(on=on, off=off)
