"""The UniServer hypervisor: EOP control, error masking, VM management.

Paper Section 4.A.  The hypervisor (KVM-like, symmetric) is the layer that

* sets the system at a "just-right configuration" from the margins the
  StressLog characterised and the Predictor endorses, within the failure
  budget the SLAs allow;
* offers VMs "a reliable virtual execution environment on top of
  potentially unreliable hardware": correctable errors are logged,
  VM-killing faults are masked by restarting the victim VM, and the
  hypervisor's own state lives in the reliable memory domain so DRAM
  relaxation cannot wedge the host;
* isolates cores and domains with high error rates (via
  :class:`~repro.hypervisor.isolation.IsolationManager`).

The execution model is tick-based on the simulation clock: each tick runs
every active VM for a time slice on its assigned core at that core's
operating point, samples crash/ECC/DRAM-retention faults from the
hardware models, and applies the masking policy.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.clock import SimClock, step_count
from ..core.eop import NOMINAL_REFRESH_INTERVAL_S, OperatingPoint
from ..core.events import (
    ConfigChangeEvent,
    CorrectableErrorEvent,
    CrashEvent,
    EventBus,
    UncorrectableErrorEvent,
)
from ..core.exceptions import ConfigurationError, SchedulingError
from ..core.runtime import MetricsRegistry, NodeRuntime
from ..daemons.infovector import MarginVector
from ..hardware.faults import FaultClass, FaultOrigin, FaultRecord
from ..hardware.platform import ServerPlatform
from .memory import (
    CLASS_VM_CRITICAL,
    CLASS_VM_DATA,
    MemoryAccountant,
    PlacementPolicy,
)
from .vm import VirtualMachine, VMState

#: With tiered placement on, this fraction of a VM's memory is treated as
#: VM-critical (page tables, checkpoint images) and steered to the normal
#: tier, with a floor covering fixed per-VM structures.
VM_CRITICAL_FRACTION = 0.02
VM_CRITICAL_MIN_MB = 8.0


@dataclass(frozen=True)
class HypervisorConfig:
    """Policy knobs of the hypervisor."""

    #: Per-run failure budget a characterised point must meet before the
    #: hypervisor adopts it.
    failure_budget: float = 1e-4
    #: Mask VM-fatal faults by restarting the victim VM.
    restart_failed_vms: bool = True
    #: Keep hypervisor state in the reliable memory domain.
    use_reliable_domain: bool = True
    #: Place VMs on cores EOP-aware (affinity planner) instead of
    #: least-loaded: strong cores take the stress-heavy guests.
    use_affinity: bool = False
    #: Split each VM into a VM-critical slice (page tables, checkpoints →
    #: normal tier) and tolerant data pages (relaxed tier).  Off by
    #: default: the binary reliable/relaxed placement stays untouched.
    tiered_placement: bool = False
    #: Scheduler time slice (seconds of simulated time per tick).
    tick_s: float = 1.0
    #: Fraction of a tick a VM effectively executes (scheduling overhead).
    efficiency: float = 0.95

    def __post_init__(self) -> None:
        if not 0 < self.failure_budget < 1:
            raise ConfigurationError("failure budget must be in (0, 1)")
        if self.tick_s <= 0:
            raise ConfigurationError("tick must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError("efficiency must be in (0, 1]")


@dataclass
class HypervisorStats:
    """Counters of hypervisor activity."""

    ticks: int = 0
    vm_crashes_masked: int = 0
    vm_sdc_events: int = 0
    correctable_errors: int = 0
    host_crashes: int = 0
    margin_applications: int = 0
    energy_j: float = 0.0


class Hypervisor:
    """A symmetric, error-resilient hypervisor for one platform."""

    def __init__(self, platform: ServerPlatform,
                 clock: Optional[SimClock] = None,
                 bus: Optional[EventBus] = None,
                 config: Optional[HypervisorConfig] = None,
                 seed: int = 0,
                 runtime: Optional[NodeRuntime] = None) -> None:
        if runtime is not None:
            clock = clock or runtime.clock
            bus = bus or runtime.bus
        if clock is None:
            raise ConfigurationError(
                "Hypervisor needs a runtime or an explicit clock")
        self.platform = platform
        self.clock = clock
        self.bus = bus or EventBus()
        self.config = config or HypervisorConfig()
        self.metrics = (runtime.metrics if runtime is not None
                        else MetricsRegistry())
        self.placement = PlacementPolicy(
            platform.memory,
            use_reliable_domain=self.config.use_reliable_domain,
        )
        self.accountant = MemoryAccountant()
        self.stats = HypervisorStats()
        self._vms: Dict[str, VirtualMachine] = {}
        self._assignments: Dict[str, int] = {}
        self._rng = (runtime.rng("hypervisor") if runtime is not None
                     else np.random.default_rng(seed))
        self._crashed = False
        self._booted = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        """Whether the host is down (critical state corrupted)."""
        return self._crashed

    def boot(self) -> None:
        """Bring the hypervisor up: place its own state in memory."""
        if self._booted:
            return
        footprint = self.accountant.hypervisor_footprint_mb(0)
        self.placement.place("hypervisor", footprint, critical=True)
        self._booted = True

    def inject_crash(self) -> None:
        """Force a host crash (chaos / fault-injection entry point).

        Indistinguishable downstream from an organic critical-state hit:
        the fault is ledgered, the crash event published, and the host
        stops ticking until :meth:`reboot`.
        """
        if self._crashed:
            return
        self._crashed = True
        self.stats.host_crashes += 1
        self._record_fault(FaultClass.CRASH, FaultOrigin.UNKNOWN,
                           "hypervisor", "injected host crash")
        self.bus.publish(CrashEvent(
            timestamp=self.clock.now, source="hypervisor",
            component="hypervisor", operating_point="injected",
        ))

    def reboot(self) -> None:
        """Recover from a host crash; running VMs are lost and restarted."""
        if not self._crashed:
            return
        self._crashed = False
        for vm in self._vms.values():
            if vm.is_active:
                vm.fail()
            if vm.state is VMState.FAILED and self.config.restart_failed_vms:
                vm.restart()

    # -- VM management ---------------------------------------------------------

    @property
    def vms(self) -> List[VirtualMachine]:
        """All VMs known to the hypervisor."""
        return list(self._vms.values())

    def vm(self, name: str) -> VirtualMachine:
        """One VM by name."""
        if name not in self._vms:
            raise KeyError(f"no VM named {name!r}")
        return self._vms[name]

    def active_vms(self) -> List[VirtualMachine]:
        """VMs currently occupying resources."""
        return [vm for vm in self._vms.values() if vm.is_active]

    def _core_load(self) -> Dict[int, int]:
        active = self.platform.chip.active_cores()
        load: Dict[int, int] = {core.core_id: 0 for core in active}
        for vm_name, core_id in self._assignments.items():
            if core_id in load and self._vms[vm_name].is_active:
                load[core_id] += 1
        return load

    def _pick_core(self, vm: Optional[VirtualMachine] = None) -> int:
        """Choose a core for a VM.

        Default policy: least-loaded active core.  With
        ``config.use_affinity`` (and a VM to inspect), ties of load are
        broken EOP-aware: the core whose crash voltage under this VM's
        stress profile is lowest — the strongest core for this guest.
        """
        load = self._core_load()
        if not load:
            raise SchedulingError("no active cores available")
        if vm is None or not self.config.use_affinity:
            return min(load, key=lambda c: (load[c], c))
        profile = vm.workload.profile

        def affinity_key(core_id: int):
            """Sort key: load, then crash voltage, then id."""
            crash_v = self.platform.chip.core(core_id).crash_voltage_v(
                profile)
            return (load[core_id], crash_v, core_id)

        return min(load, key=affinity_key)

    def create_vm(self, vm: VirtualMachine) -> None:
        """Admit and start a VM: place memory, assign a core."""
        if not self._booted:
            raise ConfigurationError("boot the hypervisor first")
        if self._crashed:
            raise ConfigurationError("hypervisor is crashed")
        if vm.name in self._vms:
            raise ConfigurationError(f"VM {vm.name!r} already exists")
        total_mb = vm.guest_os_mb + vm.workload.demand.memory_mb
        if self.config.tiered_placement:
            critical_mb = min(total_mb / 2.0,
                              max(VM_CRITICAL_MIN_MB,
                                  total_mb * VM_CRITICAL_FRACTION))
            self.placement.place(vm.name, critical_mb,
                                 placement_class=CLASS_VM_CRITICAL)
            self.placement.place(vm.name, total_mb - critical_mb,
                                 placement_class=CLASS_VM_DATA)
        else:
            self.placement.place(vm.name, total_mb)
        self._vms[vm.name] = vm
        self._assignments[vm.name] = self._pick_core(vm)
        vm.start()

    def destroy_vm(self, name: str) -> None:
        """Tear a VM down and free its memory."""
        vm = self.vm(name)
        if vm.state is VMState.RUNNING:
            vm.pause()
        self.placement.release(name)
        del self._vms[name]
        self._assignments.pop(name, None)

    def detach_vm(self, name: str) -> VirtualMachine:
        """Remove a VM without failing it (for migration to another host)."""
        vm = self.vm(name)
        self.placement.release(name)
        del self._vms[name]
        self._assignments.pop(name, None)
        return vm

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable mutable hypervisor state.

        VM objects are saved as overlays (name -> mutated fields); the
        restore side rebuilds the VM shells through a caller-supplied
        factory because workloads are regenerated, not serialized.
        Dict insertion order is behaviour (``tick`` iterates ``_vms``),
        so orderings are preserved as-is.
        """
        return {
            "stats": asdict(self.stats),
            "vms": {name: vm.state_dict()
                    for name, vm in self._vms.items()},
            "assignments": dict(self._assignments),
            "placement": self.placement.state_dict(),
            "accountant": self.accountant.state_dict(),
            "rng": self._rng.bit_generator.state,
            "crashed": self._crashed,
            "booted": self._booted,
        }

    def load_state_dict(self, state: Dict[str, object],
                        vm_factory: Callable[[str], VirtualMachine]) -> None:
        """Restore state saved by :meth:`state_dict`.

        ``vm_factory`` must return a freshly built (PENDING) VM shell for
        a given name — same workload and resources as at admission time;
        the saved per-VM overlay is applied on top of it.
        """
        stats = state["stats"]
        self.stats = HypervisorStats(**stats)  # type: ignore[arg-type]
        self._vms = {}
        for name, vm_state in state["vms"].items():  # type: ignore[union-attr]
            vm = vm_factory(str(name))
            vm.load_state_dict(vm_state)
            self._vms[str(name)] = vm
        self._assignments = {str(k): int(v) for k, v
                             in state["assignments"].items()}  # type: ignore[union-attr]
        self.placement.load_state_dict(state["placement"])  # type: ignore[arg-type]
        self.accountant.load_state_dict(state["accountant"])  # type: ignore[arg-type]
        self._rng.bit_generator.state = state["rng"]
        self._crashed = bool(state["crashed"])
        self._booted = bool(state["booted"])

    # -- EOP configuration --------------------------------------------------------

    @staticmethod
    def _core_id(component: str) -> Optional[int]:
        """Parse ``"core<N>"`` into N; None for anything else."""
        if not component.startswith("core"):
            return None
        try:
            return int(component[len("core"):])
        except ValueError:
            return None

    def apply_component(self, component: str,
                        point: OperatingPoint) -> Optional[Callable[[], None]]:
        """Reconfigure one component, returning a rollback closure.

        This is the hardware-facing transactional setter the EOP governor
        builds on: no budget gate, no batch bookkeeping.  Core components
        adopt the point's V-F (refresh stays per-domain); memory domains
        adopt only its refresh interval.  Returns ``None`` when the
        component is unknown, the domain is reliability-hardened, or the
        configuration would not change.
        """
        core_id = self._core_id(component)
        if core_id is not None and 0 <= core_id < self.platform.chip.n_cores:
            old = self.platform.core_point(core_id)
            new = point.with_refresh(old.refresh_interval_s)
            if new == old:
                return None
            self._set_core_point(component, core_id, old, new)
            return lambda: self._set_core_point(component, core_id, new, old)
        if component in self.platform.memory:
            domain = self.platform.memory.domain(component)
            if domain.reliable:
                return None
            old_interval = domain.refresh_interval_s
            new_interval = point.refresh_interval_s
            if new_interval == old_interval:
                return None
            self._set_refresh(component, old_interval, new_interval)
            return lambda: self._set_refresh(
                component, new_interval, old_interval)
        return None

    def _set_core_point(self, component: str, core_id: int,
                        old: OperatingPoint, new: OperatingPoint) -> None:
        self.platform.set_core_point(core_id, new)
        self.bus.publish(ConfigChangeEvent(
            timestamp=self.clock.now, source="hypervisor",
            component=component, old_point=old.describe(),
            new_point=new.describe(),
        ))

    def _set_refresh(self, component: str, old_interval: float,
                     new_interval: float) -> None:
        domain = self.platform.memory.domain(component)
        domain.set_refresh_interval(new_interval)
        self.bus.publish(ConfigChangeEvent(
            timestamp=self.clock.now, source="hypervisor",
            component=component,
            old_point=f"refresh {old_interval * 1e3:.0f} ms",
            new_point=f"refresh {domain.refresh_interval_s * 1e3:.0f} ms",
        ))

    def apply_margins(self, margins: MarginVector) -> List[str]:
        """Adopt characterised safe points that fit the failure budget.

        Returns the components whose configuration changed.  A margin with
        failure probability above the budget is skipped (counted in the
        ``hypervisor.margin_skips`` metric) — the component stays at its
        current, safer point.  Supervised adoption with rollback lives in
        :class:`repro.eop.EOPGovernor`, which drives this hypervisor's
        :meth:`apply_component` primitive instead.
        """
        changed: List[str] = []
        for margin in margins.margins:
            if margin.failure_probability > self.config.failure_budget:
                self.metrics.inc("hypervisor.margin_skips")
                continue
            if self.apply_component(margin.component,
                                    margin.safe_point) is not None:
                changed.append(margin.component)
        if changed:
            self.stats.margin_applications += 1
            self.metrics.inc("hypervisor.margin_applications")
        return changed

    # -- the execution engine --------------------------------------------------------

    def _record_fault(self, fault_class: FaultClass, origin: FaultOrigin,
                      component: str, detail: str = "") -> None:
        self.platform.faults.record(FaultRecord(
            timestamp=self.clock.now, fault_class=fault_class,
            origin=origin, component=component, detail=detail,
        ))
        self.metrics.inc(f"hardware.faults.{fault_class.value}")

    def _domain_error_rate_per_s(self, domain) -> float:
        """Consumed retention-error rate of a relaxed domain.

        Weak cells flip once per refresh interval; an error only matters
        when the affected page is allocated and its data actually read.
        """
        ber = domain.ber()
        if ber <= 0:
            return 0.0
        used_mb = sum(a.size_mb for a in self.placement.allocations
                      if a.domain == domain.name)
        occupancy = min(1.0, used_mb / (domain.capacity_gb * 1024.0))
        consumed_fraction = 0.5 * occupancy   # vulnerable + actually read
        weak_cells = ber * domain.capacity_bits
        return weak_cells * consumed_fraction / domain.refresh_interval_s

    def _handle_dram_errors(self, dt_s: float) -> None:
        for domain in self.platform.memory.relaxed_domains():
            rate = self._domain_error_rate_per_s(domain)
            n_errors = int(self._rng.poisson(rate * dt_s))
            for _ in range(n_errors):
                if self.placement.error_hits_critical(domain.name, self._rng):
                    # Retention error in hypervisor/kernel state: host down.
                    self._crashed = True
                    self.stats.host_crashes += 1
                    self._record_fault(FaultClass.CRASH, FaultOrigin.DRAM,
                                       domain.name, "critical state hit")
                    self.bus.publish(CrashEvent(
                        timestamp=self.clock.now, source="hypervisor",
                        component=domain.name,
                        operating_point=(
                            f"refresh {domain.refresh_interval_s:.2f} s"),
                    ))
                    return
                # VM data hit: a silent corruption inside one guest.
                self.stats.vm_sdc_events += 1
                self._record_fault(
                    FaultClass.SILENT_DATA_CORRUPTION, FaultOrigin.DRAM,
                    domain.name, "guest page",
                )

    def tick(self) -> None:
        """Advance the machine by one scheduler tick."""
        if not self._booted:
            raise ConfigurationError("boot the hypervisor first")
        if self._crashed:
            return
        dt = self.config.tick_s
        self.stats.ticks += 1
        self.metrics.inc("hypervisor.ticks")
        # Account memory at the slice start, while completed-last-tick VMs
        # have already been replaced by the management layer.
        self._sample_memory()

        for vm in list(self._vms.values()):
            if vm.state is not VMState.RUNNING:
                continue
            core_id = self._assignments[vm.name]
            core = self.platform.chip.core(core_id)
            if core.isolated:
                core_id = self._pick_core(vm)
                self._assignments[vm.name] = core_id
                core = self.platform.chip.core(core_id)
            point = self.platform.core_point(core_id)
            # Phase-aware: a guest entering a droop-heavy phase becomes
            # riskier mid-run (stationary workloads return their single
            # profile).
            profile = vm.workload.profile_at(vm.progress)

            crash_p = core.crash_probability(point, profile)
            if self._rng.random() < crash_p:
                # The core glitched under this VM's stress: kill and mask.
                vm.fail()
                self.stats.vm_crashes_masked += 1
                self.metrics.inc("hypervisor.vm_crashes_masked")
                self._record_fault(FaultClass.CRASH, FaultOrigin.CPU_CORE,
                                   f"core{core_id}", f"vm {vm.name}")
                self.bus.publish(CrashEvent(
                    timestamp=self.clock.now, source="hypervisor",
                    component=f"core{core_id}",
                    operating_point=point.describe(),
                ))
                if self.config.restart_failed_vms:
                    vm.restart()
                continue

            crash_v = core.crash_voltage_v(profile, point.frequency_hz)
            cache_result = self.platform.chip.cache.run(
                point.voltage_v, crash_v, profile)
            if cache_result.correctable:
                self.stats.correctable_errors += cache_result.correctable
                self.metrics.inc("hypervisor.correctable_errors",
                                 cache_result.correctable)
                self._record_fault(FaultClass.CORRECTABLE, FaultOrigin.CACHE,
                                   f"core{core_id}",
                                   f"{cache_result.correctable} corrected")
                self.bus.publish(CorrectableErrorEvent(
                    timestamp=self.clock.now, source="hypervisor",
                    component=f"core{core_id}",
                    detail=f"{cache_result.correctable} SECDED corrections",
                ))

            cycles = dt * point.frequency_hz * self.config.efficiency
            vm.execute(cycles)
            self.stats.energy_j += self.platform.chip.power.total_power_w(
                point, activity=profile.activity_factor,
                temperature_c=self.platform.chip.thermal.temperature_c,
            ) * dt

        self._handle_dram_errors(dt)
        self.metrics.set_gauge("hypervisor.energy_j", self.stats.energy_j)
        self.metrics.set_gauge("hypervisor.active_vms",
                               float(len(self.active_vms())))
        self.metrics.set_gauge("hardware.faults.total",
                               float(len(self.platform.faults)))

    def _sample_memory(self) -> None:
        active = self.active_vms()
        vm_mb = sum(vm.guest_os_mb for vm in active)
        app_mb = sum(vm.memory_usage_mb() - vm.guest_os_mb for vm in active)
        self.accountant.sample(self.clock.now, len(active), vm_mb, app_mb)

    def run(self, duration_s: float) -> None:
        """Run the tick loop for a stretch of simulated time."""
        if duration_s < 0:
            raise ConfigurationError("duration must be non-negative")
        n_ticks = step_count(duration_s, self.config.tick_s)
        for _ in range(n_ticks):
            if self._crashed:
                break
            self.tick()
