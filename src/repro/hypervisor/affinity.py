"""EOP-aware vCPU placement (heterogeneity-exploiting affinity).

The default hypervisor scheduler balances VM count per core; with
per-core EOPs the cores are *not* interchangeable — a strong core runs
the same work at a lower voltage, and a stress-heavy guest on a weak
core burns the whole margin.  The affinity planner assigns VMs to cores
minimising total power while respecting each pairing's failure budget,
realising the "treat heterogeneity as an opportunity" idea at the
scheduler level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError, SchedulingError
from ..hardware.chip import ChipModel
from .vm import VirtualMachine


@dataclass(frozen=True)
class AffinityAssignment:
    """One VM→core pairing with its predicted operating cost."""

    vm_name: str
    core_id: int
    point: OperatingPoint
    relative_power: float
    failure_probability: float


class AffinityPlanner:
    """Greedy minimum-power assignment of VMs to heterogeneous cores.

    For every (VM, core) pair the planner computes the deepest safe
    voltage (the core's crash voltage under the VM's stress profile plus
    a guard margin) and the resulting relative power; assignment then
    proceeds greedily from the globally cheapest pairing, one VM per
    pass, at most ``vms_per_core`` guests per core.

    Greedy is within a few percent of optimal for this matrix shape and
    runs in O(V·C·log(V·C)) — suitable for a scheduler hot path.
    """

    def __init__(self, chip: ChipModel, guard_margin_v: float = 0.010,
                 failure_budget: float = 1e-4,
                 vms_per_core: int = 2) -> None:
        if guard_margin_v < 0:
            raise ConfigurationError("guard margin must be >= 0")
        if not 0 < failure_budget < 1:
            raise ConfigurationError("failure budget must be in (0, 1)")
        if vms_per_core < 1:
            raise ConfigurationError("vms_per_core must be >= 1")
        self.chip = chip
        self.guard_margin_v = guard_margin_v
        self.failure_budget = failure_budget
        self.vms_per_core = vms_per_core

    def pairing_cost(self, vm: VirtualMachine,
                     core_id: int) -> Optional[AffinityAssignment]:
        """The safe point and cost of running ``vm`` on ``core_id``.

        Returns ``None`` when no safe point within the failure budget
        exists below nominal (the pairing then runs at nominal, which is
        always admissible).
        """
        core = self.chip.core(core_id)
        if core.isolated:
            return None
        nominal = self.chip.spec.nominal
        crash_v = core.crash_voltage_v(vm.workload.profile)
        safe_v = min(nominal.voltage_v, crash_v + self.guard_margin_v)
        point = nominal.with_voltage(safe_v)
        pfail = core.crash_probability(point, vm.workload.profile)
        if pfail > self.failure_budget:
            point = nominal
            pfail = core.crash_probability(nominal, vm.workload.profile)
        relative_power = self.chip.power.relative_dynamic_power(
            point, nominal)
        return AffinityAssignment(
            vm_name=vm.name, core_id=core_id, point=point,
            relative_power=relative_power, failure_probability=pfail,
        )

    def plan(self, vms: Sequence[VirtualMachine],
             ) -> List[AffinityAssignment]:
        """Assign every VM to a core, minimising total relative power."""
        if not vms:
            return []
        active_cores = [c.core_id for c in self.chip.active_cores()]
        if not active_cores:
            raise SchedulingError("no active cores to plan onto")
        capacity = len(active_cores) * self.vms_per_core
        if len(vms) > capacity:
            raise SchedulingError(
                f"{len(vms)} VMs exceed capacity {capacity} "
                f"({len(active_cores)} cores x {self.vms_per_core})"
            )

        candidates: List[AffinityAssignment] = []
        for vm in vms:
            for core_id in active_cores:
                pairing = self.pairing_cost(vm, core_id)
                if pairing is not None:
                    candidates.append(pairing)
        candidates.sort(key=lambda a: (a.relative_power, a.vm_name,
                                       a.core_id))

        load: Dict[int, int] = {core_id: 0 for core_id in active_cores}
        placed: Dict[str, AffinityAssignment] = {}
        for candidate in candidates:
            if candidate.vm_name in placed:
                continue
            if load[candidate.core_id] >= self.vms_per_core:
                continue
            placed[candidate.vm_name] = candidate
            load[candidate.core_id] += 1
        missing = [vm.name for vm in vms if vm.name not in placed]
        if missing:
            raise SchedulingError(
                f"could not place VMs: {', '.join(missing)}"
            )
        return [placed[vm.name] for vm in vms]

    def total_relative_power(self,
                             plan: Sequence[AffinityAssignment]) -> float:
        """Sum of the plan's per-pairing relative powers."""
        return sum(a.relative_power for a in plan)


def naive_balanced_plan(planner: AffinityPlanner,
                        vms: Sequence[VirtualMachine],
                        ) -> List[AffinityAssignment]:
    """The heterogeneity-oblivious baseline: round-robin over cores.

    Each pairing still gets its own safe point (the hypervisor always
    characterises), but the *assignment* ignores which core suits which
    VM — isolating the value of affinity itself.
    """
    active_cores = [c.core_id for c in planner.chip.active_cores()]
    if not active_cores:
        raise SchedulingError("no active cores")
    plan = []
    for i, vm in enumerate(vms):
        core_id = active_cores[i % len(active_cores)]
        pairing = planner.pairing_cost(vm, core_id)
        if pairing is None:
            raise SchedulingError(
                f"core {core_id} unavailable for {vm.name}"
            )
        plan.append(pairing)
    return plan
