"""Selective checkpointing of critical hypervisor structures.

Paper Section 5.B: "The UniServer Hypervisor seeks resilience through a
careful characterization of the criticality and sensitivity of Hypervisor
data structures and code, and educated checking and selective
checkpointing mechanisms, driven by this analysis."

The fault-injection analysis (Figure 4) identifies the sensitive
categories (fs, kernel, net, mm); the :class:`CheckpointManager`
checkpoints exactly those objects.  A corruption consumed from a
checkpointed object is repaired by restore instead of wedging the
hypervisor — at a memory and time cost proportional to the protected
bytes, which is why selectivity matters (protecting everything would eat
the EOP energy gains; see the resilience ablation A3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.exceptions import CheckpointError, ConfigurationError
from .objects import ObjectCatalog, SENSITIVE_CATEGORIES


@dataclass(frozen=True)
class CheckpointCostModel:
    """Costs of maintaining and using checkpoints."""

    #: Time to snapshot one megabyte of protected state (seconds).
    snapshot_s_per_mb: float = 0.002
    #: Time to restore one object from its checkpoint (seconds).
    restore_s_per_object: float = 0.0005
    #: Memory overhead: checkpoint copies are this fraction of the
    #: protected bytes (1.0 = a full shadow copy).
    memory_overhead_factor: float = 1.0

    def __post_init__(self) -> None:
        if min(self.snapshot_s_per_mb, self.restore_s_per_object,
               self.memory_overhead_factor) < 0:
            raise ConfigurationError("checkpoint costs must be >= 0")


@dataclass
class CheckpointStats:
    """Counters of checkpoint activity."""

    snapshots: int = 0
    restores: int = 0
    snapshot_time_s: float = 0.0
    restore_time_s: float = 0.0


class CheckpointManager:
    """Maintains checkpoints for a selected set of object categories."""

    def __init__(self, catalog: ObjectCatalog,
                 protected_categories: Iterable[str] = SENSITIVE_CATEGORIES,
                 cost_model: Optional[CheckpointCostModel] = None) -> None:
        self.catalog = catalog
        self.cost_model = cost_model or CheckpointCostModel()
        self._protected: Set[str] = set(protected_categories)
        for category in self._protected:
            catalog.profile(category)  # validate names early
        self._valid: Set[int] = set()
        self.stats = CheckpointStats()

    # -- configuration -----------------------------------------------------

    @property
    def protected_categories(self) -> List[str]:
        """Categories currently under checkpoint, sorted."""
        return sorted(self._protected)

    def is_protected(self, object_id: int) -> bool:
        """Whether an object belongs to a protected category."""
        return self.catalog.get(object_id).category in self._protected

    def protected_bytes(self) -> int:
        """Total size of all protected objects."""
        return sum(
            self.catalog.total_size_bytes(category)
            for category in self._protected
        )

    def memory_overhead_mb(self) -> float:
        """Checkpoint shadow-copy memory cost in MB."""
        return (self.protected_bytes() / (1024.0 ** 2)
                * self.cost_model.memory_overhead_factor)

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable manager state."""
        return {
            "protected": sorted(self._protected),
            "valid": sorted(self._valid),
            "stats": {
                "snapshots": self.stats.snapshots,
                "restores": self.stats.restores,
                "snapshot_time_s": self.stats.snapshot_time_s,
                "restore_time_s": self.stats.restore_time_s,
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self._protected = {str(c) for c in state["protected"]}  # type: ignore[union-attr]
        self._valid = {int(i) for i in state["valid"]}  # type: ignore[union-attr]
        stats = state["stats"]
        self.stats = CheckpointStats(
            snapshots=int(stats["snapshots"]),  # type: ignore[index]
            restores=int(stats["restores"]),  # type: ignore[index]
            snapshot_time_s=float(stats["snapshot_time_s"]),  # type: ignore[index]
            restore_time_s=float(stats["restore_time_s"]),  # type: ignore[index]
        )

    # -- operation -----------------------------------------------------------

    def snapshot(self) -> float:
        """Take a checkpoint of every protected object.

        Returns the time the snapshot cost; all protected objects become
        restorable until their next corruption-restore.
        """
        self._valid = {
            o.object_id for o in self.catalog if o.category in self._protected
        }
        cost = (self.protected_bytes() / (1024.0 ** 2)
                * self.cost_model.snapshot_s_per_mb)
        self.stats.snapshots += 1
        self.stats.snapshot_time_s += cost
        return cost

    def can_restore(self, object_id: int) -> bool:
        """Whether a valid checkpoint exists for the object."""
        return object_id in self._valid

    def restore(self, object_id: int) -> float:
        """Restore one corrupted object from its checkpoint.

        Returns the restore time.  Raises :class:`CheckpointError` when no
        valid checkpoint covers the object — the caller must then treat
        the corruption as fatal.
        """
        if object_id not in self._valid:
            raise CheckpointError(
                f"object {object_id} has no valid checkpoint"
            )
        cost = self.cost_model.restore_s_per_object
        self.stats.restores += 1
        self.stats.restore_time_s += cost
        return cost

    def handle_corruption(self, object_id: int) -> bool:
        """Attempt recovery of a corrupted object.

        Returns ``True`` when the corruption was repaired from a
        checkpoint, ``False`` when the object is unprotected (or its
        checkpoint is unavailable) and the corruption stands.
        """
        if self.can_restore(object_id):
            self.restore(object_id)
            return True
        return False

    def coverage_fraction(self) -> float:
        """Fraction of *crucial* objects covered by protection.

        The selectivity metric: the paper's clustering means a small set
        of categories covers most crucial objects.
        """
        crucial_total = self.catalog.crucial_count()
        if crucial_total == 0:
            return 0.0
        covered = sum(
            self.catalog.crucial_count(category)
            for category in self._protected
        )
        return covered / crucial_total
