"""Isolation of problematic processing and memory resources.

Paper Section 4.A: "the Hypervisor isolates problematic processing and
memory resources experiencing high error rates, as reported by the
HealthLog".  The :class:`IsolationManager` watches the fault ledger and
fences cores (removing them from the vCPU scheduler) and memory domains
(reverting them to nominal refresh and draining allocations) whose error
rates cross the policy thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError, IsolationError
from ..core.runtime import MetricsRegistry, NodeRuntime
from ..hardware.faults import FaultLedger
from ..hardware.platform import ServerPlatform


@dataclass(frozen=True)
class IsolationPolicy:
    """Thresholds that trigger isolation."""

    #: Errors within the window that fence a core.
    core_error_threshold: int = 5
    #: Errors within the window that revert a memory domain to nominal.
    domain_error_threshold: int = 3
    #: Sliding window (seconds).
    window_s: float = 600.0

    def __post_init__(self) -> None:
        if self.core_error_threshold < 1 or self.domain_error_threshold < 1:
            raise ConfigurationError("thresholds must be >= 1")
        if self.window_s <= 0:
            raise ConfigurationError("window must be positive")


@dataclass(frozen=True)
class IsolationAction:
    """One isolation decision taken by the manager."""

    timestamp: float
    resource: str
    kind: str           # "core" or "domain"
    error_count: int


class IsolationManager:
    """Fences cores and memory domains with high error rates."""

    def __init__(self, platform: ServerPlatform,
                 policy: Optional[IsolationPolicy] = None,
                 runtime: Optional[NodeRuntime] = None) -> None:
        self.platform = platform
        self.policy = policy or IsolationPolicy()
        self.metrics = (runtime.metrics if runtime is not None
                        else MetricsRegistry())
        self.actions: List[IsolationAction] = []
        self._isolated_domains: Set[str] = set()

    @property
    def isolated_cores(self) -> List[int]:
        """Core ids currently fenced off."""
        return [c.core_id for c in self.platform.chip.cores if c.isolated]

    @property
    def isolated_domains(self) -> List[str]:
        """Memory domains currently fenced, sorted."""
        return sorted(self._isolated_domains)

    def _component_errors(self, ledger: FaultLedger, component: str,
                          now: float) -> int:
        return ledger.count(component=component,
                            since=now - self.policy.window_s)

    def review(self, ledger: FaultLedger, now: float) -> List[IsolationAction]:
        """Inspect the ledger and isolate anything above threshold.

        Returns the actions taken in this review.  Refuses to isolate the
        last usable core: a hypervisor with no cores is a crash, not a
        mitigation.
        """
        taken: List[IsolationAction] = []
        self.metrics.inc("hypervisor.isolation.reviews")

        for core in self.platform.chip.cores:
            if core.isolated:
                continue
            component = f"core{core.core_id}"
            errors = self._component_errors(ledger, component, now)
            if errors >= self.policy.core_error_threshold:
                active = [c for c in self.platform.chip.cores
                          if not c.isolated]
                if len(active) <= 1:
                    raise IsolationError(
                        f"cannot isolate {component}: it is the last "
                        "active core"
                    )
                core.isolate()
                action = IsolationAction(
                    timestamp=now, resource=component, kind="core",
                    error_count=errors,
                )
                self.actions.append(action)
                taken.append(action)
                self.metrics.inc("hypervisor.isolation.cores_fenced")

        for domain in self.platform.memory.domains():
            if domain.reliable or domain.name in self._isolated_domains:
                continue
            errors = self._component_errors(ledger, domain.name, now)
            if errors >= self.policy.domain_error_threshold:
                domain.set_refresh_interval(NOMINAL_REFRESH_INTERVAL_S)
                self._isolated_domains.add(domain.name)
                action = IsolationAction(
                    timestamp=now, resource=domain.name, kind="domain",
                    error_count=errors,
                )
                self.actions.append(action)
                taken.append(action)
                self.metrics.inc("hypervisor.isolation.domains_fenced")

        return taken

    def state_dict(self) -> dict:
        """Serializable manager state (core fences live on the cores)."""
        return {
            "actions": [[a.timestamp, a.resource, a.kind, a.error_count]
                        for a in self.actions],
            "isolated_domains": sorted(self._isolated_domains),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self.actions = [
            IsolationAction(timestamp=float(row[0]), resource=str(row[1]),
                            kind=str(row[2]), error_count=int(row[3]))
            for row in state["actions"]
        ]
        self._isolated_domains = {str(n) for n in state["isolated_domains"]}

    def release_core(self, core_id: int) -> None:
        """Return a fenced core to service (after re-characterisation)."""
        self.platform.chip.core(core_id).deisolate()

    def release_domain(self, domain_name: str) -> None:
        """Allow a fenced domain to be relaxed again."""
        self._isolated_domains.discard(domain_name)
