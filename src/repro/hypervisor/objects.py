"""Catalog of the hypervisor's statically allocated objects.

The paper's Figure 4 campaign injects Silent Data Corruptions into every
statically allocated object of the Hypervisor — 16 820 objects in total —
and classifies each as crucial or non-crucial for the hypervisor state.
Objects cluster "according to their functionality" into the kernel
source-tree categories shown on the figure's x-axis (block, drivers, fs,
init, kernel, mm, pci, power, security, vdso) plus the network (net)
structures the paper's text calls out as sensitive.

The catalog models, per category:

* the object count (summing to the paper's 16 820);
* the *crucial fraction* — objects whose corruption, when the object is
  actually used, wedges the hypervisor;
* per-execution *activation probabilities* with and without VM load.
  Load amplification is the mechanism behind Figure 4's order-of-
  magnitude difference: a loaded hypervisor touches its fs/kernel/mm/net
  state constantly, so the same corruption is far more likely to be
  consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class CategoryProfile:
    """Static description of one object category."""

    name: str
    n_objects: int
    crucial_fraction: float
    activation_loaded: float
    activation_unloaded: float

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ConfigurationError("category needs at least one object")
        for field_name in ("crucial_fraction", "activation_loaded",
                           "activation_unloaded"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{field_name} must be a probability"
                )


#: Category profiles calibrated to Figure 4: fs/kernel/mm/net dominate the
#: failures, init/vdso are nearly inert, and the loaded:unloaded failure
#: ratio lands at roughly an order of magnitude.
CATEGORY_PROFILES: Tuple[CategoryProfile, ...] = (
    CategoryProfile("block",    1200, 0.30, 0.30, 0.020),
    CategoryProfile("drivers",  3000, 0.25, 0.25, 0.020),
    CategoryProfile("fs",       2600, 0.45, 0.55, 0.040),
    CategoryProfile("init",      800, 0.10, 0.05, 0.010),
    CategoryProfile("kernel",   2400, 0.50, 0.42, 0.035),
    CategoryProfile("mm",       1900, 0.40, 0.45, 0.030),
    CategoryProfile("net",      1600, 0.40, 0.40, 0.020),
    CategoryProfile("pci",       900, 0.15, 0.10, 0.015),
    CategoryProfile("power",     700, 0.20, 0.12, 0.020),
    CategoryProfile("security",  900, 0.20, 0.15, 0.015),
    CategoryProfile("vdso",      820, 0.05, 0.08, 0.005),
)

#: The paper's total statically allocated object count.
TOTAL_OBJECTS = 16_820

#: Categories the paper singles out as sensitive and worth protecting.
SENSITIVE_CATEGORIES = ("fs", "kernel", "net", "mm")


@dataclass(frozen=True)
class HypervisorObject:
    """One statically allocated hypervisor object."""

    object_id: int
    category: str
    crucial: bool
    size_bytes: int

    def activation_probability(self, loaded: bool,
                               profile: CategoryProfile) -> float:
        """Per-execution probability the object's state is consumed."""
        return (profile.activation_loaded if loaded
                else profile.activation_unloaded)


class ObjectCatalog:
    """The full inventory of statically allocated hypervisor objects."""

    def __init__(self, seed: int = 0,
                 profiles: Tuple[CategoryProfile, ...] = CATEGORY_PROFILES,
                 ) -> None:
        total = sum(p.n_objects for p in profiles)
        if total != TOTAL_OBJECTS:
            raise ConfigurationError(
                f"category profiles sum to {total}, expected {TOTAL_OBJECTS}"
            )
        self._profiles: Dict[str, CategoryProfile] = {
            p.name: p for p in profiles
        }
        rng = np.random.default_rng(seed)
        self._objects: List[HypervisorObject] = []
        object_id = 0
        for profile in profiles:
            n_crucial = int(round(profile.n_objects * profile.crucial_fraction))
            crucial_flags = np.zeros(profile.n_objects, dtype=bool)
            crucial_flags[:n_crucial] = True
            rng.shuffle(crucial_flags)
            # Log-uniform-ish object sizes: most are small descriptors,
            # a few are large tables.
            sizes = np.exp(rng.uniform(np.log(16), np.log(65536),
                                       profile.n_objects)).astype(int)
            for crucial, size in zip(crucial_flags, sizes):
                self._objects.append(HypervisorObject(
                    object_id=object_id,
                    category=profile.name,
                    crucial=bool(crucial),
                    size_bytes=int(size),
                ))
                object_id += 1

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self):
        return iter(self._objects)

    def categories(self) -> List[str]:
        """Category names in catalog order."""
        return [p.name for p in CATEGORY_PROFILES
                if p.name in self._profiles]

    def profile(self, category: str) -> CategoryProfile:
        """The category profile by name."""
        if category not in self._profiles:
            raise KeyError(f"unknown category {category!r}")
        return self._profiles[category]

    def objects_in(self, category: str) -> List[HypervisorObject]:
        """All objects of one category."""
        self.profile(category)  # validate
        return [o for o in self._objects if o.category == category]

    def get(self, object_id: int) -> HypervisorObject:
        """Look up by identifier; raises KeyError when absent."""
        if not 0 <= object_id < len(self._objects):
            raise KeyError(f"no object with id {object_id}")
        return self._objects[object_id]

    def crucial_count(self, category: Optional[str] = None) -> int:
        """Number of crucial objects (optionally per category)."""
        return sum(
            1 for o in self._objects
            if o.crucial and (category is None or o.category == category)
        )

    def total_size_bytes(self, category: Optional[str] = None) -> int:
        """Summed object sizes (optionally per category)."""
        return sum(
            o.size_bytes for o in self._objects
            if category is None or o.category == category
        )

    def sensitive_objects(self) -> List[HypervisorObject]:
        """Objects in the categories the paper marks for protection."""
        return [o for o in self._objects
                if o.category in SENSITIVE_CATEGORIES]
