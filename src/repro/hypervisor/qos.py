"""QoS enforcement: EOP selection bounded by per-VM guarantees.

Paper Section 4.A: the hypervisor's "best configuration depends on a
number of different parameters, including [...] the quality of service
(QoS) requirements introduced by the cloud management framework
(OpenStack)".  Energy knobs and guarantees pull in opposite directions —
a low-power V-F point that halves a core's frequency is free energy for
a batch guest and a violation for an interactive one.

:class:`QoSGuard` holds each VM's requirement (derived from its SLA
tier), answers what a core's resident guests permit, filters a
StressLog margin vector down to the admissible subset, and audits the
current platform configuration for violations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError
from ..core.runtime import MetricsRegistry, NodeRuntime
from ..daemons.infovector import ComponentMargin, MarginVector
from .hypervisor import Hypervisor


@dataclass(frozen=True)
class QoSRequirement:
    """Per-VM service guarantees the hypervisor must uphold.

    ``min_frequency_fraction`` floors the clock of any core the VM runs
    on; ``max_failure_probability`` caps how aggressive an EOP the
    host may adopt while the VM is resident.
    """

    min_frequency_fraction: float = 0.5
    max_failure_probability: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.min_frequency_fraction <= 1.0:
            raise ConfigurationError(
                "min_frequency_fraction must be in (0, 1]"
            )
        if not 0.0 < self.max_failure_probability <= 1.0:
            raise ConfigurationError(
                "max_failure_probability must be in (0, 1]"
            )


def requirement_from_sla(sla) -> QoSRequirement:
    """Derive a hypervisor QoS requirement from a cloud SLA tier."""
    return QoSRequirement(
        min_frequency_fraction=sla.min_frequency_fraction,
        max_failure_probability=sla.failure_budget,
    )


@dataclass(frozen=True)
class QoSViolation:
    """One detected guarantee breach."""

    vm_name: str
    core_id: int
    kind: str          # "frequency" or "reliability"
    detail: str


class QoSGuard:
    """Tracks per-VM requirements and gates EOP adoption against them."""

    def __init__(self, hypervisor: Hypervisor,
                 runtime: Optional[NodeRuntime] = None) -> None:
        self.hypervisor = hypervisor
        self.metrics = (runtime.metrics if runtime is not None
                        else MetricsRegistry())
        self._requirements: Dict[str, QoSRequirement] = {}

    # -- registration ------------------------------------------------------

    def register(self, vm_name: str,
                 requirement: QoSRequirement) -> None:
        """Attach a requirement to a (resident or future) VM."""
        self._requirements[vm_name] = requirement

    def unregister(self, vm_name: str) -> None:
        """Drop a VM's requirement (e.g. after termination)."""
        self._requirements.pop(vm_name, None)

    def requirement_for(self, vm_name: str) -> Optional[QoSRequirement]:
        """The VM's requirement, or None when unregistered."""
        return self._requirements.get(vm_name)

    def state_dict(self) -> Dict[str, object]:
        """Serializable guard state (per-VM requirements, in order)."""
        return {
            "requirements": {
                name: [req.min_frequency_fraction,
                       req.max_failure_probability]
                for name, req in self._requirements.items()
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the requirements saved by :meth:`state_dict`."""
        self._requirements = {
            str(name): QoSRequirement(min_frequency_fraction=float(row[0]),
                                      max_failure_probability=float(row[1]))
            for name, row in state["requirements"].items()  # type: ignore[union-attr]
        }

    # -- what a core's residents permit -----------------------------------------

    def _residents(self, core_id: int) -> List[str]:
        return [
            vm_name for vm_name, assigned
            in self.hypervisor._assignments.items()
            if assigned == core_id
            and self.hypervisor.vm(vm_name).is_active
        ]

    def core_frequency_floor(self, core_id: int) -> float:
        """Strictest frequency floor among the core's resident VMs."""
        floors = [
            self._requirements[vm].min_frequency_fraction
            for vm in self._residents(core_id)
            if vm in self._requirements
        ]
        return max(floors) if floors else 0.0

    def core_failure_ceiling(self, core_id: int) -> float:
        """Strictest failure-probability cap among residents."""
        caps = [
            self._requirements[vm].max_failure_probability
            for vm in self._residents(core_id)
            if vm in self._requirements
        ]
        return min(caps) if caps else 1.0

    def admits(self, core_id: int, margin: ComponentMargin) -> bool:
        """Whether the core's residents permit adopting this margin."""
        nominal = self.hypervisor.platform.chip.spec.nominal
        fraction = (margin.safe_point.frequency_hz
                    / nominal.frequency_hz)
        if fraction < self.core_frequency_floor(core_id) - 1e-12:
            return False
        return margin.failure_probability <= \
            self.core_failure_ceiling(core_id)

    # -- gating and auditing -------------------------------------------------------

    def filter_margins(self, vector: MarginVector) -> MarginVector:
        """The admissible subset of a StressLog margin vector.

        Core margins violating a resident VM's frequency floor or
        failure cap are dropped (the core stays at its current, safer
        point); memory-domain margins pass through — refresh relaxation
        does not affect guest performance guarantees.  Margins naming a
        component that is not a parseable core pass through untouched;
        downstream adoption decides what to do with them.
        """
        kept: List[ComponentMargin] = []
        for margin in vector.margins:
            core_id = Hypervisor._core_id(margin.component)
            if core_id is not None:
                if not self.admits(core_id, margin):
                    self.metrics.inc("hypervisor.qos.margins_rejected")
                    continue
            kept.append(margin)
        return replace(vector, margins=tuple(kept))

    def audit(self) -> List[QoSViolation]:
        """Guarantee breaches in the *current* platform configuration."""
        violations: List[QoSViolation] = []
        platform = self.hypervisor.platform
        nominal = platform.chip.spec.nominal
        for vm_name, core_id in self.hypervisor._assignments.items():
            requirement = self._requirements.get(vm_name)
            if requirement is None:
                continue
            vm = self.hypervisor.vm(vm_name)
            if not vm.is_active:
                continue
            point = platform.core_point(core_id)
            fraction = point.frequency_hz / nominal.frequency_hz
            if fraction < requirement.min_frequency_fraction - 1e-12:
                violations.append(QoSViolation(
                    vm_name=vm_name, core_id=core_id, kind="frequency",
                    detail=(f"core at {fraction * 100:.0f}% of nominal, "
                            f"floor {requirement.min_frequency_fraction * 100:.0f}%"),
                ))
            core = platform.chip.core(core_id)
            pfail = core.crash_probability(
                point, vm.workload.profile_at(vm.progress))
            if pfail > requirement.max_failure_probability:
                violations.append(QoSViolation(
                    vm_name=vm_name, core_id=core_id,
                    kind="reliability",
                    detail=(f"p_fail {pfail:.2e} exceeds cap "
                            f"{requirement.max_failure_probability:.0e}"),
                ))
        self.metrics.set_gauge("hypervisor.qos.violations",
                               float(len(violations)))
        return violations
