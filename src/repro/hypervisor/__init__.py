"""KVM-like error-resilient hypervisor (paper Section 4.A).

Manages VMs on one platform, adopts characterised EOPs within a failure
budget, masks hardware errors from guests, keeps its own state in the
reliable memory domain, isolates failing resources and selectively
checkpoints the structures the Figure 4 analysis marks as critical.
"""

from .checkpoint import CheckpointCostModel, CheckpointManager, CheckpointStats
from .fault_injection import (
    FaultInjectionCampaign,
    Figure4Result,
    InjectionOutcome,
    InjectionReport,
    LoadComparisonRow,
    TierExposure,
    run_figure4_campaign,
    tier_exposure_report,
)
from .hypervisor import Hypervisor, HypervisorConfig, HypervisorStats
from .isolation import IsolationAction, IsolationManager, IsolationPolicy
from .memory import (
    Allocation,
    CLASS_APPLICATION,
    CLASS_HYPERVISOR,
    CLASS_VM_CRITICAL,
    CLASS_VM_DATA,
    DEFAULT_TIER_MAP,
    FootprintSample,
    HYPERVISOR_BASE_MB,
    HYPERVISOR_PER_VM_MB,
    MemoryAccountant,
    PLACEMENT_CLASSES,
    PlacementPolicy,
    TIER_SPILL_ORDER,
    TierClassifier,
)
from .objects import (
    CATEGORY_PROFILES,
    CategoryProfile,
    HypervisorObject,
    ObjectCatalog,
    SENSITIVE_CATEGORIES,
    TOTAL_OBJECTS,
)
from .vm import ACTIVE_STATES, VirtualMachine, VMState, make_vm_fleet
from .affinity import (
    AffinityAssignment,
    AffinityPlanner,
    naive_balanced_plan,
)

from .qos import (
    QoSGuard,
    QoSRequirement,
    QoSViolation,
    requirement_from_sla,
)

__all__ = [
    "QoSGuard", "QoSRequirement", "QoSViolation", "requirement_from_sla",
    "AffinityAssignment", "AffinityPlanner", "naive_balanced_plan",
    "CheckpointCostModel", "CheckpointManager", "CheckpointStats",
    "FaultInjectionCampaign", "Figure4Result", "InjectionOutcome",
    "InjectionReport", "LoadComparisonRow", "TierExposure",
    "run_figure4_campaign", "tier_exposure_report",
    "Hypervisor", "HypervisorConfig", "HypervisorStats",
    "IsolationAction", "IsolationManager", "IsolationPolicy",
    "Allocation", "FootprintSample", "HYPERVISOR_BASE_MB",
    "HYPERVISOR_PER_VM_MB", "MemoryAccountant", "PlacementPolicy",
    "CLASS_APPLICATION", "CLASS_HYPERVISOR", "CLASS_VM_CRITICAL",
    "CLASS_VM_DATA", "DEFAULT_TIER_MAP", "PLACEMENT_CLASSES",
    "TIER_SPILL_ORDER", "TierClassifier",
    "CATEGORY_PROFILES", "CategoryProfile", "HypervisorObject",
    "ObjectCatalog", "SENSITIVE_CATEGORIES", "TOTAL_OBJECTS",
    "ACTIVE_STATES", "VirtualMachine", "VMState", "make_vm_fleet",
]
