"""Hypervisor memory management and reliable-domain placement.

Two paper results live here:

* **Figure 3** — the hypervisor's memory footprint stays below 7 % of the
  total utilized memory while four LDBC VMs run, which "dictates placing
  the whole Hypervisor in a reliable-memory (operated at nominal V-F-R)
  domain can help ensure non-disruptive operation with low cost".
  :class:`MemoryAccountant` tracks hypervisor/VM/application footprints
  over time and reports the fraction.

* **Reliable-domain placement** — :class:`PlacementPolicy` allocates the
  hypervisor (and any structures marked critical) into the reliable
  refresh domain and VM pages into relaxed domains, and answers the
  question the resilience ablation (A3) asks: what is exposed when an
  error lands in a given domain?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..hardware.dram import DramSystem, MemoryDomain

#: Default hypervisor resident footprint: base plus per-VM bookkeeping
#: (page tables, virtio queues, emulation state).
HYPERVISOR_BASE_MB = 200.0
HYPERVISOR_PER_VM_MB = 40.0


@dataclass(frozen=True)
class FootprintSample:
    """Memory accounting snapshot at one instant."""

    timestamp: float
    hypervisor_mb: float
    vm_mb: float
    application_mb: float

    @property
    def total_mb(self) -> float:
        """Hypervisor plus VM plus application megabytes."""
        return self.hypervisor_mb + self.vm_mb + self.application_mb

    @property
    def hypervisor_fraction(self) -> float:
        """The Figure 3 red line: hypervisor share of utilized memory."""
        total = self.total_mb
        return self.hypervisor_mb / total if total else 0.0


class MemoryAccountant:
    """Tracks hypervisor/VM/application footprints over a run (Figure 3)."""

    def __init__(self, base_mb: float = HYPERVISOR_BASE_MB,
                 per_vm_mb: float = HYPERVISOR_PER_VM_MB) -> None:
        if base_mb < 0 or per_vm_mb < 0:
            raise ConfigurationError("footprint parameters must be >= 0")
        self.base_mb = base_mb
        self.per_vm_mb = per_vm_mb
        self._samples: List[FootprintSample] = []

    def hypervisor_footprint_mb(self, n_vms: int) -> float:
        """Hypervisor resident size with ``n_vms`` active VMs."""
        if n_vms < 0:
            raise ConfigurationError("n_vms must be non-negative")
        return self.base_mb + self.per_vm_mb * n_vms

    def sample(self, timestamp: float, n_vms: int, vm_mb: float,
               application_mb: float) -> FootprintSample:
        """Record one accounting snapshot."""
        snap = FootprintSample(
            timestamp=timestamp,
            hypervisor_mb=self.hypervisor_footprint_mb(n_vms),
            vm_mb=vm_mb,
            application_mb=application_mb,
        )
        self._samples.append(snap)
        return snap

    @property
    def samples(self) -> List[FootprintSample]:
        """All recorded snapshots, in order."""
        return list(self._samples)

    def state_dict(self) -> Dict[str, object]:
        """Serializable accountant state (all samples, in order)."""
        return {
            "samples": [
                [s.timestamp, s.hypervisor_mb, s.vm_mb, s.application_mb]
                for s in self._samples
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the samples saved by :meth:`state_dict`."""
        self._samples = [
            FootprintSample(timestamp=float(row[0]),
                            hypervisor_mb=float(row[1]),
                            vm_mb=float(row[2]),
                            application_mb=float(row[3]))
            for row in state["samples"]  # type: ignore[union-attr]
        ]

    def max_hypervisor_fraction(self) -> float:
        """Peak hypervisor share across the run (paper: always < 7 %)."""
        if not self._samples:
            raise ConfigurationError("no samples recorded")
        return max(s.hypervisor_fraction for s in self._samples)

    def series(self) -> List[Tuple[float, float, float, float, float]]:
        """(t, hypervisor, vm, app, fraction) rows for rendering Figure 3."""
        return [
            (s.timestamp, s.hypervisor_mb, s.vm_mb, s.application_mb,
             s.hypervisor_fraction)
            for s in self._samples
        ]


@dataclass(frozen=True)
class Allocation:
    """One memory allocation placed into a refresh domain."""

    owner: str
    size_mb: float
    domain: str
    critical: bool


class PlacementPolicy:
    """Places allocations across reliable and relaxed refresh domains.

    Critical allocations (the hypervisor itself, kernel code/stack) go to
    the reliable domain; everything else fills the relaxed domains.  With
    ``use_reliable_domain=False`` the policy degenerates to spreading
    everything across relaxed memory — the ablation configuration showing
    why the paper isolates kernel state.
    """

    def __init__(self, memory: DramSystem,
                 use_reliable_domain: bool = True) -> None:
        self.memory = memory
        self.use_reliable_domain = use_reliable_domain
        self._allocations: List[Allocation] = []

    @property
    def allocations(self) -> List[Allocation]:
        """All live allocations."""
        return list(self._allocations)

    def _domain_usage_mb(self, domain_name: str) -> float:
        return sum(a.size_mb for a in self._allocations
                   if a.domain == domain_name)

    def _capacity_left_mb(self, domain: MemoryDomain) -> float:
        return domain.capacity_gb * 1024.0 - self._domain_usage_mb(domain.name)

    def place(self, owner: str, size_mb: float,
              critical: bool = False) -> Allocation:
        """Place one allocation; returns the placement decision."""
        if size_mb <= 0:
            raise ConfigurationError("allocation size must be positive")
        reliable = self.memory.reliable_domain()
        candidates: List[MemoryDomain]
        if critical and self.use_reliable_domain and reliable is not None:
            candidates = [reliable]
        else:
            candidates = [d for d in self.memory.domains()
                          if not (d.reliable and self.use_reliable_domain)]
            if not candidates:
                candidates = self.memory.domains()
        # First-fit by remaining capacity, preferring the emptiest domain.
        candidates = sorted(candidates, key=self._capacity_left_mb,
                            reverse=True)
        target = candidates[0]
        if self._capacity_left_mb(target) < size_mb:
            raise ConfigurationError(
                f"out of memory placing {size_mb:.0f} MB for {owner!r}"
            )
        allocation = Allocation(
            owner=owner, size_mb=size_mb, domain=target.name,
            critical=critical,
        )
        self._allocations.append(allocation)
        return allocation

    def state_dict(self) -> Dict[str, object]:
        """Serializable placement state (live allocations, in order)."""
        return {
            "allocations": [
                [a.owner, a.size_mb, a.domain, a.critical]
                for a in self._allocations
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the allocations saved by :meth:`state_dict`.

        Allocations are restored verbatim — no re-placement — so the
        restored run sees the exact same domain occupancy.
        """
        self._allocations = [
            Allocation(owner=str(row[0]), size_mb=float(row[1]),
                       domain=str(row[2]), critical=bool(row[3]))
            for row in state["allocations"]  # type: ignore[union-attr]
        ]

    def release(self, owner: str) -> int:
        """Free every allocation owned by ``owner``; returns the count."""
        kept = [a for a in self._allocations if a.owner != owner]
        freed = len(self._allocations) - len(kept)
        self._allocations = kept
        return freed

    def critical_exposure_mb(self) -> float:
        """Critical megabytes sitting in *relaxed* domains.

        Zero when the reliable-domain policy is active and intact; the
        A3 ablation shows this growing (and crashes following) when the
        policy is disabled.
        """
        relaxed_names = {d.name for d in self.memory.relaxed_domains()}
        return sum(
            a.size_mb for a in self._allocations
            if a.critical and a.domain in relaxed_names
        )

    def error_hits_critical(self, domain_name: str,
                            rng: np.random.Generator) -> bool:
        """Whether a bit error in ``domain_name`` lands on critical state.

        The probability is the critical share of the domain's *used*
        memory — an error in an untouched page is harmless.
        """
        used = self._domain_usage_mb(domain_name)
        if used <= 0:
            return False
        critical = sum(
            a.size_mb for a in self._allocations
            if a.domain == domain_name and a.critical
        )
        return bool(rng.random() < critical / used)
