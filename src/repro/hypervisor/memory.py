"""Hypervisor memory management and reliable-domain placement.

Two paper results live here:

* **Figure 3** — the hypervisor's memory footprint stays below 7 % of the
  total utilized memory while four LDBC VMs run, which "dictates placing
  the whole Hypervisor in a reliable-memory (operated at nominal V-F-R)
  domain can help ensure non-disruptive operation with low cost".
  :class:`MemoryAccountant` tracks hypervisor/VM/application footprints
  over time and reports the fraction.

* **Reliable-domain placement** — :class:`PlacementPolicy` allocates the
  hypervisor (and any structures marked critical) into the reliable
  refresh domain and VM pages into relaxed domains, and answers the
  question the resilience ablation (A3) asks: what is exposed when an
  error lands in a given domain?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..hardware.dram import (
    MEMORY_TIERS,
    TIER_NORMAL,
    TIER_RELAXED,
    TIER_STRONG,
    DramSystem,
    MemoryDomain,
)

#: Default hypervisor resident footprint: base plus per-VM bookkeeping
#: (page tables, virtio queues, emulation state).
HYPERVISOR_BASE_MB = 200.0
HYPERVISOR_PER_VM_MB = 40.0

#: Placement classes a tier classifier buckets allocations into:
#: hypervisor state, VM-critical pages (page tables, checkpoint images),
#: tolerant VM data pages, and raw application pages.
CLASS_HYPERVISOR = "hypervisor"
CLASS_VM_CRITICAL = "vm_critical"
CLASS_VM_DATA = "vm_data"
CLASS_APPLICATION = "application"
PLACEMENT_CLASSES: Tuple[str, ...] = (
    CLASS_HYPERVISOR, CLASS_VM_CRITICAL, CLASS_VM_DATA, CLASS_APPLICATION,
)

#: Default placement-class → memory-tier mapping (the HRM matrix rows).
DEFAULT_TIER_MAP: Dict[str, str] = {
    CLASS_HYPERVISOR: TIER_STRONG,
    CLASS_VM_CRITICAL: TIER_NORMAL,
    CLASS_VM_DATA: TIER_RELAXED,
    CLASS_APPLICATION: TIER_RELAXED,
}

#: Spill order when a tier fills: critical data spills *up* (stronger
#: protection) before it ever spills down, tolerant data spills up only
#: as a last resort.
TIER_SPILL_ORDER: Dict[str, Tuple[str, ...]] = {
    TIER_STRONG: (TIER_STRONG, TIER_NORMAL, TIER_RELAXED),
    TIER_NORMAL: (TIER_NORMAL, TIER_STRONG, TIER_RELAXED),
    TIER_RELAXED: (TIER_RELAXED, TIER_NORMAL, TIER_STRONG),
}


@dataclass(frozen=True)
class TierClassifier:
    """Buckets placement classes into heterogeneous-reliability tiers."""

    tier_map: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_TIER_MAP))

    def __post_init__(self) -> None:
        for cls, tier in self.tier_map.items():
            if cls not in PLACEMENT_CLASSES:
                raise ConfigurationError(f"unknown placement class {cls!r}")
            if tier not in MEMORY_TIERS:
                raise ConfigurationError(f"unknown memory tier {tier!r}")
        missing = set(PLACEMENT_CLASSES) - set(self.tier_map)
        if missing:
            raise ConfigurationError(
                f"tier map missing classes: {sorted(missing)}")

    def classify(self, placement_class: str) -> str:
        """Preferred tier for a placement class."""
        if placement_class not in PLACEMENT_CLASSES:
            raise ConfigurationError(
                f"unknown placement class {placement_class!r}")
        return self.tier_map[placement_class]


@dataclass(frozen=True)
class FootprintSample:
    """Memory accounting snapshot at one instant."""

    timestamp: float
    hypervisor_mb: float
    vm_mb: float
    application_mb: float

    @property
    def total_mb(self) -> float:
        """Hypervisor plus VM plus application megabytes."""
        return self.hypervisor_mb + self.vm_mb + self.application_mb

    @property
    def hypervisor_fraction(self) -> float:
        """The Figure 3 red line: hypervisor share of utilized memory."""
        total = self.total_mb
        return self.hypervisor_mb / total if total else 0.0


class MemoryAccountant:
    """Tracks hypervisor/VM/application footprints over a run (Figure 3)."""

    def __init__(self, base_mb: float = HYPERVISOR_BASE_MB,
                 per_vm_mb: float = HYPERVISOR_PER_VM_MB) -> None:
        if base_mb < 0 or per_vm_mb < 0:
            raise ConfigurationError("footprint parameters must be >= 0")
        self.base_mb = base_mb
        self.per_vm_mb = per_vm_mb
        self._samples: List[FootprintSample] = []

    def hypervisor_footprint_mb(self, n_vms: int) -> float:
        """Hypervisor resident size with ``n_vms`` active VMs."""
        if n_vms < 0:
            raise ConfigurationError("n_vms must be non-negative")
        return self.base_mb + self.per_vm_mb * n_vms

    def sample(self, timestamp: float, n_vms: int, vm_mb: float,
               application_mb: float) -> FootprintSample:
        """Record one accounting snapshot."""
        snap = FootprintSample(
            timestamp=timestamp,
            hypervisor_mb=self.hypervisor_footprint_mb(n_vms),
            vm_mb=vm_mb,
            application_mb=application_mb,
        )
        self._samples.append(snap)
        return snap

    @property
    def samples(self) -> List[FootprintSample]:
        """All recorded snapshots, in order."""
        return list(self._samples)

    def state_dict(self) -> Dict[str, object]:
        """Serializable accountant state (all samples, in order)."""
        return {
            "samples": [
                [s.timestamp, s.hypervisor_mb, s.vm_mb, s.application_mb]
                for s in self._samples
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the samples saved by :meth:`state_dict`."""
        self._samples = [
            FootprintSample(timestamp=float(row[0]),
                            hypervisor_mb=float(row[1]),
                            vm_mb=float(row[2]),
                            application_mb=float(row[3]))
            for row in state["samples"]  # type: ignore[union-attr]
        ]

    def max_hypervisor_fraction(self) -> float:
        """Peak hypervisor share across the run (paper: always < 7 %)."""
        if not self._samples:
            raise ConfigurationError("no samples recorded")
        return max(s.hypervisor_fraction for s in self._samples)

    def series(self) -> List[Tuple[float, float, float, float, float]]:
        """(t, hypervisor, vm, app, fraction) rows for rendering Figure 3."""
        return [
            (s.timestamp, s.hypervisor_mb, s.vm_mb, s.application_mb,
             s.hypervisor_fraction)
            for s in self._samples
        ]


@dataclass(frozen=True)
class Allocation:
    """One memory allocation placed into a refresh domain.

    ``placement_class`` records what kind of data this is (HRM bucket);
    ``tier`` records the tier of the domain it actually landed in — they
    diverge when a full tier forces a spill.
    """

    owner: str
    size_mb: float
    domain: str
    critical: bool
    placement_class: str = CLASS_VM_DATA
    tier: str = TIER_RELAXED


class PlacementPolicy:
    """Places allocations across heterogeneous-reliability memory tiers.

    A :class:`TierClassifier` buckets each allocation's placement class
    into a preferred tier; within a tier, the emptiest domain wins, and a
    full tier spills along :data:`TIER_SPILL_ORDER` (critical data spills
    toward *stronger* tiers first).  On the paper's binary layout
    (reliable channel + relaxed channels) this reduces exactly to the
    original policy: critical allocations go to the reliable domain and
    everything else fills the relaxed domains.  With
    ``use_reliable_domain=False`` the policy degenerates to spreading
    everything across all memory — the ablation configuration showing
    why the paper isolates kernel state.
    """

    def __init__(self, memory: DramSystem,
                 use_reliable_domain: bool = True,
                 classifier: Optional[TierClassifier] = None) -> None:
        self.memory = memory
        self.use_reliable_domain = use_reliable_domain
        self.classifier = classifier or TierClassifier()
        self._allocations: List[Allocation] = []

    @property
    def allocations(self) -> List[Allocation]:
        """All live allocations."""
        return list(self._allocations)

    def _domain_usage_mb(self, domain_name: str) -> float:
        return sum(a.size_mb for a in self._allocations
                   if a.domain == domain_name)

    def _capacity_left_mb(self, domain: MemoryDomain) -> float:
        return domain.capacity_gb * 1024.0 - self._domain_usage_mb(domain.name)

    def place(self, owner: str, size_mb: float,
              critical: bool = False,
              placement_class: Optional[str] = None) -> Allocation:
        """Place one allocation; returns the placement decision.

        ``placement_class`` defaults from the legacy ``critical`` flag:
        critical allocations are hypervisor state, the rest are tolerant
        VM data.  Pass a class explicitly for finer HRM buckets
        (``vm_critical`` page tables/checkpoints, ``application`` pages).
        """
        if size_mb <= 0:
            raise ConfigurationError("allocation size must be positive")
        if placement_class is None:
            placement_class = CLASS_HYPERVISOR if critical else CLASS_VM_DATA
        preferred = self.classifier.classify(placement_class)
        target = self._choose_domain(size_mb, preferred, critical)
        if target is None:
            raise ConfigurationError(
                f"out of memory placing {size_mb:.0f} MB for {owner!r}"
            )
        allocation = Allocation(
            owner=owner, size_mb=size_mb, domain=target.name,
            critical=critical, placement_class=placement_class,
            tier=target.tier,
        )
        self._allocations.append(allocation)
        return allocation

    def _choose_domain(self, size_mb: float, preferred: str,
                       critical: bool) -> Optional[MemoryDomain]:
        """Emptiest domain in the preferred tier, spilling when full."""
        if not self.use_reliable_domain:
            # Ablation: ignore tiers entirely and spread across all memory
            # (the original A3 configuration, decision-identical).
            candidates = sorted(self.memory.domains(),
                                key=self._capacity_left_mb, reverse=True)
            if candidates and self._capacity_left_mb(candidates[0]) >= size_mb:
                return candidates[0]
            return None
        for tier in TIER_SPILL_ORDER[preferred]:
            domains = sorted(self.memory.domains_in_tier(tier),
                             key=self._capacity_left_mb, reverse=True)
            for domain in domains:
                if self._capacity_left_mb(domain) >= size_mb:
                    return domain
        return None

    def state_dict(self) -> Dict[str, object]:
        """Serializable placement state (live allocations, in order)."""
        return {
            "allocations": [
                [a.owner, a.size_mb, a.domain, a.critical,
                 a.placement_class, a.tier]
                for a in self._allocations
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the allocations saved by :meth:`state_dict`.

        Allocations are restored verbatim — no re-placement — so the
        restored run sees the exact same domain occupancy.  Rows from
        snapshots predating the tier refactor (4 columns) reconstruct
        their class/tier from the ``critical`` flag and domain label.
        """
        restored = []
        for row in state["allocations"]:  # type: ignore[union-attr]
            owner, size_mb = str(row[0]), float(row[1])
            domain, critical = str(row[2]), bool(row[3])
            if len(row) >= 6:
                placement_class, tier = str(row[4]), str(row[5])
            else:
                placement_class = (CLASS_HYPERVISOR if critical
                                   else CLASS_VM_DATA)
                tier = (self.memory.domain(domain).tier
                        if domain in self.memory else TIER_RELAXED)
            restored.append(Allocation(
                owner=owner, size_mb=size_mb, domain=domain,
                critical=critical, placement_class=placement_class,
                tier=tier,
            ))
        self._allocations = restored

    def release(self, owner: str) -> int:
        """Free every allocation owned by ``owner``; returns the count."""
        kept = [a for a in self._allocations if a.owner != owner]
        freed = len(self._allocations) - len(kept)
        self._allocations = kept
        return freed

    def critical_exposure_mb(self) -> float:
        """Critical megabytes sitting in *relaxed* domains.

        Zero when the reliable-domain policy is active and intact; the
        A3 ablation shows this growing (and crashes following) when the
        policy is disabled.
        """
        relaxed_names = {d.name for d in self.memory.relaxed_domains()}
        return sum(
            a.size_mb for a in self._allocations
            if a.critical and a.domain in relaxed_names
        )

    def tier_usage_mb(self) -> Dict[str, float]:
        """Used megabytes per memory tier (every tier present, even empty)."""
        usage = {t: 0.0 for t in self.memory.tiers()}
        for a in self._allocations:
            usage[a.tier] = usage.get(a.tier, 0.0) + a.size_mb
        return usage

    def class_usage_mb(self) -> Dict[str, float]:
        """Used megabytes per placement class."""
        usage: Dict[str, float] = {}
        for a in self._allocations:
            usage[a.placement_class] = (
                usage.get(a.placement_class, 0.0) + a.size_mb)
        return usage

    def exposure_by_tier(self) -> Dict[str, float]:
        """Critical megabytes per tier — the fault-injection exposure map.

        Counts host-critical allocations *and* VM-critical pages (page
        tables, checkpoint images): critical MB in the strong tier is
        protected, while the same MB showing up under
        ``normal``/``relaxed`` is exposure an error-injection campaign
        can convert into crashes.
        """
        critical_classes = {CLASS_HYPERVISOR, CLASS_VM_CRITICAL}
        exposure = {t: 0.0 for t in self.memory.tiers()}
        for a in self._allocations:
            if a.critical or a.placement_class in critical_classes:
                exposure[a.tier] = exposure.get(a.tier, 0.0) + a.size_mb
        return exposure

    def spilled_mb(self) -> float:
        """Megabytes living outside their classifier-preferred tier."""
        return sum(
            a.size_mb for a in self._allocations
            if a.tier != self.classifier.classify(a.placement_class)
        )

    def error_hits_critical(self, domain_name: str,
                            rng: np.random.Generator) -> bool:
        """Whether a bit error in ``domain_name`` lands on critical state.

        The probability is the critical share of the domain's *used*
        memory — an error in an untouched page is harmless.
        """
        used = self._domain_usage_mb(domain_name)
        if used <= 0:
            return False
        critical = sum(
            a.size_mb for a in self._allocations
            if a.domain == domain_name and a.critical
        )
        return bool(rng.random() < critical / used)
