"""QEMU-style fault-injection campaign on hypervisor objects (Figure 4).

Methodology, mirroring Section 6.C: "for each statically allocated object
of the Hypervisor (total 16820 objects), we introduced, in independent
executions (total 5 executions), Silent Data Corruptions.  Afterwards,
for each execution we checked whether the data corruption resulted to a
non-responsive Hypervisor, and marked this object accordingly as crucial
or non-crucial".  The campaign runs both with and without VMs on top of
the victim hypervisor.

An injected SDC becomes fatal when (a) the corrupted object's state is
actually consumed during the observation window — far likelier under load
— and (b) the object is crucial, and (c) no checkpoint covers it.  The
optional :class:`~repro.hypervisor.checkpoint.CheckpointManager` lets the
resilience ablation measure how much selective protection buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from .checkpoint import CheckpointManager
from .memory import PlacementPolicy
from .objects import CATEGORY_PROFILES, ObjectCatalog

#: 64-bit data words per megabyte, for exposure arithmetic.
WORDS_PER_MB = 1024 * 1024 // 8


class InjectionOutcome(Enum):
    """What one injected SDC did to the hypervisor."""

    MASKED = "masked"          # never consumed, or object non-crucial
    RECOVERED = "recovered"    # consumed, but restored from checkpoint
    FATAL = "fatal"            # hypervisor became non-responsive


@dataclass
class InjectionReport:
    """Aggregated results of one campaign configuration."""

    loaded: bool
    executions: int
    fatal_by_category: Dict[str, int] = field(default_factory=dict)
    recovered_by_category: Dict[str, int] = field(default_factory=dict)
    injections_by_category: Dict[str, int] = field(default_factory=dict)
    #: Objects marked crucial (≥1 fatal outcome across executions).
    crucial_objects: Set[int] = field(default_factory=set)

    @property
    def total_fatal(self) -> int:
        """Fatal outcomes summed over categories."""
        return sum(self.fatal_by_category.values())

    @property
    def total_recovered(self) -> int:
        """Checkpoint recoveries summed over categories."""
        return sum(self.recovered_by_category.values())

    @property
    def total_injections(self) -> int:
        """Injections summed over categories."""
        return sum(self.injections_by_category.values())

    def fatal_rate(self, category: Optional[str] = None) -> float:
        """Fatal outcomes per injection (overall or for a category)."""
        if category is None:
            total = self.total_injections
            return self.total_fatal / total if total else 0.0
        injections = self.injections_by_category.get(category, 0)
        if not injections:
            return 0.0
        return self.fatal_by_category.get(category, 0) / injections

    def categories_by_sensitivity(self) -> List[Tuple[str, int]]:
        """(category, fatal count) sorted most-sensitive first."""
        return sorted(self.fatal_by_category.items(),
                      key=lambda kv: kv[1], reverse=True)


class FaultInjectionCampaign:
    """Runs SDC injections over the whole object catalog."""

    def __init__(self, catalog: Optional[ObjectCatalog] = None,
                 seed: int = 0) -> None:
        self.catalog = catalog or ObjectCatalog(seed=seed)
        self._seed = seed

    def run(self, loaded: bool, executions: int = 5,
            checkpoints: Optional[CheckpointManager] = None,
            ) -> InjectionReport:
        """One campaign configuration: every object × ``executions``.

        ``loaded`` selects whether VMs run on the victim hypervisor; with
        ``checkpoints`` active, consumed corruptions of protected objects
        are restored instead of counted fatal.
        """
        if executions < 1:
            raise ConfigurationError("executions must be >= 1")
        rng = np.random.default_rng(self._seed + (1 if loaded else 0))
        report = InjectionReport(loaded=loaded, executions=executions)
        if checkpoints is not None:
            checkpoints.snapshot()

        for obj in self.catalog:
            profile = self.catalog.profile(obj.category)
            p_consume = obj.activation_probability(loaded, profile)
            report.injections_by_category[obj.category] = (
                report.injections_by_category.get(obj.category, 0)
                + executions
            )
            for _ in range(executions):
                consumed = rng.random() < p_consume
                if not (consumed and obj.crucial):
                    continue
                if checkpoints is not None and \
                        checkpoints.handle_corruption(obj.object_id):
                    report.recovered_by_category[obj.category] = (
                        report.recovered_by_category.get(obj.category, 0) + 1
                    )
                    continue
                report.fatal_by_category[obj.category] = (
                    report.fatal_by_category.get(obj.category, 0) + 1
                )
                report.crucial_objects.add(obj.object_id)
        for category in self.catalog.categories():
            report.fatal_by_category.setdefault(category, 0)
            report.recovered_by_category.setdefault(category, 0)
        return report


@dataclass(frozen=True)
class TierExposure:
    """Fault-injection exposure of one memory tier.

    ``expected_critical_ue`` is the expected number of uncorrectable
    errors landing in *critical* data over one full pass of the tier —
    the quantity the HRM A/B campaign trades against refresh energy.
    """

    tier: str
    used_mb: float
    critical_mb: float
    raw_ber: float
    ecc_scheme: str
    ue_word_probability: float
    expected_critical_ue: float

    def as_dict(self) -> Dict[str, object]:
        """Canonical-JSON-friendly row."""
        return {
            "tier": self.tier,
            "used_mb": self.used_mb,
            "critical_mb": self.critical_mb,
            "raw_ber": self.raw_ber,
            "ecc_scheme": self.ecc_scheme,
            "ue_word_probability": self.ue_word_probability,
            "expected_critical_ue": self.expected_critical_ue,
        }


def tier_exposure_report(placement: PlacementPolicy,
                         temperature_c: Optional[float] = None,
                         ) -> List[TierExposure]:
    """Per-tier uncorrectable-error exposure of the current placement.

    For each tier present in the placement's memory system: the worst
    domain BER at the tier's refresh interval, the tier's ECC scheme's
    uncorrectable-word probability at that BER, and the expected
    critical-data UEs per full pass (critical words × UE probability).
    Strong tiers should show ~zero; an all-relaxed ablation shows the
    critical exposure the reliable/strong tier exists to remove.
    """
    usage = placement.tier_usage_mb()
    exposure = placement.exposure_by_tier()
    rows = []
    for tier in placement.memory.tiers():
        domains = placement.memory.domains_in_tier(tier)
        worst = max(domains, key=lambda d: d.ber(temperature_c))
        raw_ber = worst.ber(temperature_c)
        ue_prob = worst.uncorrectable_word_probability(temperature_c)
        critical_mb = exposure.get(tier, 0.0)
        rows.append(TierExposure(
            tier=tier,
            used_mb=usage.get(tier, 0.0),
            critical_mb=critical_mb,
            raw_ber=raw_ber,
            ecc_scheme=worst.ecc.name,
            ue_word_probability=ue_prob,
            expected_critical_ue=critical_mb * WORDS_PER_MB * ue_prob,
        ))
    return rows


@dataclass(frozen=True)
class LoadComparisonRow:
    """Figure 4's two series for one category."""

    category: str
    failures_loaded: int
    failures_unloaded: int


@dataclass
class Figure4Result:
    """The full Figure 4 reproduction: both campaigns side by side."""

    rows: List[LoadComparisonRow]
    loaded_report: InjectionReport
    unloaded_report: InjectionReport

    def load_amplification(self) -> float:
        """Overall loaded/unloaded fatal ratio (paper: ~an order of magnitude)."""
        unloaded = self.unloaded_report.total_fatal
        if unloaded == 0:
            return float("inf")
        return self.loaded_report.total_fatal / unloaded

    def sensitive_categories(self, top_n: int = 4) -> List[str]:
        """The most failure-prone categories under load."""
        ranked = self.loaded_report.categories_by_sensitivity()
        return [category for category, _ in ranked[:top_n]]

    def sensitivity_is_load_invariant(self, top_n: int = 4) -> bool:
        """Paper: "the sensitive data structures appear to be the same,
        irrespective of the load" — check the top-N sets coincide."""
        loaded = set(self.sensitive_categories(top_n))
        ranked = self.unloaded_report.categories_by_sensitivity()
        unloaded = {category for category, _ in ranked[:top_n]}
        return loaded == unloaded


def run_figure4_campaign(seed: int = 0, executions: int = 5,
                         checkpoints: Optional[CheckpointManager] = None,
                         catalog: Optional[ObjectCatalog] = None,
                         ) -> Figure4Result:
    """Both Figure 4 configurations (with and without workload)."""
    campaign = FaultInjectionCampaign(catalog=catalog, seed=seed)
    loaded = campaign.run(loaded=True, executions=executions,
                          checkpoints=checkpoints)
    unloaded = campaign.run(loaded=False, executions=executions,
                            checkpoints=checkpoints)
    rows = [
        LoadComparisonRow(
            category=category,
            failures_loaded=loaded.fatal_by_category.get(category, 0),
            failures_unloaded=unloaded.fatal_by_category.get(category, 0),
        )
        for category in campaign.catalog.categories()
    ]
    return Figure4Result(rows=rows, loaded_report=loaded,
                         unloaded_report=unloaded)
