"""Virtual machines and their lifecycle.

VMs are the unit of work the hypervisor schedules, the resource manager
places, and the paper's SLAs are written against.  Each VM wraps a
workload, a memory demand and a progress counter (in executed cycles);
its footprint over time follows the workload's memory trace so that four
LDBC VMs reproduce Figure 3's dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import ConfigurationError
from ..workloads.base import Workload
from ..workloads.ldbc import memory_trace_mb


class VMState(Enum):
    """Lifecycle states of a virtual machine."""

    PENDING = "pending"
    RUNNING = "running"
    PAUSED = "paused"
    MIGRATING = "migrating"
    COMPLETED = "completed"
    FAILED = "failed"

#: States in which a VM occupies host resources.
ACTIVE_STATES = (VMState.RUNNING, VMState.PAUSED, VMState.MIGRATING)


@dataclass
class VirtualMachine:
    """One VM: workload, resources, and execution progress.

    ``guest_os_mb`` is the guest kernel/userland baseline on top of which
    the application footprint grows.
    """

    name: str
    workload: Workload
    vcpus: int = 1
    guest_os_mb: float = 300.0
    state: VMState = VMState.PENDING
    executed_cycles: float = 0.0
    restarts: int = 0
    _memory_seed: int = 0
    #: Declared memory-criticality mix: fraction of this VM's memory per
    #: reliability tier (e.g. ``{"normal": 0.1, "relaxed": 0.9}``).
    #: ``None`` means the VM declares nothing and tier-aware scheduling
    #: treats it neutrally.
    criticality_mix: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("VM needs a name")
        if self.vcpus < 1:
            raise ConfigurationError("VM needs at least one vCPU")
        if self.guest_os_mb < 0:
            raise ConfigurationError("guest_os_mb must be non-negative")
        if self.criticality_mix is not None:
            if not self.criticality_mix:
                raise ConfigurationError("criticality_mix cannot be empty")
            for fraction in self.criticality_mix.values():
                if fraction < 0:
                    raise ConfigurationError(
                        "criticality_mix fractions must be >= 0")
            if sum(self.criticality_mix.values()) <= 0:
                raise ConfigurationError(
                    "criticality_mix must sum to a positive fraction")
        self._app_trace: Optional[np.ndarray] = None

    # -- progress ----------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        """The workload's full cycle count."""
        return self.workload.duration_cycles

    @property
    def progress(self) -> float:
        """Completed fraction of the workload in [0, 1]."""
        return min(1.0, self.executed_cycles / self.total_cycles)

    @property
    def is_active(self) -> bool:
        """Whether the VM occupies host resources."""
        return self.state in ACTIVE_STATES

    def start(self) -> None:
        """Transition PENDING -> RUNNING."""
        if self.state is not VMState.PENDING:
            raise ConfigurationError(
                f"VM {self.name} cannot start from state {self.state.value}"
            )
        self.state = VMState.RUNNING

    def execute(self, cycles: float) -> bool:
        """Advance execution; returns True when the workload completed."""
        if self.state is not VMState.RUNNING:
            raise ConfigurationError(
                f"VM {self.name} is not running (state {self.state.value})"
            )
        if cycles < 0:
            raise ConfigurationError("cycles must be non-negative")
        self.executed_cycles += cycles
        if self.executed_cycles >= self.total_cycles:
            self.state = VMState.COMPLETED
            return True
        return False

    def pause(self) -> None:
        """Transition RUNNING -> PAUSED."""
        if self.state is not VMState.RUNNING:
            raise ConfigurationError("only a running VM can pause")
        self.state = VMState.PAUSED

    def resume(self) -> None:
        """Transition PAUSED -> RUNNING."""
        if self.state is not VMState.PAUSED:
            raise ConfigurationError("only a paused VM can resume")
        self.state = VMState.RUNNING

    def fail(self) -> None:
        """Mark the VM as killed by an unrecoverable fault."""
        if self.state in (VMState.COMPLETED, VMState.FAILED):
            return
        self.state = VMState.FAILED

    def restart(self) -> None:
        """Restart a failed VM from scratch (the hypervisor masks the error)."""
        if self.state is not VMState.FAILED:
            raise ConfigurationError("only a failed VM can restart")
        self.state = VMState.RUNNING
        self.executed_cycles = 0.0
        self.restarts += 1

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable mutable state (the workload itself is rebuilt)."""
        return {
            "vcpus": self.vcpus,
            "guest_os_mb": self.guest_os_mb,
            "state": self.state.value,
            "executed_cycles": self.executed_cycles,
            "restarts": self.restarts,
            "memory_seed": self._memory_seed,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Overlay runtime-mutated state onto a rebuilt VM."""
        self.vcpus = int(state["vcpus"])  # type: ignore[arg-type]
        self.guest_os_mb = float(state["guest_os_mb"])  # type: ignore[arg-type]
        self.state = VMState(state["state"])
        self.executed_cycles = float(state["executed_cycles"])  # type: ignore[arg-type]
        self.restarts = int(state["restarts"])  # type: ignore[arg-type]
        self._memory_seed = int(state["memory_seed"])  # type: ignore[arg-type]
        self._app_trace = None

    # -- memory ------------------------------------------------------------

    def application_memory_mb(self, n_steps: int = 100) -> np.ndarray:
        """The application footprint trace across this VM's execution."""
        if self._app_trace is None or len(self._app_trace) != n_steps:
            database_mb = max(64.0, self.workload.demand.memory_mb / 1.3)
            self._app_trace = memory_trace_mb(
                database_mb, n_steps, seed=self._memory_seed + hash(self.name) % 1000,
            )
        return self._app_trace

    def memory_usage_mb(self, progress: Optional[float] = None) -> float:
        """Current VM memory: guest OS plus application working set."""
        p = self.progress if progress is None else progress
        p = min(1.0, max(0.0, p))
        trace = self.application_memory_mb()
        index = min(len(trace) - 1, int(p * len(trace)))
        return self.guest_os_mb + float(trace[index])


def make_vm_fleet(workload: Workload, count: int, vcpus: int = 1,
                  prefix: str = "vm",
                  guest_os_mb: float = 300.0) -> List[VirtualMachine]:
    """A fleet of identical VMs (e.g. the four LDBC VMs of Figure 3)."""
    if count < 1:
        raise ConfigurationError("fleet needs at least one VM")
    return [
        VirtualMachine(
            name=f"{prefix}{i}", workload=workload, vcpus=vcpus,
            guest_os_mb=guest_os_mb, _memory_seed=i * 97,
        )
        for i in range(count)
    ]
