"""Command-line interface: run the main campaigns from a shell.

``python -m repro <command>`` exposes the headline experiments without
writing any code:

===============  ======================================================
command          what it runs
===============  ======================================================
``quickstart``   full cross-layer loop on one node (Figure 2)
``characterize`` Table 2 undervolting campaign on a catalog chip
``refresh``      Section 6.B DRAM refresh-relaxation sweep
``figure4``      hypervisor SDC fault-injection campaign
``population``   Figure 1 chip-population binning study
``tco``          Table 3 TCO projection
``edge``         Section 6.D edge-vs-cloud latency arithmetic
``validate``     re-check every quantified paper claim
``metrics``      seeded rack run, cross-layer metrics dump (JSON)
``chaos``        seeded control-plane chaos campaign (policies A/B)
``sweep``        parallel multi-seed campaign sweep over a config grid
``eop``          error-injecting EOP-governor campaign, state table
``fleet``        zone-sharded fleet campaign (vectorized or object
                 stack), energy-proportionality report
``profile``      short campaign under cProfile, top-N hot paths
===============  ======================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from .core import UniServerNode
    from .hypervisor import make_vm_fleet
    from .workloads import spec_workload

    node = UniServerNode(seed=args.seed)
    margins = node.pre_deploy()
    changed = node.deploy()
    print(f"characterised {len(margins.margins)} components, "
          f"adopted {len(changed)} EOPs")
    for vm in make_vm_fleet(
            spec_workload("hmmer", duration_cycles=5e10), 4):
        node.launch_vm(vm)
    node.run(60.0)
    report = node.energy_report()
    print(f"node power: {report.nominal_power_w:.1f} W nominal -> "
          f"{report.eop_power_w:.1f} W at EOP "
          f"({report.saving_fraction * 100:.1f}% saving)")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .characterization import UndervoltingCampaign
    from .hardware import (
        ChipModel,
        arm_server_soc_spec,
        intel_i5_4200u_spec,
        intel_i7_3970x_spec,
    )
    from .workloads import spec_suite

    specs = {
        "i5": intel_i5_4200u_spec,
        "i7": intel_i7_3970x_spec,
        "arm": arm_server_soc_spec,
    }
    chip = ChipModel(specs[args.chip](), seed=args.seed)
    result = UndervoltingCampaign(chip, spec_suite()).run()
    print(render_table(
        f"Table 2 campaign: {chip.name}",
        ["metric", "min", "max"],
        result.table2_rows(),
    ))
    onset = result.mean_ecc_onset_margin_v()
    if onset is not None:
        print(f"ECC onset: {onset * 1e3:.1f} mV above the crash point")
    return 0


def _cmd_refresh(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .characterization import RefreshRelaxationCampaign
    from .hardware import standard_server_memory

    memory = standard_server_memory(n_channels=args.channels,
                                    seed=args.seed)
    result = RefreshRelaxationCampaign(memory, "channel1").run()
    print(render_table(
        "Section 6.B refresh sweep (channel1)",
        ["interval", "vs nominal", "errors", "BER"],
        [[f"{s.refresh_interval_s * 1e3:.0f} ms",
          f"{s.relaxation_factor:.1f}x", s.observed_errors,
          f"{s.cumulative_ber:.2e}"] for s in result.steps],
    ))
    print(f"error-free up to {result.max_error_free_interval_s():.1f} s")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .hypervisor import run_figure4_campaign

    result = run_figure4_campaign(seed=args.seed)
    print(render_table(
        "Figure 4: fatal hypervisor failures per category",
        ["category", "with workload", "without workload"],
        [[r.category, r.failures_loaded, r.failures_unloaded]
         for r in result.rows],
    ))
    print(f"load amplification: {result.load_amplification():.1f}x; "
          f"sensitive: {', '.join(result.sensitive_categories())}")
    return 0


def _cmd_population(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .characterization import run_population_study

    study = run_population_study(n_chips=args.chips, seed=args.seed)
    print(render_table(
        f"Figure 1: {args.chips}-chip population",
        ["bin", "chips"],
        [[name, count] for name, count in study.bin_counts().items()],
    ))
    print(f"classical yield {study.classical_yield() * 100:.1f}%; "
          f"{study.recoverable_discard_fraction() * 100:.1f}% of "
          "discards recoverable per-core")
    return 0


def _cmd_tco(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .tco import project_table3

    projection = project_table3()
    print(render_table(
        "Table 3: EE sources and TCO improvements",
        ["source / metric", "factor"],
        [[name, f"{value:.3g}x"] for name, value in projection.rows()],
    ))
    return 0


def _cmd_edge(args: argparse.Namespace) -> int:
    from .tco import EdgeServiceModel

    comparison = EdgeServiceModel().compare()
    edge = comparison["edge"]
    cloud = comparison["cloud"]
    print(f"cloud: {cloud.frequency_fraction * 100:.0f}% frequency, "
          f"{cloud.voltage_fraction * 100:.0f}% voltage")
    print(f"edge:  {edge.frequency_fraction * 100:.0f}% frequency, "
          f"{edge.voltage_fraction * 100:.0f}% voltage")
    print(f"edge savings vs peak: {edge.energy_saving * 100:.0f}% "
          f"energy, {edge.power_saving * 100:.0f}% power")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    # The full claim set lives in the bench; import its builder lazily
    # through an equivalent inline set to avoid benchmark deps.
    from .analysis.validation import PaperClaim, Tolerance, validate
    from .hardware import DramPowerModel
    from .tco import EDGE, EdgeServiceModel, project_table3

    edge = EdgeServiceModel().service_point(EDGE)
    table3 = project_table3()
    claims = [
        PaperClaim("S6B", "refresh share of 2 Gb device", 0.09,
                   lambda: DramPowerModel(
                       density_gbit=2.0).refresh_share(),
                   Tolerance.ABSOLUTE, 0.01),
        PaperClaim("S6B", "refresh share of 32 Gb device", 0.34,
                   lambda: DramPowerModel(
                       density_gbit=32.0).refresh_share(),
                   Tolerance.AT_LEAST),
        PaperClaim("S6D", "edge energy saving", 0.50,
                   lambda: edge.energy_saving, Tolerance.ABSOLUTE, 0.05),
        PaperClaim("S6D", "edge power saving", 0.75,
                   lambda: edge.power_saving, Tolerance.ABSOLUTE, 0.05),
        PaperClaim("T3", "TCO improvement, EE only", 1.15,
                   lambda: table3.ee_only_tco, Tolerance.ABSOLUTE, 0.05),
    ]
    report = validate(claims)
    print(report.render("Quick validation (analytical claims)"))
    return 0 if report.all_passed else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .cloudmgr import run_rack_experiment

    experiment = run_rack_experiment(
        n_nodes=args.nodes, duration_s=args.duration, seed=args.seed,
        characterize=args.characterize)
    snapshot = experiment.metrics_snapshot()
    layers = sorted({
        name.split(".", 1)[0]
        for node_snapshot in snapshot.values()
        for kind in node_snapshot.values()
        for name in kind
    })
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    print(f"# {args.nodes} nodes, {args.duration:.0f}s, seed {args.seed}; "
          f"layers: {', '.join(layers)}", file=sys.stderr)
    return 0


def _write_chaos_report(path: str, result, cloud) -> None:
    """Machine-readable campaign report for the kill/resume harness.

    Canonical-JSON form, so two bit-identical campaigns produce
    byte-identical report files.
    """
    from dataclasses import asdict, replace

    from .persistence import canonical_json, payload_checksum

    # Detach the experiment first: ``asdict`` deep-copies every field,
    # and copying the whole rack world just to drop it is wasteful.
    payload = asdict(replace(result, experiment=None))
    payload.pop("experiment", None)
    report = {
        "result": payload,
        "metrics_sha256": payload_checksum(cloud.metrics_snapshot()),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(report))
        handle.write("\n")


def _cmd_chaos_persistent(args: argparse.Namespace) -> int:
    """The crash-safe single-arm path (--snapshot-dir / --resume)."""
    from .persistence import (
        CampaignConfig,
        PersistentCampaign,
        StateAuditor,
    )

    auditor = StateAuditor(strict=args.strict_audit)
    if args.resume:
        # The campaign arm comes from the config embedded in the
        # snapshot; --policies is ignored on resume.
        if not args.snapshot_dir:
            print("error: --resume needs --snapshot-dir", file=sys.stderr)
            return 2
        campaign = PersistentCampaign.resume(
            args.snapshot_dir, snapshot_every_s=args.snapshot_every,
            auditor=auditor)
    else:
        if args.policies == "both":
            print("error: --snapshot-dir runs a single campaign arm; "
                  "pass --policies on or --policies off", file=sys.stderr)
            return 2
        config = CampaignConfig(
            n_nodes=args.nodes, duration_s=args.duration, seed=args.seed,
            policies=args.policies, rate_per_hour=args.rate,
            intensity=args.intensity,
            label=f"policies-{args.policies}")
        campaign = PersistentCampaign(
            config, snapshot_dir=args.snapshot_dir,
            snapshot_every_s=args.snapshot_every, auditor=auditor)
    if args.verbose:
        print("fault plan:")
        print(campaign.plan.describe())
        print()
    result = campaign.run()
    print(result.describe())
    print("injections: " + (
        ", ".join(f"{kind}={count}" for kind, count
                  in sorted(result.injections.items()))
        or "none"))
    if auditor.violation_count:
        print(f"auditor: {auditor.violation_count} invariant "
              "violation(s)", file=sys.stderr)
    if args.report_json:
        _write_chaos_report(args.report_json, result, campaign.cloud)
    return 0 if not auditor.violation_count else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import (
        DegradationConfig,
        FaultPlan,
        run_chaos_ab,
        run_chaos_campaign,
    )

    if args.snapshot_dir or args.resume:
        return _cmd_chaos_persistent(args)
    plan = FaultPlan.random(
        [f"node{i}" for i in range(args.nodes)], args.duration,
        rate_per_hour=args.rate, seed=args.seed,
        intensity=args.intensity)
    if args.verbose:
        print("fault plan:")
        print(plan.describe())
        print()
    if args.policies == "both":
        comparison = run_chaos_ab(
            n_nodes=args.nodes, duration_s=args.duration,
            seed=args.seed, plan=plan, jobs=args.jobs)
        print(comparison.describe())
        # Exit nonzero only if the ladder actively lost availability.
        return 0 if comparison.availability_gain >= 0 else 1
    degradation = (DegradationConfig.on() if args.policies == "on"
                   else DegradationConfig.off())
    result = run_chaos_campaign(
        n_nodes=args.nodes, duration_s=args.duration, seed=args.seed,
        plan=plan, degradation=degradation,
        label=f"policies-{args.policies}")
    print(result.describe())
    print("injections: " + (
        ", ".join(f"{kind}={count}" for kind, count
                  in sorted(result.injections.items()))
        or "none"))
    if args.report_json:
        _write_chaos_report(args.report_json, result,
                            result.experiment.cloud)
    return 0


def _cmd_eop(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .core.exceptions import ConfigurationError
    from .eop import EOPCampaignConfig, ErrorInjection, run_eop_campaign

    try:
        injections = tuple(ErrorInjection.parse(spec)
                           for spec in args.inject or [])
        config = EOPCampaignConfig(
            duration_s=args.duration, step_s=args.step, seed=args.seed,
            policy=args.policy, n_vms=args.vms,
            error_budget=args.error_budget, probation_s=args.probation,
            injections=injections)
        config.build_policy()  # surface bad policy names before the run
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_eop_campaign(config)
    print(result.describe())
    print()
    print(render_table(
        f"EOP governor state table ({config.policy})",
        ["component", "kind", "state", "demotions", "p(fail)",
         "target", "last reason"],
        [[row["component"], row["kind"], row["state"], row["demotions"],
          f"{row['failure_probability']:.2e}"
          if row["failure_probability"] is not None else "n/a",
          row["target"] or "nominal", row["reason"] or ""]
         for row in result.state_table],
    ))
    if args.report_json:
        from .persistence import canonical_json, payload_checksum

        payload = result.as_dict()
        report = {"config": config.as_dict(), "result": payload,
                  "checksum": payload_checksum(payload)}
        with open(args.report_json, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report))
            handle.write("\n")
    if result.demotions < args.expect_demotions:
        print(f"error: expected >= {args.expect_demotions} demotion(s), "
              f"saw {result.demotions}", file=sys.stderr)
        return 1
    return 0


def _parse_seeds(text: str):
    """``0,1,4:8`` -> (0, 1, 4, 5, 6, 7); ranges are half-open."""
    seeds = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if ":" in item:
            lo, hi = item.split(":", 1)
            seeds.extend(range(int(lo), int(hi)))
        else:
            seeds.append(int(item))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return tuple(seeds)


def _parse_grid(items):
    """Repeated ``axis=v1,v2`` options -> {axis: [typed values]}."""
    from .sweep import GRID_AXES

    grid = {}
    for item in items:
        axis, _, values = item.partition("=")
        axis = axis.strip()
        if axis not in GRID_AXES:
            raise ValueError(
                f"unknown grid axis {axis!r}; known: "
                f"{', '.join(sorted(GRID_AXES))}")
        if not values:
            raise ValueError(f"grid axis {axis!r} needs values, "
                             f"e.g. {axis}=a,b")
        _, coerce = GRID_AXES[axis]
        grid[axis] = [coerce(v.strip()) for v in values.split(",")]
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .sweep import (
        SweepSpec,
        harvest_report,
        report_digest,
        run_sweep,
        sweep_report,
        write_report,
    )

    try:
        seeds = _parse_seeds(args.seeds)
        grid = _parse_grid(args.grid or [])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = SweepSpec(
        seeds=seeds, n_nodes=args.nodes, duration_s=args.duration,
        policies=args.policies, rate_per_hour=args.rate,
        intensity=args.intensity, grid=grid,
        snapshot_root=args.snapshot_root,
        harvest=bool(args.harvest_labels))
    def _progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    progress = None if args.quiet else _progress
    outcome = run_sweep(spec, jobs=args.jobs,
                        max_retries=args.max_retries, progress=progress)
    report = sweep_report(outcome)
    table_rows = []
    for point, metrics in report["summary"].items():
        availability = metrics.get("fleet_availability", {})
        mttr = metrics.get("mttr_s", {})
        violations = metrics.get("sla_violations", {})
        table_rows.append([
            point, availability.get("count", 0),
            f"{availability.get('mean', 0.0):.4f}",
            f"{availability.get('min', 0.0):.4f}",
            f"{mttr['mean']:.0f}s" if mttr.get("count") else "n/a",
            f"{violations.get('mean', 0.0):.1f}",
        ])
    print(render_table(
        f"sweep: {len(outcome.rows)} campaigns, "
        f"{len(spec.seeds)} seed(s), jobs={args.jobs}",
        ["point", "runs", "avail mean", "avail min", "mttr mean",
         "sla viol mean"],
        table_rows))
    for failure in report["failures"]:
        print(f"FAILED {failure['point']} seed={failure['seed']}: "
              f"{failure['error']}", file=sys.stderr)
    if args.report_json:
        write_report(args.report_json, report)
    if args.harvest_labels:
        harvested = harvest_report(outcome)
        write_report(args.harvest_labels, harvested)
        print(f"harvested {harvested['n_observations']} labelled "
              f"observations -> {args.harvest_labels}")
        print(f"harvest sha256: {report_digest(harvested)}")
    print(f"report sha256: {report_digest(report)}")
    return 1 if outcome.failures else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .cloudmgr import (
        run_prediction_ab,
        score_harvest,
        train_from_observations,
    )
    from .persistence import payload_checksum
    from .sweep import SweepSpec, harvest_report, run_sweep

    try:
        train_seeds = _parse_seeds(args.train_seeds)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.eval_seed in train_seeds:
        print("error: --eval-seed must be held out of --train-seeds",
              file=sys.stderr)
        return 2

    def _progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    progress = None if args.quiet else _progress

    def _harvest(seeds):
        spec = SweepSpec(
            seeds=seeds, n_nodes=args.nodes, duration_s=args.duration,
            rate_per_hour=args.rate, intensity=args.intensity,
            harvest=True)
        outcome = run_sweep(spec, jobs=args.jobs, progress=progress)
        if outcome.failures:
            for row in outcome.failures:
                print(f"FAILED seed={row.seed}: {row.error}",
                      file=sys.stderr)
            raise SystemExit(1)
        return harvest_report(outcome)

    training = _harvest(train_seeds)
    predictor = train_from_observations(
        training["observations"], threshold=args.threshold)
    print(f"trained on {training['n_observations']} observations "
          f"({len(train_seeds)} campaign(s)); trained horizons: "
          f"{', '.join(predictor.trained_horizons()) or 'none'}")

    evaluation = _harvest((args.eval_seed,))
    scores = score_harvest(predictor, evaluation["observations"])
    for horizon, row in scores["horizons"].items():
        lead = (f"{row['mean_lead_s']:.0f}s"
                if row["mean_lead_s"] is not None else "n/a")
        print(f"  {horizon}: precision={row['precision']:.3f} "
              f"recall={row['recall']:.3f} "
              f"events={row['events']} detected={row['detected']} "
              f"mean lead={lead}")

    ab = None
    if args.ab:
        ab = run_prediction_ab(
            predictor, n_nodes=args.ab_nodes,
            duration_s=args.ab_duration, seed=args.ab_seed)
        base = ab["arms"]["baseline"]
        risk = ab["arms"]["risk_aware"]
        print(f"A/B over {ab['plan_faults']} planned faults: "
              f"availability {base['availability']:.4f} -> "
              f"{risk['availability']:.4f}, "
              f"sla violations {base['sla_violations']} -> "
              f"{risk['sla_violations']}")

    report = {
        "version": 1,
        "config": {
            "train_seeds": list(train_seeds),
            "eval_seed": args.eval_seed,
            "n_nodes": args.nodes,
            "duration_s": args.duration,
            "rate_per_hour": args.rate,
            "intensity": args.intensity,
            "threshold": args.threshold,
        },
        "training": {
            "n_observations": training["n_observations"],
            "trained_horizons": list(predictor.trained_horizons()),
        },
        "scoring": scores,
        "ab": ab,
    }
    if args.report_json:
        _write_canonical(args.report_json, report)
    print(f"report sha256: {payload_checksum(report)}")
    return 0


def _write_canonical(path: str, report) -> None:
    """Write a canonical-JSON report file (newline-terminated)."""
    from .persistence import canonical_json

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(report))
        handle.write("\n")


def _parse_kill_specs(specs, jobs: int = None) -> list:
    """Parse repeatable ``STEP:WORKER`` kill-injection arguments.

    Rejects malformed specs, negative steps, duplicates, and — when
    ``jobs`` is given — worker indices outside ``[0, jobs)``, each
    with an error naming the offending spec.
    """
    kills = []
    seen = set()
    for spec in specs:
        step, sep, worker = spec.partition(":")
        try:
            if not sep:
                raise ValueError(spec)
            pair = (int(step), int(worker))
        except ValueError:
            raise SystemExit(
                f"--kill-worker-at expects STEP:WORKER, got {spec!r}")
        if pair[0] < 0:
            raise SystemExit(
                f"--kill-worker-at step must be >= 0, got {spec!r}")
        if pair[1] < 0 or (jobs is not None and pair[1] >= jobs):
            raise SystemExit(
                f"--kill-worker-at worker {pair[1]} out of range for "
                f"--jobs {jobs} (valid: 0..{max(0, (jobs or 1) - 1)})")
        if pair in seen:
            raise SystemExit(
                f"--kill-worker-at {spec!r} given more than once")
        seen.add(pair)
        kills.append(pair)
    return kills


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .persistence import payload_checksum

    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.engine == "zoned":
        from .fleet import rack_report, run_zoned_rack_experiment

        experiment = run_zoned_rack_experiment(
            n_nodes=args.nodes, shards=args.shards,
            duration_s=args.duration, seed=args.seed,
            base_rate_per_hour=args.rate,
            chaos_seed=args.chaos_seed,
            chaos_rate_per_hour=args.chaos_rate,
            chaos_intensity=args.chaos_intensity)
        report = rack_report(experiment.cloud, experiment.stats)
        print(f"zoned rack: {args.nodes} nodes in {args.shards} "
              f"zone(s), {report['steps']} steps")
        print(f"admitted {report['simulation']['admitted']}, "
              f"energy {report['energy_j'] / 3.6e6:.3f} kWh, "
              f"availability {report['fleet_availability']:.4f}")
        digest = payload_checksum(report)
    else:
        from .fleet import (
            FleetCampaignConfig,
            FleetConfig,
            run_fleet_campaign,
        )

        config = FleetCampaignConfig(
            fleet=FleetConfig(n_nodes=args.nodes, seed=args.seed),
            duration_s=args.duration,
            arrivals_per_hour=args.rate,
            shards=args.shards, stepper=args.stepper,
            chaos_seed=args.chaos_seed,
            chaos_rate_per_hour=args.chaos_rate,
            chaos_intensity=args.chaos_intensity,
            correlated_seed=args.correlated_seed,
            correlated_rate_per_hour=args.correlated_rate,
            correlated_intensity=args.correlated_intensity,
            domain_defense=args.domain_defense)
        report = run_fleet_campaign(
            config, jobs=args.jobs, snapshot_dir=args.snapshot_dir,
            snapshot_every_steps=args.snapshot_every,
            resume=args.resume,
            worker_timeout_s=args.worker_timeout,
            max_worker_restarts=args.max_worker_restarts,
            kill_worker_at=_parse_kill_specs(
                args.kill_worker_at, jobs=args.jobs))
        totals = report["totals"]
        ep = report["energy_proportionality"]
        print(f"fleet campaign: {args.nodes} nodes, "
              f"{args.shards} shard(s), jobs={args.jobs}, "
              f"stepper={args.stepper}")
        print(f"steps {totals['steps']}, admitted {totals['admitted']}, "
              f"rejected {totals['rejected']}, "
              f"completed {totals['completed']}")
        if args.chaos_seed is not None:
            print(f"chaos: seed {args.chaos_seed}, "
                  f"crashes {totals['crashes']}, "
                  f"vm failures {totals['vm_failures']}, "
                  f"nodes down at end {totals['nodes_down_final']}")
        domains = report.get("fault_domains")
        if domains:
            print(f"fault domains: {domains['specs']} correlated "
                  f"spec(s) over {domains['topology']['racks']} "
                  f"rack(s), defense "
                  f"{'on' if domains['defense'] else 'off'}; "
                  f"availability {totals['availability']:.4f}, "
                  f"sla violations {totals['sla_violations']}, "
                  f"domain demotions {totals['domain_demotions']}, "
                  f"migrations {totals['migrations']}")
        quarantine = report.get("quarantine")
        if quarantine:
            print(f"quarantine: {quarantine['nodes']} node(s) frozen "
                  f"in ranges {quarantine['node_ranges']} after "
                  f"{quarantine['worker_restarts']} worker restart(s)")
        print(f"energy {totals['energy_j'] / 3.6e6:.3f} kWh, "
              f"violations {totals['violations']}, "
              f"margins adopted {totals['margins_adopted_final']}"
              f"/{args.nodes}")
        print(f"energy proportionality: dynamic range "
              f"{ep['dynamic_range']:.3f}, index "
              f"{ep['proportionality_index']:.3f}"
              if ep["proportionality_index"] is not None else
              "energy proportionality: no samples")
        digest = report["report_sha256"]
    if args.report_json:
        _write_canonical(args.report_json, report)
    print(f"report sha256: {digest}")
    return 0


def _cmd_hrm(args: argparse.Namespace) -> int:
    from .hrm import HrmConfig, run_hrm_ab
    from .persistence import payload_checksum

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    config = HrmConfig(n_nodes=args.nodes, seed=args.seed,
                       duration_s=args.duration,
                       vms_per_node=args.vms)
    report = run_hrm_ab(config, jobs=args.jobs)
    print(f"hrm A/B: {args.nodes} node(s), "
          f"{args.vms} VM(s)/node, jobs={args.jobs}")
    for arm in ("tiered", "all-nominal", "all-relaxed"):
        row = report["arms"][arm]
        print(f"  {arm:<12} refresh {row['refresh_energy_j'] / 3.6e6:.6f} "
              f"kWh, ecc {row['ecc_energy_j']:.1f} J, expected "
              f"critical UEs {row['expected_critical_ue']:.3e}, "
              f"spilled {row['spilled_mb']:.0f} MB")
    frontier = report["frontier"]
    print(f"frontier: refresh energy savings vs all-nominal "
          f"{frontier['refresh_energy_savings_vs_nominal']:.1%}, "
          f"critical-UE ratio vs all-relaxed "
          f"{frontier['critical_ue_ratio_vs_relaxed']:.3e}")
    on_frontier = (frontier["tiered_beats_nominal_energy"]
                   and frontier["tiered_beats_relaxed_ue"])
    print("tiered layout is "
          + ("ON" if on_frontier else "OFF") + " the frontier")
    if args.report_json:
        _write_canonical(args.report_json, report)
    print(f"report sha256: {payload_checksum(report)}")
    return 0 if on_frontier or not args.require_frontier else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    if args.what == "fleet":
        from .fleet import (
            FleetCampaignConfig,
            FleetConfig,
            run_fleet_campaign,
        )

        config = FleetCampaignConfig(
            fleet=FleetConfig(n_nodes=args.nodes, seed=args.seed),
            duration_s=args.duration)
        profiler.enable()
        run_fleet_campaign(config)
        profiler.disable()
    else:
        from .cloudmgr import run_rack_experiment

        profiler.enable()
        run_rack_experiment(n_nodes=args.nodes,
                            duration_s=args.duration, seed=args.seed)
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(f"# profile: {args.what} campaign, {args.nodes} nodes, "
          f"{args.duration:.0f}s, seed {args.seed}")
    print(stream.getvalue())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UniServer reproduction command-line interface",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart",
                   help="full cross-layer loop on one node")
    characterize = sub.add_parser(
        "characterize", help="Table 2 undervolting campaign")
    characterize.add_argument("--chip", choices=("i5", "i7", "arm"),
                              default="i5")
    refresh = sub.add_parser("refresh",
                             help="Section 6.B refresh sweep")
    refresh.add_argument("--channels", type=int, default=4)
    sub.add_parser("figure4", help="hypervisor fault injection")
    population = sub.add_parser("population",
                                help="Figure 1 population study")
    population.add_argument("--chips", type=int, default=1000)
    sub.add_parser("tco", help="Table 3 TCO projection")
    sub.add_parser("edge", help="Section 6.D edge arithmetic")
    sub.add_parser("validate", help="re-check analytical paper claims")
    metrics = sub.add_parser(
        "metrics", help="seeded rack run, cross-layer metrics dump")
    metrics.add_argument("--nodes", type=int, default=4)
    metrics.add_argument("--duration", type=float, default=1800.0)
    metrics.add_argument("--characterize", action="store_true",
                         help="run the pre-deployment StressLog cycle "
                              "on every node")
    chaos = sub.add_parser(
        "chaos", help="seeded control-plane chaos campaign")
    chaos.add_argument("--nodes", type=int, default=4)
    chaos.add_argument("--duration", type=float, default=3600.0)
    chaos.add_argument("--rate", type=float, default=8.0,
                       help="expected faults per node-hour")
    chaos.add_argument("--intensity", type=float, default=0.7,
                       help="fault magnitude scale in (0, 1]")
    chaos.add_argument("--policies", choices=("on", "off", "both"),
                       default="both",
                       help="degradation ladder on, off, or the A/B")
    chaos.add_argument("--verbose", action="store_true",
                       help="print the drawn fault plan")
    chaos.add_argument("--snapshot-dir", default=None,
                       help="persist crash-safe snapshots + journal "
                            "here (single-arm runs only)")
    chaos.add_argument("--resume", action="store_true",
                       help="resume from the newest valid snapshot in "
                            "--snapshot-dir")
    chaos.add_argument("--snapshot-every", type=float, default=600.0,
                       help="snapshot period in simulated seconds "
                            "(default 600)")
    chaos.add_argument("--strict-audit", action="store_true",
                       help="raise on the first invariant violation "
                            "instead of counting")
    chaos.add_argument("--report-json", default=None,
                       help="write the machine-readable campaign "
                            "report (canonical JSON) to this path")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="run the policies A/B arms in parallel "
                            "worker processes (--policies both only)")
    sweep = sub.add_parser(
        "sweep", help="parallel multi-seed campaign sweep")
    sweep.add_argument("--nodes", type=int, default=4)
    sweep.add_argument("--duration", type=float, default=3600.0)
    sweep.add_argument("--rate", type=float, default=8.0,
                       help="expected faults per node-hour")
    sweep.add_argument("--intensity", type=float, default=0.7,
                       help="fault magnitude scale in (0, 1]")
    sweep.add_argument("--policies", choices=("on", "off"),
                       default="on",
                       help="base degradation arm (grid axis "
                            "policies=on,off sweeps both)")
    sweep.add_argument("--seeds", default="0",
                       help="seed list, e.g. 0,1,2 or 0:8 (half-open "
                            "range), or a mix")
    sweep.add_argument("--grid", action="append", metavar="AXIS=V1,V2",
                       help="add a config grid axis (repeatable): "
                            "nodes, duration, rate, intensity, "
                            "base_rate, step, policies")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="concurrent worker processes (default 1)")
    sweep.add_argument("--max-retries", type=int, default=1,
                       help="per-task retries after a worker crash "
                            "(default 1)")
    sweep.add_argument("--report-json", default=None,
                       help="write the canonical-JSON aggregate "
                            "report to this path")
    sweep.add_argument("--snapshot-root", default=None,
                       help="give every task a crash-safe snapshot "
                            "directory under this root")
    sweep.add_argument("--harvest-labels", default=None, metavar="PATH",
                       help="also write ledger-labelled prediction "
                            "observations (canonical JSON) to PATH")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-campaign progress lines")
    predict = sub.add_parser(
        "predict", help="train, score and A/B the multi-horizon "
                        "failure predictor")
    predict.add_argument("--train-seeds", default="11,12,13",
                         help="seeds of the harvest campaigns the "
                              "predictor trains on")
    predict.add_argument("--eval-seed", type=int, default=21,
                         help="held-out seed scored against the "
                              "ground-truth fault ledger")
    predict.add_argument("--nodes", type=int, default=3)
    predict.add_argument("--duration", type=float, default=10800.0)
    predict.add_argument("--rate", type=float, default=8.0,
                         help="expected faults per node-hour in the "
                              "harvest campaigns (moderate rates keep "
                              "the horizon labels balanced)")
    predict.add_argument("--intensity", type=float, default=0.9)
    predict.add_argument("--threshold", type=float, default=0.35,
                         help="at-risk probability threshold at the "
                              "nearest horizon (farther horizons scale "
                              "it toward certainty)")
    predict.add_argument("--jobs", type=int, default=1,
                         help="concurrent harvest worker processes")
    predict.add_argument("--ab", action="store_true",
                         help="also run the risk-aware vs threshold "
                              "migration A/B under a pinned plan")
    predict.add_argument("--ab-nodes", type=int, default=5)
    predict.add_argument("--ab-duration", type=float, default=7200.0)
    predict.add_argument("--ab-seed", type=int, default=42)
    predict.add_argument("--report-json", default=None,
                         help="write the canonical-JSON prediction "
                              "report to this path")
    predict.add_argument("--quiet", action="store_true",
                         help="suppress per-campaign progress lines")
    eop = sub.add_parser(
        "eop", help="error-injecting EOP-governor campaign")
    eop.add_argument("--duration", type=float, default=1800.0)
    eop.add_argument("--step", type=float, default=30.0)
    eop.add_argument("--vms", type=int, default=4)
    eop.add_argument("--policy",
                     choices=("conservative", "adopt-within-budget",
                              "aggressive", "one-shot"),
                     default="adopt-within-budget",
                     help="governor stance (default adopt-within-budget)")
    eop.add_argument("--error-budget", type=int, default=None,
                     help="override the policy's per-window error budget")
    eop.add_argument("--probation", type=float, default=None,
                     help="override the policy's probation window (s)")
    eop.add_argument("--inject", action="append",
                     metavar="COMPONENT:START:DURATION:RATE",
                     help="deterministic correctable-error storm "
                          "(repeatable), e.g. core2:120:120:0.5")
    eop.add_argument("--expect-demotions", type=int, default=0,
                     help="exit nonzero unless at least this many "
                          "demotions happened")
    eop.add_argument("--report-json", default=None,
                     help="write the canonical-JSON campaign report "
                          "to this path")
    fleet = sub.add_parser(
        "fleet", help="zone-sharded fleet campaign")
    fleet.add_argument("--nodes", type=int, default=64)
    fleet.add_argument("--duration", type=float, default=3600.0)
    fleet.add_argument("--rate", type=float, default=120.0,
                       help="VM arrivals per hour (default 120)")
    fleet.add_argument("--shards", type=int, default=1,
                       help="contiguous node shards/zones (default 1); "
                            "reports are shard-invariant")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="worker processes stepping shards in "
                            "parallel (vector engine only)")
    fleet.add_argument("--engine", choices=("vector", "zoned"),
                       default="vector",
                       help="vectorized batch campaign or the zoned "
                            "object-stack rack (default vector)")
    fleet.add_argument("--stepper", choices=("vector", "scalar"),
                       default="vector",
                       help="batch kernels or the naive per-node loop "
                            "(identical output; scalar is the bench "
                            "baseline)")
    fleet.add_argument("--snapshot-dir", default=None,
                       help="persist checksummed snapshot generations "
                            "here (vector engine)")
    fleet.add_argument("--snapshot-every", type=int, default=None,
                       metavar="STEPS",
                       help="snapshot period in steps")
    fleet.add_argument("--resume", action="store_true",
                       help="resume from the newest valid snapshot in "
                            "--snapshot-dir")
    fleet.add_argument("--report-json", default=None,
                       help="write the canonical-JSON fleet report "
                            "to this path")
    fleet.add_argument("--chaos-seed", type=int, default=None,
                       help="seed a vectorized fault plan (crash "
                            "storms, telemetry dropout, governor "
                            "wedges); changes the physics, so it is "
                            "part of the report identity")
    fleet.add_argument("--chaos-rate", type=float, default=6.0,
                       help="expected faults per node-hour "
                            "(default 6)")
    fleet.add_argument("--chaos-intensity", type=float, default=0.5,
                       help="fault magnitude scale in (0, 1] "
                            "(default 0.5)")
    fleet.add_argument("--correlated-seed", type=int, default=None,
                       help="seed a topology-correlated fault plan "
                            "(PDU brownouts, cooling failures, rack "
                            "partitions); part of the report identity")
    fleet.add_argument("--correlated-rate", type=float, default=1.0,
                       help="expected correlated faults per "
                            "domain-kind-hour (default 1)")
    fleet.add_argument("--correlated-intensity", type=float,
                       default=0.7,
                       help="correlated fault magnitude scale in "
                            "(0, 1] (default 0.7)")
    fleet.add_argument("--domain-defense", action="store_true",
                       help="arm the domain-aware defenses: rack "
                            "anti-affinity placement, partition "
                            "routing, correlated-demotion guard and "
                            "bounded zone evacuation")
    fleet.add_argument("--kill-worker-at", action="append", default=[],
                       metavar="STEP:WORKER",
                       help="SIGKILL worker WORKER at step STEP "
                            "(repeatable; needs --jobs >= 2); the "
                            "report must not change")
    fleet.add_argument("--max-worker-restarts", type=int, default=2,
                       help="respawns per worker before its shards "
                            "are quarantined (default 2)")
    fleet.add_argument("--worker-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="supervision deadline per worker reply "
                            "(default 30)")
    hrm = sub.add_parser(
        "hrm", help="tiered-vs-uniform memory reliability A/B")
    hrm.add_argument("--nodes", type=int, default=8)
    hrm.add_argument("--seed", type=int, default=0)
    hrm.add_argument("--duration", type=float, default=3600.0)
    hrm.add_argument("--vms", type=int, default=4,
                     help="VMs per node (default 4)")
    hrm.add_argument("--jobs", type=int, default=1,
                     help="worker processes over node chunks; the "
                          "report bytes are jobs-invariant")
    hrm.add_argument("--require-frontier", action="store_true",
                     help="exit nonzero unless the tiered arm beats "
                          "all-nominal on refresh energy AND "
                          "all-relaxed on expected critical UEs")
    hrm.add_argument("--report-json", default=None,
                     help="write the canonical-JSON A/B report to "
                          "this path")
    profile = sub.add_parser(
        "profile", help="short campaign under cProfile")
    profile.add_argument("--what", choices=("rack", "fleet"),
                         default="rack",
                         help="which campaign to profile (default rack)")
    profile.add_argument("--nodes", type=int, default=4)
    profile.add_argument("--duration", type=float, default=1800.0)
    profile.add_argument("--top", type=int, default=25,
                         help="rows of the hot-path table (default 25)")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "calls"),
                         help="pstats sort key (default cumulative)")
    return parser


_HANDLERS = {
    "quickstart": _cmd_quickstart,
    "characterize": _cmd_characterize,
    "refresh": _cmd_refresh,
    "figure4": _cmd_figure4,
    "population": _cmd_population,
    "tco": _cmd_tco,
    "edge": _cmd_edge,
    "validate": _cmd_validate,
    "metrics": _cmd_metrics,
    "chaos": _cmd_chaos,
    "sweep": _cmd_sweep,
    "predict": _cmd_predict,
    "eop": _cmd_eop,
    "fleet": _cmd_fleet,
    "hrm": _cmd_hrm,
    "profile": _cmd_profile,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = _HANDLERS[args.command]
    # Seed defaults: figure4/population use the bench seeds for
    # reproducible headline numbers unless overridden.
    if args.command == "figure4" and args.seed == 0:
        args.seed = 7
    if args.command == "population" and args.seed == 0:
        args.seed = 42
    if args.command == "characterize" and args.seed == 0:
        args.seed = 11 if args.chip == "i5" else 22
    if args.command == "refresh" and args.seed == 0:
        args.seed = 5
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
