"""Lifetime simulation: aging, margin drift and re-characterisation.

Section 3.D: the StressLog's new V-F-R values "may need to be updated
several times over the lifetime of a server due to the aging effects of
the machine or unexpected errors observed", on a periodic (2–3 month)
cadence or triggered by anomalies.

The :class:`LifetimeSimulator` runs a node through years of accelerated
operation: BTI aging raises every core's Vmin as a function of the
voltage/temperature it actually runs at, and the configured
re-characterisation policy decides whether the margins track that drift.
The headline comparison (ablation A5): a node that characterises once at
deployment and never again starts crashing as silicon ages past its
frozen margins; periodic re-characterisation keeps the failure rate flat
at a small energy cost (margins retreat as the part ages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..daemons.stresslog import StressLog, StressTargets
from ..hardware.aging import YEAR_S
from ..hardware.platform import ServerPlatform, build_uniserver_node
from ..workloads.base import Workload, WorkloadSuite
from ..workloads.spec import spec_suite
from .clock import SimClock
from .exceptions import ConfigurationError

#: Months, in seconds, for cadence arithmetic.
MONTH_S = YEAR_S / 12.0


@dataclass(frozen=True)
class EpochReport:
    """State of the node after one simulated epoch."""

    age_years: float
    mean_vmin_drift_mv: float
    mean_margin_headroom_mv: float
    crash_rate: float
    mean_relative_power: float
    recharacterizations: int


@dataclass
class LifetimeResult:
    """Full lifetime trajectory."""

    epochs: List[EpochReport] = field(default_factory=list)

    def final(self) -> EpochReport:
        """The last simulated epoch."""
        if not self.epochs:
            raise ConfigurationError("no epochs simulated")
        return self.epochs[-1]

    def first_unsafe_epoch(self, crash_rate_budget: float = 0.01,
                           ) -> Optional[EpochReport]:
        """The first epoch whose crash rate exceeds the budget."""
        for epoch in self.epochs:
            if epoch.crash_rate > crash_rate_budget:
                return epoch
        return None

    def total_recharacterizations(self) -> int:
        """StressLog cycles run over the lifetime."""
        return self.epochs[-1].recharacterizations if self.epochs else 0


class LifetimeSimulator:
    """Accelerated multi-year simulation of one node's margins."""

    def __init__(self, platform: Optional[ServerPlatform] = None,
                 recharacterize_every_months: Optional[float] = 3.0,
                 workload_suite: Optional[WorkloadSuite] = None,
                 operating_temperature_c: float = 65.0,
                 guard_margin_v: float = 0.010,
                 crash_trials_per_epoch: int = 200,
                 seed: int = 0) -> None:
        if recharacterize_every_months is not None \
                and recharacterize_every_months <= 0:
            raise ConfigurationError("cadence must be positive or None")
        if crash_trials_per_epoch < 10:
            raise ConfigurationError("need >= 10 crash trials per epoch")
        self.platform = platform or build_uniserver_node()
        self.cadence_s = (None if recharacterize_every_months is None
                          else recharacterize_every_months * MONTH_S)
        # Safety is defined against the stress suite (Section 3.B): the
        # epoch crash trials draw from the same worst-case kernels the
        # StressLog characterises with, so headroom below the guard
        # margin translates directly into observed failures.
        from ..workloads.viruses import virus_suite
        self.suite = workload_suite or virus_suite()
        self.temperature_c = operating_temperature_c
        self.guard_margin_v = guard_margin_v
        self.crash_trials = crash_trials_per_epoch
        self.clock = SimClock()
        self.stresslog = StressLog(
            self.platform, self.clock,
            targets=StressTargets(guard_margin_v=guard_margin_v),
        )
        self._rng = np.random.default_rng(seed)
        self._recharacterizations = 0

    # -- internals ---------------------------------------------------------------

    def _characterize_and_apply(self) -> None:
        """Run a StressLog cycle and adopt the core margins."""
        vector = self.stresslog.characterize()
        self._recharacterizations += 1
        for margin in vector.margins:
            if margin.component.startswith("core"):
                core_id = int(margin.component[len("core"):])
                old = self.platform.core_point(core_id)
                self.platform.set_core_point(
                    core_id,
                    margin.safe_point.with_refresh(old.refresh_interval_s))

    def _age_epoch(self, epoch_s: float) -> None:
        """Accrue aging at each core's current operating conditions."""
        for core in self.platform.chip.cores:
            point = self.platform.core_point(core.core_id)
            core.age(epoch_s, point.voltage_v, self.temperature_c)

    def _epoch_report(self, age_s: float) -> EpochReport:
        chip = self.platform.chip
        nominal = chip.spec.nominal
        drifts, headrooms, powers = [], [], []
        crashes = 0
        trials = 0
        workloads = list(self.suite)
        for core in chip.cores:
            point = self.platform.core_point(core.core_id)
            drifts.append(core.aging.vmin_drift_v())
            worst_crash = max(
                core.crash_voltage_v(w.profile) for w in workloads
            )
            headrooms.append(point.voltage_v - worst_crash)
            powers.append(
                chip.power.relative_dynamic_power(point, nominal))
            for _ in range(self.crash_trials // chip.n_cores):
                workload = workloads[
                    int(self._rng.integers(len(workloads)))]
                trials += 1
                if not core.check_run(point, workload.profile):
                    crashes += 1
        return EpochReport(
            age_years=age_s / YEAR_S,
            mean_vmin_drift_mv=float(np.mean(drifts)) * 1e3,
            mean_margin_headroom_mv=float(np.mean(headrooms)) * 1e3,
            crash_rate=crashes / max(1, trials),
            mean_relative_power=float(np.mean(powers)),
            recharacterizations=self._recharacterizations,
        )

    # -- the main loop --------------------------------------------------------------

    def run(self, years: float = 5.0,
            epoch_months: float = 3.0) -> LifetimeResult:
        """Simulate ``years`` of operation in ``epoch_months`` steps.

        The node is characterised once at deployment; afterwards it is
        re-characterised on the configured cadence (or never, when the
        cadence is ``None`` — the ablated configuration).
        """
        if years <= 0 or epoch_months <= 0:
            raise ConfigurationError("years and epoch must be positive")
        epoch_s = epoch_months * MONTH_S
        n_epochs = int(round(years * YEAR_S / epoch_s))

        self._characterize_and_apply()   # pre-deployment
        result = LifetimeResult()
        since_recharacterization = 0.0
        age_s = 0.0
        for _ in range(n_epochs):
            self._age_epoch(epoch_s)
            age_s += epoch_s
            since_recharacterization += epoch_s
            if (self.cadence_s is not None
                    and since_recharacterization >= self.cadence_s):
                self._characterize_and_apply()
                since_recharacterization = 0.0
            result.epochs.append(self._epoch_report(age_s))
        return result
