"""Cross-layer coordinator: the full UniServer node (paper Figure 2).

:class:`UniServerNode` assembles the complete ecosystem on one platform —
event bus, HealthLog, StressLog, Predictor, Hypervisor — and drives the
information-vector flow of Figure 2:

1. **pre-deployment**: StressLog stress-tests every component and emits a
   margin vector of Extended Operating Points;
2. **deployment**: the Hypervisor adopts the EOPs that fit the failure
   budget, VMs run, the HealthLog records everything;
3. **runtime adaptation**: the Predictor trains on the accumulated
   evidence and advises execution modes; HealthLog anomalies trigger
   StressLog re-characterisation; the isolation manager fences failing
   resources.

The :meth:`energy_report` compares the node's energy at EOP against the
conservative-nominal baseline — the headline UniServer saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..daemons.healthlog import HealthLog, HealthLogConfig
from ..daemons.infovector import InfoVector, MarginVector
from ..daemons.predictor import Predictor
from ..daemons.stresslog import StressLog, StressTargets
from ..eop.governor import EOPGovernor
from ..eop.policy import EOPPolicy
from ..hardware.platform import ServerPlatform, build_uniserver_node
from ..hypervisor.hypervisor import Hypervisor, HypervisorConfig
from ..hypervisor.isolation import IsolationManager, IsolationPolicy
from ..hypervisor.qos import QoSGuard
from ..hypervisor.vm import VirtualMachine
from ..workloads.base import WorkloadSuite
from .clock import SimClock
from .eop import OperatingPoint
from .events import EventBus
from .exceptions import ConfigurationError
from .runtime import NodeRuntime


@dataclass
class EnergyReport:
    """EOP-vs-nominal energy comparison for one node."""

    nominal_power_w: float
    eop_power_w: float

    @property
    def saving_fraction(self) -> float:
        """Fractional power saving of EOP vs nominal."""
        if self.nominal_power_w <= 0:
            return 0.0
        return 1.0 - self.eop_power_w / self.nominal_power_w


class UniServerNode:
    """The full cross-layer stack on a single micro-server.

    All per-node plumbing (clock, bus, RNG streams, metrics) lives in one
    :class:`~repro.core.runtime.NodeRuntime`; every layer of the node —
    HealthLog, StressLog, Predictor, Hypervisor, IsolationManager,
    QoSGuard — is built on it, so single-node benches and the rack
    simulator exercise exactly the same stack.  Pass ``runtime=`` to
    embed the node in a rack (shared clock, spawned seed family); the
    ``clock``/``seed`` parameters remain for standalone use.
    """

    def __init__(self, platform: Optional[ServerPlatform] = None,
                 clock: Optional[SimClock] = None,
                 stress_suite: Optional[WorkloadSuite] = None,
                 stress_targets: Optional[StressTargets] = None,
                 hypervisor_config: Optional[HypervisorConfig] = None,
                 seed: int = 0,
                 runtime: Optional[NodeRuntime] = None,
                 healthlog_config: Optional[HealthLogConfig] = None,
                 isolation_policy: Optional[IsolationPolicy] = None,
                 eop_policy: Optional[EOPPolicy] = None) -> None:
        if runtime is None:
            runtime = NodeRuntime(name="uniserver0", clock=clock, seed=seed)
        elif clock is not None and clock is not runtime.clock:
            raise ConfigurationError(
                "pass either a runtime or a clock, not a conflicting pair")
        self.runtime = runtime
        self.clock = runtime.clock
        self.bus = runtime.bus
        self.metrics = runtime.metrics
        self.platform = platform or build_uniserver_node(name=runtime.name)
        self.healthlog = HealthLog(self.platform, runtime=runtime,
                                   config=healthlog_config)
        self.stresslog = StressLog(
            self.platform, runtime=runtime,
            suite=stress_suite, targets=stress_targets,
        )
        self.predictor = Predictor(self.platform.chip.spec.nominal,
                                   runtime=runtime)
        self.hypervisor = Hypervisor(
            self.platform, runtime=runtime, config=hypervisor_config,
        )
        self.isolation = IsolationManager(self.platform,
                                          policy=isolation_policy,
                                          runtime=runtime)
        self.qos = QoSGuard(self.hypervisor, runtime=runtime)
        self.governor = EOPGovernor(
            self.hypervisor, qos=self.qos, healthlog=self.healthlog,
            policy=eop_policy or EOPPolicy.adopt_within_budget(),
            runtime=runtime)
        self.margin_history: List[MarginVector] = []
        self._deployed = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def deployed(self) -> bool:
        """Whether the node has been brought into service."""
        return self._deployed

    def pre_deploy(self) -> MarginVector:
        """Pre-deployment characterisation: the first StressLog cycle."""
        margins = self.stresslog.characterize(trigger="pre-deployment")
        self.margin_history.append(margins)
        return margins

    def deploy(self, policy: Optional[EOPPolicy] = None) -> List[str]:
        """Bring the node into service under an EOP policy.

        Returns the components whose configuration changed.  ``policy``
        overrides the governor's stance for the rest of the node's life;
        with :meth:`EOPPolicy.conservative` the node deploys at nominal —
        the baseline configuration of the benches — and no prior
        characterisation is required.
        """
        if policy is not None:
            self.governor.policy = policy
        adopting = self.governor.policy.adopt
        if adopting and not self.margin_history:
            raise ConfigurationError("run pre_deploy() before deploy()")
        self.hypervisor.boot()
        self.healthlog.start()
        self.stresslog.attach_anomaly_trigger(self.bus)
        self._deployed = True
        if not self.margin_history:
            return []
        return self.governor.adopt(self.margin_history[-1]).adopted

    def launch_vm(self, vm: VirtualMachine) -> None:
        """Admit one VM onto the node."""
        if not self._deployed:
            raise ConfigurationError("deploy() the node before launching VMs")
        self.hypervisor.create_vm(vm)

    def run(self, duration_s: float,
            isolation_review_every_s: float = 60.0) -> None:
        """Run the node: hypervisor ticks plus periodic isolation review."""
        if not self._deployed:
            raise ConfigurationError("deploy() the node before running")
        tick = self.hypervisor.config.tick_s
        elapsed = 0.0
        since_review = 0.0
        while elapsed < duration_s and not self.hypervisor.crashed:
            self.hypervisor.tick()
            self.clock.advance_by(tick)
            elapsed += tick
            since_review += tick
            if since_review >= isolation_review_every_s:
                self.governor.step()
                self.isolation.review(self.platform.faults, self.clock.now)
                since_review = 0.0

    # -- the runtime feedback loop ------------------------------------------------

    def train_predictor(self, benchmark_suite=None,
                        include_campaign: bool = True) -> None:
        """Train the Predictor from StressLog evidence plus benchmarks.

        Two evidence sources, mirroring the StressLog's workload suite of
        "benchmarks and kernels that either represent real-life
        applications or are hand-coded to stress specific components":

        * every characterised virus point contributes survival evidence
          at the safe point and crash evidence at the observed crash
          voltage;
        * an undervolting campaign with ``benchmark_suite`` (the
          SPEC-like suite by default) teaches the model how workload
          characteristics move the crash point.  Rack simulations with
          many nodes can skip it (``include_campaign=False``) and train
          on the stress evidence alone.
        """
        from ..characterization.cpu_undervolting import UndervoltingCampaign
        from ..daemons.predictor import dataset_from_campaign
        from ..workloads.spec import spec_suite

        nominal = self.platform.chip.spec.nominal
        suite = self.stresslog.suite
        for vector in self.margin_history:
            for margin in vector.margins:
                if not margin.component.startswith("core"):
                    continue
                profile = suite.get(margin.stress_workload).profile
                self.predictor.observe(margin.safe_point, profile,
                                       crashed=False)
                if margin.observed_crash_voltage_v is not None:
                    crash_point = nominal.with_voltage(
                        min(nominal.voltage_v,
                            margin.observed_crash_voltage_v))
                    self.predictor.observe(crash_point, profile,
                                           crashed=True)
                # Nominal always survives the stress suite.
                self.predictor.observe(nominal, profile, crashed=False)

        if include_campaign:
            benchmark_suite = benchmark_suite or spec_suite()
            campaign = UndervoltingCampaign(
                self.platform.chip, benchmark_suite, runs_per_benchmark=1,
            ).run()
            self.predictor.ingest(dataset_from_campaign(
                campaign, benchmark_suite, nominal))
        self.predictor.train()

    def recharacterize(self) -> MarginVector:
        """An on-demand StressLog cycle (e.g. after aging or anomalies)."""
        margins = self.stresslog.characterize(trigger="on-demand")
        self.margin_history.append(margins)
        return margins

    def snapshot(self) -> InfoVector:
        """The HealthLog's on-demand information vector."""
        return self.healthlog.snapshot()

    # -- reporting --------------------------------------------------------------

    def energy_report(self, activity: float = 0.5) -> EnergyReport:
        """Current power versus the conservative-nominal configuration."""
        eop_power = self.platform.total_power_w(activity=activity)
        current_points = {
            core.core_id: self.platform.core_point(core.core_id)
            for core in self.platform.chip.cores
        }
        current_refresh = {
            d.name: d.refresh_interval_s
            for d in self.platform.memory.domains()
        }
        try:
            self.platform.reset_nominal()
            nominal_power = self.platform.total_power_w(activity=activity)
        finally:
            for core_id, point in current_points.items():
                self.platform.set_core_point(core_id, point)
            for name, interval in current_refresh.items():
                domain = self.platform.memory.domain(name)
                if not domain.reliable:
                    domain.set_refresh_interval(interval)
        return EnergyReport(nominal_power_w=nominal_power,
                            eop_power_w=eop_power)
