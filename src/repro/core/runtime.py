"""Per-node runtime context: clock, bus, RNG streams and metrics.

Every layer of the UniServer stack — hardware fault models, the HealthLog
and StressLog daemons, the Predictor, the hypervisor and the cloud
manager — used to receive its simulation plumbing piecemeal: a
``SimClock`` here, an ``EventBus`` there, an ad-hoc ``seed: int``
everywhere.  :class:`NodeRuntime` bundles that plumbing into one object
per node so that

* every layer shares the same time base and event bus,
* every stochastic component draws from an *independent, named* RNG
  stream derived from one root :class:`numpy.random.SeedSequence`
  (so adding a new consumer never perturbs existing streams), and
* every layer reports into one :class:`MetricsRegistry`, giving the
  rack-level manager a uniform telemetry surface (the prerequisite for
  fleet-scale failure prediction).

Two identically seeded runtimes driving the same code produce
bit-identical traces; the determinism regression tests rely on this.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .clock import SimClock
from .events import EventBus
from .exceptions import ConfigurationError


@dataclass
class HistogramStats:
    """Bounded-memory summary of an observed value series.

    Stores moments rather than raw samples so that long rack simulations
    cannot grow without bound; the snapshot is still bit-reproducible
    because updates are applied in simulation order.
    """

    count: int = 0
    total: float = 0.0
    sum_sq: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form used in snapshots."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
        }

    def state_dict(self) -> Dict[str, float]:
        """Lossless serializable form (keeps the raw moments).

        ``min_value``/``max_value`` are +/-inf for an empty histogram;
        they are encoded as ``None`` so the payload stays strict-JSON.
        """
        return {
            "count": self.count,
            "total": self.total,
            "sum_sq": self.sum_sq,
            "min_value": None if self.count == 0 else self.min_value,
            "max_value": None if self.count == 0 else self.max_value,
        }

    def load_state_dict(self, state: Dict[str, float]) -> None:
        """Restore the raw moments saved by :meth:`state_dict`."""
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.sum_sq = float(state["sum_sq"])
        self.min_value = (float("inf") if state["min_value"] is None
                          else float(state["min_value"]))
        self.max_value = (float("-inf") if state["max_value"] is None
                          else float(state["max_value"]))


class MetricsRegistry:
    """Counters, gauges and histograms shared by every layer of a node.

    Series names are dotted strings namespaced by layer, e.g.
    ``hardware.faults.crash``, ``daemons.healthlog.events``,
    ``hypervisor.ticks``, ``cloudmgr.scheduler.placements``.  The
    :meth:`snapshot` is a plain nested dict with sorted keys, so two
    identical runs compare equal bit-for-bit.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramStats] = {}

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> float:
        """Increment (and return) a monotonically growing counter."""
        if amount < 0:
            raise ConfigurationError("counters only grow; use a gauge")
        value = self._counters.get(name, 0.0) + amount
        self._counters[name] = value
        return value

    def counter(self, name: str) -> float:
        """Current counter value (0 when never incremented)."""
        return self._counters.get(name, 0.0)

    # -- gauges ------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time metric."""
        self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        """Latest gauge value, or None when never set."""
        return self._gauges.get(name)

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into a histogram series."""
        self.histogram(name).observe(value)

    def histogram(self, name: str) -> HistogramStats:
        """The live summary of a histogram series.

        A never-observed series is registered on first access, so
        observations folded into the returned instance are never lost
        (returning a detached ``HistogramStats`` silently dropped them).
        """
        stats = self._histograms.get(name)
        if stats is None:
            stats = self._histograms[name] = HistogramStats()
        return stats

    # -- introspection -----------------------------------------------------

    def series_names(self) -> List[str]:
        """All series names across the three kinds, sorted."""
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms))

    def layers(self) -> List[str]:
        """Distinct top-level namespaces reporting into this registry."""
        return sorted({name.split(".", 1)[0]
                       for name in self.series_names()})

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic plain-dict dump of every series."""
        return {
            "counters": {k: self._counters[k]
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].as_dict()
                           for k in sorted(self._histograms)},
        }

    def clear(self) -> None:
        """Drop every series (between experiments)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable registry state, preserving insertion order.

        Insertion order is part of the behaviour (snapshots sort, but
        iteration elsewhere may not), so keys are saved in their current
        dict order rather than sorted.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: stats.state_dict()
                           for name, stats in self._histograms.items()},
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Replace every series with the saved ones, in saved order."""
        self._counters = {str(k): float(v) for k, v
                          in state["counters"].items()}  # type: ignore[union-attr]
        self._gauges = {str(k): float(v) for k, v
                        in state["gauges"].items()}  # type: ignore[union-attr]
        self._histograms = {}
        for name, hist_state in state["histograms"].items():  # type: ignore[union-attr]
            stats = HistogramStats()
            stats.load_state_dict(hist_state)
            self._histograms[str(name)] = stats


def _stream_key(name: str) -> int:
    """Stable 64-bit key for a stream name (independent of hash seeds)."""
    return int.from_bytes(
        hashlib.sha256(name.encode("utf-8")).digest()[:8], "big")


class NodeRuntime:
    """The shared per-node context bundling clock, bus, RNG and metrics.

    Parameters
    ----------
    name:
        Node name; also used as the default platform name.
    clock:
        Shared simulation clock.  A rack passes one clock to every node
        runtime; a standalone node gets a fresh one.
    bus:
        Per-node event bus (fresh by default — nodes do not share buses).
    seed:
        Root entropy for this node's RNG streams.  Ignored when
        ``seed_sequence`` is given.
    seed_sequence:
        Explicit root :class:`numpy.random.SeedSequence`, e.g. one child
        of a fleet-level ``SeedSequence.spawn`` so every node in a rack
        gets an independent stream family from one experiment seed.
    metrics:
        Shared registry; fresh by default.
    """

    def __init__(self, name: str = "node0",
                 clock: Optional[SimClock] = None,
                 bus: Optional[EventBus] = None,
                 seed: int = 0,
                 seed_sequence: Optional[np.random.SeedSequence] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.name = name
        self.clock = clock if clock is not None else SimClock()
        self.bus = bus if bus is not None else EventBus()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.seed_sequence = (seed_sequence if seed_sequence is not None
                              else np.random.SeedSequence(seed))
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def now(self) -> float:
        """Current simulation time (convenience passthrough)."""
        return self.clock.now

    def stream_sequence(self, stream: str) -> np.random.SeedSequence:
        """The child ``SeedSequence`` backing one named stream.

        Children are derived the same way ``SeedSequence.spawn`` derives
        its own children — by extending ``spawn_key`` — but keyed by a
        stable hash of the stream *name* instead of a spawn counter, so
        stream identity does not depend on the order in which layers
        first ask for their stream.
        """
        return np.random.SeedSequence(
            entropy=self.seed_sequence.entropy,
            spawn_key=(*self.seed_sequence.spawn_key,
                       _stream_key(stream)),
        )

    def rng(self, stream: str) -> np.random.Generator:
        """The named RNG stream, created on first use and cached.

        Repeated calls with the same name return the *same* generator
        (state advances as the consumer draws); different names return
        statistically independent streams.
        """
        generator = self._streams.get(stream)
        if generator is None:
            generator = np.random.default_rng(
                self.stream_sequence(stream))
            self._streams[stream] = generator
        return generator

    def state_dict(self) -> Dict[str, object]:
        """Serializable runtime state: the named RNG stream generators.

        The clock, bus and metrics registry are shared objects persisted by
        their owners; what is unique to the runtime is which named streams
        exist and where each generator's bit stream currently stands.
        """
        return {
            "streams": {name: generator.bit_generator.state
                        for name, generator in self._streams.items()},
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore every saved RNG stream bit-exactly.

        Streams that did not exist yet on this (rebuilt) runtime are
        created through :meth:`rng` first, so consumers that lazily ask
        for them later receive the restored generator.
        """
        saved = state["streams"]
        for name, generator_state in saved.items():  # type: ignore[union-attr]
            self.rng(str(name)).bit_generator.state = generator_state

    def spawn_child(self, name: str) -> "NodeRuntime":
        """A child runtime sharing this runtime's clock.

        The child gets its own bus, metrics registry and an independent
        seed family (derived from the child name), which is what a rack
        builder needs for per-node runtimes on one shared clock.
        """
        return NodeRuntime(
            name=name, clock=self.clock,
            seed_sequence=self.stream_sequence(f"child.{name}"),
        )


def spawn_runtimes(n: int, seed: int = 0, clock: Optional[SimClock] = None,
                   name_prefix: str = "node") -> List[NodeRuntime]:
    """Per-node runtimes for a rack, on one shared clock.

    One root :class:`numpy.random.SeedSequence` is spawned into ``n``
    independent children (``SeedSequence.spawn``), so a single experiment
    seed reproducibly fans out into per-node stream families.
    """
    if n < 1:
        raise ConfigurationError("need at least one runtime")
    shared_clock = clock if clock is not None else SimClock()
    root = np.random.SeedSequence(seed)
    return [
        NodeRuntime(name=f"{name_prefix}{i}", clock=shared_clock,
                    seed_sequence=child)
        for i, child in enumerate(root.spawn(n))
    ]
