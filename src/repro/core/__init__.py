"""Core abstractions: operating points, events, simulation time, and the
cross-layer coordinator assembling the full UniServer node."""

from .clock import SimClock
from .coordinator import EnergyReport, UniServerNode
from .eop import (
    CharacterizedPoint,
    EOPTable,
    GuardBandBreakdown,
    NOMINAL_REFRESH_INTERVAL_S,
    OperatingPoint,
    dvfs_ladder,
    refresh_ladder,
    voltage_sweep,
)
from .events import (
    AnomalyEvent,
    ConfigChangeEvent,
    CorrectableErrorEvent,
    CrashEvent,
    DEFAULT_HISTORY_LIMIT,
    Event,
    EventBus,
    MarginUpdateEvent,
    SensorEvent,
    UncorrectableErrorEvent,
)
from .exceptions import (
    CheckpointError,
    ConfigurationError,
    HardwareFault,
    IsolationError,
    MachineCrash,
    MigrationError,
    OperatingPointError,
    PredictionError,
    SchedulingError,
    SilentDataCorruption,
    SLAViolation,
    StressTestError,
    UncorrectableError,
    UniServerError,
)
from .lifetime import (
    EpochReport,
    LifetimeResult,
    LifetimeSimulator,
    MONTH_S,
)

from .interfaces import (
    AccessDenied,
    GuestTelemetry,
    MonitoringInterface,
    NodeStatus,
    Scope,
)

from .runtime import (
    HistogramStats,
    MetricsRegistry,
    NodeRuntime,
    spawn_runtimes,
)

__all__ = [
    "AccessDenied", "GuestTelemetry", "MonitoringInterface", "NodeStatus", "Scope",
    "EpochReport", "LifetimeResult", "LifetimeSimulator", "MONTH_S",
    "SimClock",
    "EnergyReport", "UniServerNode",
    "CharacterizedPoint", "EOPTable", "GuardBandBreakdown",
    "NOMINAL_REFRESH_INTERVAL_S", "OperatingPoint", "dvfs_ladder",
    "refresh_ladder", "voltage_sweep",
    "HistogramStats", "MetricsRegistry", "NodeRuntime", "spawn_runtimes",
    "AnomalyEvent", "ConfigChangeEvent", "CorrectableErrorEvent",
    "CrashEvent", "DEFAULT_HISTORY_LIMIT", "Event", "EventBus",
    "MarginUpdateEvent", "SensorEvent", "UncorrectableErrorEvent",
    "CheckpointError", "ConfigurationError", "HardwareFault",
    "IsolationError", "MachineCrash", "MigrationError",
    "OperatingPointError", "PredictionError", "SchedulingError",
    "SilentDataCorruption", "SLAViolation", "StressTestError",
    "UncorrectableError", "UniServerError",
]
