"""Operating points and Extended Operating Point (EOP) tables.

The central abstraction of UniServer is the *operating point*: a
(voltage, frequency, refresh-interval) triple, abbreviated **V-F-R** in the
paper.  Conventional servers run a single conservative nominal point chosen
from worst-case guard-bands (paper Table 1); UniServer reveals per-component
*Extended Operating Points* that trade those guard-bands for measured,
component-specific margins.

This module provides:

* :class:`OperatingPoint` — an immutable V-F-R value object.
* :class:`GuardBandBreakdown` — the conservative margin decomposition of
  Table 1 (voltage droop ~20 %, Vmin ~15 %, core-to-core ~5 %).
* :class:`EOPTable` — the per-component table of characterised safe points
  produced by the StressLog daemon and consumed by the Hypervisor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .exceptions import OperatingPointError

#: Nominal DRAM refresh interval mandated by JEDEC for DDR3 (seconds).
NOMINAL_REFRESH_INTERVAL_S = 0.064

#: Physically plausible bounds used for validation.
_MIN_VOLTAGE_V = 0.3
_MAX_VOLTAGE_V = 2.0
_MIN_FREQUENCY_HZ = 1e6
_MAX_FREQUENCY_HZ = 10e9
_MIN_REFRESH_S = 1e-3
_MAX_REFRESH_S = 60.0


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """An immutable V-F-R operating point.

    Parameters
    ----------
    voltage_v:
        Supply voltage in volts.
    frequency_hz:
        Clock frequency in hertz.
    refresh_interval_s:
        DRAM refresh interval in seconds.  For CPU-only points this keeps
        the JEDEC nominal value of 64 ms.
    """

    voltage_v: float
    frequency_hz: float
    refresh_interval_s: float = NOMINAL_REFRESH_INTERVAL_S

    def __post_init__(self) -> None:
        if not _MIN_VOLTAGE_V <= self.voltage_v <= _MAX_VOLTAGE_V:
            raise OperatingPointError(
                f"voltage {self.voltage_v} V outside plausible range "
                f"[{_MIN_VOLTAGE_V}, {_MAX_VOLTAGE_V}] V"
            )
        if not _MIN_FREQUENCY_HZ <= self.frequency_hz <= _MAX_FREQUENCY_HZ:
            raise OperatingPointError(
                f"frequency {self.frequency_hz} Hz outside plausible range"
            )
        if not _MIN_REFRESH_S <= self.refresh_interval_s <= _MAX_REFRESH_S:
            raise OperatingPointError(
                f"refresh interval {self.refresh_interval_s} s outside "
                f"plausible range"
            )

    # -- derived quantities ------------------------------------------------

    def voltage_offset_from(self, nominal: "OperatingPoint") -> float:
        """Signed fractional voltage offset from ``nominal``.

        Negative values mean undervolting; e.g. −0.10 is the "−10 %" of the
        paper's Table 2 crash points.
        """
        return (self.voltage_v - nominal.voltage_v) / nominal.voltage_v

    def refresh_relaxation_factor(self) -> float:
        """How many times longer than the JEDEC nominal refresh this is."""
        return self.refresh_interval_s / NOMINAL_REFRESH_INTERVAL_S

    def with_voltage(self, voltage_v: float) -> "OperatingPoint":
        """A copy of this point at a different voltage."""
        return OperatingPoint(voltage_v, self.frequency_hz, self.refresh_interval_s)

    def with_frequency(self, frequency_hz: float) -> "OperatingPoint":
        """A copy of this point at a different frequency."""
        return OperatingPoint(self.voltage_v, frequency_hz, self.refresh_interval_s)

    def with_refresh(self, refresh_interval_s: float) -> "OperatingPoint":
        """A copy of this point at a different refresh interval."""
        return OperatingPoint(self.voltage_v, self.frequency_hz, refresh_interval_s)

    def scaled(self, voltage_factor: float = 1.0, frequency_factor: float = 1.0,
               refresh_factor: float = 1.0) -> "OperatingPoint":
        """A copy with each knob multiplied by a factor."""
        return OperatingPoint(
            self.voltage_v * voltage_factor,
            self.frequency_hz * frequency_factor,
            self.refresh_interval_s * refresh_factor,
        )

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (
            f"{self.voltage_v:.3f} V @ {self.frequency_hz / 1e9:.2f} GHz, "
            f"refresh {self.refresh_interval_s * 1e3:.0f} ms"
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for snapshots."""
        return {
            "voltage_v": self.voltage_v,
            "frequency_hz": self.frequency_hz,
            "refresh_interval_s": self.refresh_interval_s,
        }

    @staticmethod
    def from_dict(state: Dict[str, float]) -> "OperatingPoint":
        """Rebuild a point saved by :meth:`as_dict`."""
        return OperatingPoint(
            voltage_v=float(state["voltage_v"]),
            frequency_hz=float(state["frequency_hz"]),
            refresh_interval_s=float(state["refresh_interval_s"]),
        )


@dataclass(frozen=True)
class GuardBandBreakdown:
    """The conservative voltage guard-band decomposition of paper Table 1.

    Each field is the fractional voltage up-scaling the corresponding
    phenomenon forces on a conservatively designed part.
    """

    voltage_droop: float = 0.20
    vmin_reliability: float = 0.15
    core_to_core: float = 0.05

    def total(self) -> float:
        """Combined guard-band assuming additive worst-case stacking.

        Manufacturers stack worst-case margins additively, which is exactly
        the pessimism UniServer attacks.
        """
        return self.voltage_droop + self.vmin_reliability + self.core_to_core

    def rows(self) -> List[Tuple[str, float]]:
        """(reason, up-scaling) rows in the order of paper Table 1."""
        return [
            ("Voltage droops", self.voltage_droop),
            ("Vmin", self.vmin_reliability),
            ("Core-to-core variations", self.core_to_core),
        ]

    def guardbanded_voltage(self, true_vmin_v: float) -> float:
        """The nominal voltage a conservative vendor would ship.

        Given the true minimum operational voltage of a typical part, the
        vendor adds the stacked guard-bands on top.
        """
        return true_vmin_v * (1.0 + self.total())


@dataclass(frozen=True)
class CharacterizedPoint:
    """One characterised EOP with the evidence behind it.

    Produced by the StressLog daemon: the point itself, the measured
    failure probability under the worst stress virus, and the predicted
    power relative to nominal.
    """

    point: OperatingPoint
    failure_probability: float
    relative_power: float
    stress_workload: str = "virus"

    def is_safe(self, budget: float = 1e-4) -> bool:
        """Whether the measured failure probability fits the budget."""
        return self.failure_probability <= budget


class EOPTable:
    """Per-component table of characterised Extended Operating Points.

    Keys are component identifiers such as ``"core0"`` or ``"dimm1"``;
    values are lists of :class:`CharacterizedPoint` sorted by increasing
    relative power.  The Hypervisor queries this table when choosing a
    configuration for a given reliability budget.
    """

    def __init__(self) -> None:
        self._points: Dict[str, List[CharacterizedPoint]] = {}

    def __contains__(self, component: str) -> bool:
        return component in self._points

    def __len__(self) -> int:
        return len(self._points)

    def components(self) -> List[str]:
        """All component identifiers with at least one characterised point."""
        return sorted(self._points)

    def add(self, component: str, characterized: CharacterizedPoint) -> None:
        """Record a characterised point for ``component``."""
        points = self._points.setdefault(component, [])
        points.append(characterized)
        points.sort(key=lambda cp: cp.relative_power)

    def points_for(self, component: str) -> List[CharacterizedPoint]:
        """All characterised points for ``component`` (may be empty)."""
        return list(self._points.get(component, []))

    def best_point(self, component: str,
                   failure_budget: float = 1e-4) -> Optional[CharacterizedPoint]:
        """Lowest-power characterised point meeting the failure budget.

        Returns ``None`` when the component has no safe characterised point,
        in which case the caller should fall back to the nominal point.
        """
        for cp in self._points.get(component, []):
            if cp.is_safe(failure_budget):
                return cp
        return None

    def merge(self, other: "EOPTable") -> None:
        """Fold another table (e.g. a newer StressLog output) into this one."""
        for component in other.components():
            for cp in other.points_for(component):
                self.add(component, cp)

    def energy_saving_estimate(self, failure_budget: float = 1e-4) -> float:
        """Mean fractional power saving across characterised components.

        A component without a safe point contributes zero saving (it stays
        at nominal).
        """
        if not self._points:
            return 0.0
        savings = []
        for component in self._points:
            best = self.best_point(component, failure_budget)
            savings.append(0.0 if best is None else max(0.0, 1.0 - best.relative_power))
        return float(sum(savings) / len(savings))


def dvfs_ladder(nominal: OperatingPoint, steps: int = 8,
                min_voltage_fraction: float = 0.7,
                min_frequency_fraction: float = 0.5) -> List[OperatingPoint]:
    """A conventional DVFS ladder below a nominal point.

    Voltage and frequency are scaled together linearly from nominal down to
    the given fractions, producing the kind of P-state ladder a stock
    platform exposes.  UniServer's EOPs go *beyond* this ladder; benches use
    it as the conservative baseline.
    """
    if steps < 2:
        raise OperatingPointError("a DVFS ladder needs at least 2 steps")
    ladder = []
    for i in range(steps):
        t = i / (steps - 1)
        vf = 1.0 - t * (1.0 - min_voltage_fraction)
        ff = 1.0 - t * (1.0 - min_frequency_fraction)
        ladder.append(nominal.scaled(voltage_factor=vf, frequency_factor=ff))
    return ladder


def refresh_ladder(nominal: OperatingPoint,
                   factors: Iterable[float] = (1, 2, 4, 8, 16, 23.4, 46.9, 78.1),
                   ) -> List[OperatingPoint]:
    """Refresh-relaxation ladder used by the DRAM characterisation campaign.

    The default factors end at 78.1× ≈ 5 s, the most aggressive relaxation
    reported in the paper's Section 6.B.
    """
    return [nominal.with_refresh(NOMINAL_REFRESH_INTERVAL_S * f) for f in factors]


def voltage_sweep(nominal: OperatingPoint, max_offset: float = 0.25,
                  step_mv: float = 5.0) -> List[OperatingPoint]:
    """Descending voltage sweep below nominal in fixed millivolt steps.

    Mirrors the paper's CPU characterisation methodology: frequency pinned
    at maximum, voltage lowered step by step until the crash point.
    """
    if max_offset <= 0 or max_offset >= 1:
        raise OperatingPointError("max_offset must be in (0, 1)")
    points = []
    n_steps = int(math.floor(nominal.voltage_v * max_offset / (step_mv / 1e3)))
    for i in range(n_steps + 1):
        points.append(nominal.with_voltage(nominal.voltage_v - i * step_mv / 1e3))
    return points
