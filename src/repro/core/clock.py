"""Discrete-event simulation clock.

Everything in the simulated ecosystem — daemons sampling sensors, VMs
executing, refresh timers expiring — shares one time base.  The clock is a
minimal discrete-event scheduler: callbacks are scheduled at absolute times
and executed in order when the clock advances.

The design intentionally avoids wall-clock time (``time.time``) so that
simulations are deterministic and fast.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from .exceptions import ConfigurationError, PersistenceError

Callback = Callable[[], None]


def step_count(duration_s: float, dt_s: float,
               tolerance: float = 1e-9) -> int:
    """Whole steps of ``dt_s`` that fit in ``duration_s``.

    Plain ``int(duration_s / dt_s)`` loses a step whenever the quotient
    lands one float ulp below an integer (``0.3 / 0.1 -> 2``).  Snap to
    the nearest integer when within a relative ``tolerance`` of it;
    otherwise truncate (a genuinely partial trailing step is not run).
    """
    if dt_s <= 0:
        raise ConfigurationError("dt must be positive")
    if duration_s < 0:
        raise ConfigurationError("duration must be non-negative")
    ratio = duration_s / dt_s
    nearest = round(ratio)
    if abs(ratio - nearest) <= tolerance * max(1.0, abs(nearest)):
        return int(nearest)
    return int(ratio)


class SimClock:
    """A deterministic discrete-event simulation clock.

    Time is a float in seconds starting at 0.  Events are ``(time, seq,
    callback)`` tuples ordered by time then insertion order, so two events at
    the same instant run in the order they were scheduled.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callback]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule_at(self, when: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self._now:
            raise ConfigurationError(
                f"cannot schedule event in the past ({when} < {self._now})"
            )
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigurationError("delay must be non-negative")
        self.schedule_at(self._now + delay, callback)

    def schedule_every(self, interval: float, callback: Callback,
                       until: Optional[float] = None) -> None:
        """Schedule a periodic callback starting one interval from now.

        The period ends at ``until`` (absolute time) when given; otherwise it
        repeats for as long as the simulation is advanced.  Periodic daemons
        (HealthLog sampling, StressLog scheduling) use this.
        """
        if interval <= 0:
            raise ConfigurationError("interval must be positive")

        def tick() -> None:
            """Run the callback and reschedule the next period."""
            if until is not None and self._now > until:
                return
            callback()
            if until is None or self._now + interval <= until:
                self.schedule_after(interval, tick)

        self.schedule_after(interval, tick)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def advance_to(self, when: float) -> int:
        """Run all events up to and including time ``when``.

        Returns the number of callbacks executed.  The clock ends exactly at
        ``when`` even if no event fires there.
        """
        if when < self._now:
            raise ConfigurationError("cannot advance the clock backwards")
        executed = 0
        while self._queue and self._queue[0][0] <= when:
            event_time, _, callback = heapq.heappop(self._queue)
            self._now = event_time
            callback()
            executed += 1
        self._now = when
        return executed

    def advance_by(self, delta: float) -> int:
        """Run all events within the next ``delta`` seconds."""
        return self.advance_to(self._now + delta)

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable clock state: current time and pending event times.

        Callbacks are closures and cannot be serialized; a restore target
        must therefore be a freshly built twin of the saved simulation,
        holding the *same* pending callbacks in the same scheduling order.
        Only the event times (and the clock reading) are persisted.
        """
        return {
            "now": self._now,
            "pending": [t for t, _, _ in sorted(self._queue,
                                                key=lambda e: (e[0], e[1]))],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore clock time and re-time pending events.

        The queued callbacks of this (freshly rebuilt) clock are kept and
        re-scheduled positionally at the saved event times.  The number of
        pending events must match the snapshot — a mismatch means the
        restore target was not built from the same configuration.
        """
        pending = list(state["pending"])  # type: ignore[arg-type]
        if len(pending) != len(self._queue):
            raise PersistenceError(
                f"clock restore mismatch: snapshot has {len(pending)} "
                f"pending events, rebuilt clock has {len(self._queue)}")
        callbacks = [cb for _, _, cb in sorted(self._queue,
                                               key=lambda e: (e[0], e[1]))]
        self._now = float(state["now"])  # type: ignore[arg-type]
        self._queue = []
        self._counter = itertools.count()
        for when, callback in zip(pending, callbacks):
            heapq.heappush(self._queue,
                           (float(when), next(self._counter), callback))

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run queued events until the queue drains.

        ``max_events`` bounds runaway periodic schedules; exceeding it raises
        :class:`ConfigurationError` because an unbounded periodic callback in
        ``run_until_idle`` is always a caller bug.
        """
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise ConfigurationError(
                    f"run_until_idle exceeded {max_events} events; "
                    "did you schedule an unbounded periodic callback?"
                )
            event_time, _, callback = heapq.heappop(self._queue)
            self._now = event_time
            callback()
            executed += 1
        return executed
