"""Layered monitoring interfaces (paper innovation iv).

UniServer promises to "enable monitoring of the hardware status by all
layers of the system software by extending existing interfaces".  On a
real platform this is the EDAC/RAS/hwmon surface; here it is a typed
facade over one node's daemons with **scope-based access control**:

* ``HOST`` (hypervisor, daemons) — everything, raw;
* ``CLOUD`` (the resource manager) — node-level aggregates, no
  per-component raw sensors;
* ``GUEST`` (VMs) — coarse, quantised, delayed telemetry only, which is
  itself one of the security countermeasures (sensor side channels).

Every layer talks to the same node object through the scope it owns, so
the information-vector flow of Figure 2 has a single audited surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..daemons.healthlog import HealthLog
from ..daemons.infovector import InfoVector
from ..hardware.platform import ServerPlatform
from .exceptions import ConfigurationError, UniServerError


class Scope(Enum):
    """Who is asking."""

    HOST = "host"
    CLOUD = "cloud"
    GUEST = "guest"


class AccessDenied(UniServerError):
    """The requested view is not exposed to the caller's scope."""


@dataclass(frozen=True)
class NodeStatus:
    """Cloud-scope aggregate view of a node."""

    node: str
    correctable_errors: int
    uncorrectable_errors: int
    crashes: int
    mean_voltage_fraction: float
    worst_refresh_relaxation: float
    suspect_components: Tuple[str, ...]


@dataclass(frozen=True)
class GuestTelemetry:
    """Guest-scope telemetry: quantised and sanitised.

    Power is bucketed and temperature rounded, per the sensor-side-
    channel countermeasure; no per-component or per-tenant detail leaks.
    """

    node: str
    power_bucket_w: float
    temperature_band_c: float
    healthy: bool


class MonitoringInterface:
    """The node's single monitoring surface for all software layers."""

    #: Guest power readings snap to this bucket size (watts).
    GUEST_POWER_BUCKET_W = 10.0
    #: Guest temperature readings snap to this band (degrees C).
    GUEST_TEMPERATURE_BAND_C = 5.0
    #: EMA smoothing factor of the guest power view ("delayed" telemetry:
    #: fast co-tenant activity swings are smeared out before bucketing —
    #: the anti-side-channel half of the countermeasure).
    GUEST_POWER_EMA_ALPHA = 0.05

    def __init__(self, platform: ServerPlatform,
                 healthlog: HealthLog) -> None:
        self.platform = platform
        self.healthlog = healthlog
        self._audit: List[Tuple[float, Scope, str]] = []
        self._guest_power_ema: Optional[float] = None

    # -- audit ------------------------------------------------------------

    def _record(self, scope: Scope, what: str) -> None:
        self._audit.append((self.healthlog.clock.now, scope, what))

    @property
    def audit_log(self) -> List[Tuple[float, Scope, str]]:
        """(time, scope, query) rows of every access."""
        return list(self._audit)

    # -- host scope ----------------------------------------------------------

    def info_vector(self, scope: Scope) -> InfoVector:
        """The full HealthLog information vector (host only)."""
        if scope is not Scope.HOST:
            raise AccessDenied(
                f"info vectors are host-scope; {scope.value} denied"
            )
        self._record(scope, "info_vector")
        return self.healthlog.snapshot()

    def raw_sensor(self, scope: Scope, core_id: int) -> Dict[str, float]:
        """Raw per-core sensor readout (host only)."""
        if scope is not Scope.HOST:
            raise AccessDenied(
                f"raw sensors are host-scope; {scope.value} denied"
            )
        self._record(scope, f"raw_sensor core{core_id}")
        point = self.platform.core_point(core_id)
        reading = self.platform.chip.read_sensors(
            self.healthlog.clock.now, point)
        return {
            "voltage_v": reading.voltage_v,
            "temperature_c": reading.temperature_c,
            "power_w": reading.power_w,
            "frequency_hz": reading.frequency_hz,
        }

    # -- cloud scope ----------------------------------------------------------

    def node_status(self, scope: Scope) -> NodeStatus:
        """Node-level aggregates (host or cloud)."""
        if scope is Scope.GUEST:
            raise AccessDenied("node status is not exposed to guests")
        self._record(scope, "node_status")
        snapshot = self.healthlog.snapshot()
        nominal = self.platform.chip.spec.nominal
        fractions = [
            self.platform.core_point(c.core_id).voltage_v
            / nominal.voltage_v
            for c in self.platform.chip.cores
        ]
        relaxations = [
            d.refresh_interval_s / 0.064
            for d in self.platform.memory.domains()
        ]
        return NodeStatus(
            node=self.platform.name,
            correctable_errors=snapshot.correctable_errors,
            uncorrectable_errors=snapshot.uncorrectable_errors,
            crashes=snapshot.crashes,
            mean_voltage_fraction=sum(fractions) / len(fractions),
            worst_refresh_relaxation=max(relaxations),
            suspect_components=snapshot.suspect_components,
        )

    # -- guest scope -------------------------------------------------------------

    def guest_telemetry(self, scope: Scope,
                        activity: float = 0.5) -> GuestTelemetry:
        """Quantised, delayed node telemetry (any scope may call).

        ``activity`` is the node's current aggregate load (the hypervisor
        supplies it on real calls; the default models a half-loaded
        node).  The power view is EMA-smoothed before bucketing, so fast
        co-tenant activity swings — the side-channel signal — are smeared
        below the bucket resolution.
        """
        self._record(scope, "guest_telemetry")
        power = self.platform.total_power_w(activity=activity)
        alpha = self.GUEST_POWER_EMA_ALPHA
        if self._guest_power_ema is None:
            self._guest_power_ema = power
        else:
            self._guest_power_ema += alpha * (power - self._guest_power_ema)
        bucket = self.GUEST_POWER_BUCKET_W
        band = self.GUEST_TEMPERATURE_BAND_C
        temperature = self.platform.chip.thermal.temperature_c
        return GuestTelemetry(
            node=self.platform.name,
            power_bucket_w=math.floor(
                self._guest_power_ema / bucket) * bucket,
            temperature_band_c=math.floor(temperature / band) * band,
            healthy=self.platform.faults.count() == 0,
        )

    # -- capability discovery ------------------------------------------------------

    def capabilities(self, scope: Scope) -> List[str]:
        """Which queries the caller's scope may issue."""
        if scope is Scope.HOST:
            return ["info_vector", "raw_sensor", "node_status",
                    "guest_telemetry"]
        if scope is Scope.CLOUD:
            return ["node_status", "guest_telemetry"]
        return ["guest_telemetry"]
