"""Exception hierarchy for the UniServer reproduction.

All library-specific errors derive from :class:`UniServerError` so callers
can catch a single base class.  Hardware-level failures that the *simulated*
machine experiences (crashes, uncorrectable errors) are modelled as
exceptions too, because they abort the simulated execution in the same way a
real crash aborts a benchmark run.
"""

from __future__ import annotations


class UniServerError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(UniServerError):
    """An invalid configuration value or combination was supplied."""


class OperatingPointError(ConfigurationError):
    """An operating point lies outside the physically meaningful range."""


class HardwareFault(UniServerError):
    """Base class for faults experienced by the simulated hardware."""

    def __init__(self, message: str, component: str = "unknown"):
        super().__init__(message)
        self.component = component


class MachineCrash(HardwareFault):
    """The simulated machine crashed (e.g. undervolted below its Vmin).

    Mirrors the "system crash" outcome observed in the paper's Table 2
    characterisation campaign: a run aborted by a non-responsive machine.
    """


class UncorrectableError(HardwareFault):
    """An uncorrectable (detected, unrecoverable) hardware error occurred."""


class SilentDataCorruption(HardwareFault):
    """A silent data corruption escaped all detection mechanisms.

    SDCs are the fault class injected into hypervisor objects in the
    paper's Figure 4 campaign.
    """


class IsolationError(UniServerError):
    """A resource could not be isolated (e.g. the last remaining core)."""


class SchedulingError(UniServerError):
    """The resource manager could not place a VM."""


class SLAViolation(UniServerError):
    """A service-level agreement was violated."""

    def __init__(self, message: str, vm_name: str = "", metric: str = ""):
        super().__init__(message)
        self.vm_name = vm_name
        self.metric = metric


class MigrationError(UniServerError):
    """A VM migration failed or was rejected."""


class CheckpointError(UniServerError):
    """A checkpoint could not be created or restored."""


class PredictionError(UniServerError):
    """The failure predictor was used before being trained, or misused."""


class StressTestError(UniServerError):
    """A stress-test campaign was misconfigured or aborted."""


class PersistenceError(UniServerError):
    """A snapshot, journal or state restore operation failed."""


class SweepError(UniServerError):
    """A sweep worker failed permanently after its bounded retries."""


class FleetWorkerError(UniServerError):
    """A fleet shard worker died, wedged, or broke protocol.

    Carries enough context for the supervisor (and for error reports
    when supervision is exhausted): which worker failed, which shards
    it owned, and the last step it acknowledged — ``None`` when it
    never acked at all.
    """

    def __init__(self, message: str, worker: int = -1,
                 shards=(), last_acked_step=None):
        super().__init__(message)
        self.worker = worker
        self.shards = tuple(shards)
        self.last_acked_step = last_acked_step


class InvariantViolation(PersistenceError):
    """A cross-layer state invariant did not hold (strict auditor mode)."""
