"""Event bus connecting hardware, daemons and system software.

The paper's HealthLog monitor offers two service types: *event-driven*
(errors and anomalies pushed up as they occur) and *on-demand* (higher
layers pull specific information).  The event-driven half rides on this
bus: hardware components publish typed events, daemons subscribe.

Events are plain frozen dataclasses; subscribers are callables keyed by
event type.  Publication is synchronous and ordered, which keeps the
simulation deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type, TypeVar


@dataclass(frozen=True)
class Event:
    """Base class for all bus events."""

    timestamp: float
    source: str


@dataclass(frozen=True)
class CorrectableErrorEvent(Event):
    """A detected-and-corrected hardware error (e.g. cache SECDED fix)."""

    component: str = ""
    detail: str = ""


@dataclass(frozen=True)
class UncorrectableErrorEvent(Event):
    """A detected but uncorrectable hardware error."""

    component: str = ""
    detail: str = ""


@dataclass(frozen=True)
class CrashEvent(Event):
    """A component (or the machine) crashed."""

    component: str = ""
    operating_point: str = ""


@dataclass(frozen=True)
class SensorEvent(Event):
    """A periodic sensor reading (temperature, voltage, power)."""

    sensor: str = ""
    value: float = 0.0
    unit: str = ""


@dataclass(frozen=True)
class ConfigChangeEvent(Event):
    """The system configuration (an operating point) changed."""

    component: str = ""
    old_point: str = ""
    new_point: str = ""


@dataclass(frozen=True)
class AnomalyEvent(Event):
    """A daemon flagged anomalous behaviour (triggers StressLog re-test).

    ``component`` names the offending component when the anomaly is
    attributable (the EOP governor keys demotions on it); empty for
    system-wide anomalies.
    """

    description: str = ""
    severity: str = "warning"
    component: str = ""


@dataclass(frozen=True)
class MarginUpdateEvent(Event):
    """StressLog published new safe V-F-R margins."""

    component: str = ""
    detail: str = ""


@dataclass(frozen=True)
class EOPTransitionEvent(Event):
    """The EOP governor moved a component between lifecycle states."""

    component: str = ""
    from_state: str = ""
    to_state: str = ""
    reason: str = ""


E = TypeVar("E", bound=Event)
Handler = Callable[[Event], None]

#: Default retention bound of :meth:`EventBus.keep_history`.  Long rack
#: simulations publish millions of events; an unbounded history is a
#: memory leak, so callers who really want everything must say so with
#: ``unlimited=True``.
DEFAULT_HISTORY_LIMIT = 10_000


class EventBus:
    """Synchronous publish/subscribe bus with type-based routing.

    Subscribing to a base event type receives all subclasses, so a
    HealthLog subscribing to :class:`Event` sees everything while the
    Hypervisor may subscribe only to :class:`UncorrectableErrorEvent`.
    """

    def __init__(self) -> None:
        self._subscribers: Dict[Type[Event], List[Handler]] = {}
        self._history: List[Event] = []
        self._history_enabled = False
        self._history_limit: Optional[int] = None

    def keep_history(self, limit: Optional[int] = None, *,
                     unlimited: bool = False) -> None:
        """Retain published events for later inspection.

        ``limit`` bounds the retained history (oldest events trimmed
        first) and defaults to :data:`DEFAULT_HISTORY_LIMIT`.  Unbounded
        retention must be requested explicitly with ``unlimited=True``;
        passing both a limit and ``unlimited`` is a contradiction and
        raises.
        """
        if unlimited and limit is not None:
            raise ValueError("pass either a limit or unlimited=True, "
                             "not both")
        if limit is not None and limit < 1:
            raise ValueError("history limit must be >= 1")
        self._history_enabled = True
        if unlimited:
            self._history_limit = None
        else:
            self._history_limit = (limit if limit is not None
                                   else DEFAULT_HISTORY_LIMIT)

    @property
    def history(self) -> List[Event]:
        """Events retained since :meth:`keep_history` was enabled."""
        return list(self._history)

    def subscribe(self, event_type: Type[E],
                  handler: Callable[[E], None]) -> Callable[[], None]:
        """Register ``handler`` for ``event_type`` and its subclasses.

        Returns an unsubscribe callable.
        """
        handlers = self._subscribers.setdefault(event_type, [])
        handlers.append(handler)  # type: ignore[arg-type]

        def unsubscribe() -> None:
            """Remove this handler from the bus."""
            try:
                handlers.remove(handler)  # type: ignore[arg-type]
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: Event) -> int:
        """Deliver ``event`` to every matching subscriber.

        Returns the number of handlers invoked.  Handlers run synchronously
        in subscription order; a handler raising propagates to the
        publisher, which models a fault taking down its observer chain.
        """
        if self._history_enabled:
            self._history.append(event)
            if (self._history_limit is not None
                    and len(self._history) > self._history_limit):
                del self._history[: len(self._history) - self._history_limit]
        delivered = 0
        for event_type, handlers in list(self._subscribers.items()):
            if isinstance(event, event_type):
                for handler in list(handlers):
                    handler(event)
                    delivered += 1
        return delivered

    def clear(self) -> None:
        """Drop all subscribers, history and retention (between experiments)."""
        self._subscribers.clear()
        self._history.clear()
        self._history_enabled = False
        self._history_limit = None
