"""The crash-safe campaign runtime: build, snapshot, kill, resume.

A :class:`PersistentCampaign` wraps one chaos campaign (the same world
:func:`~repro.resilience.campaign.run_chaos_campaign` builds) behind an
explicit step loop with durable snapshots and a write-ahead journal.
The determinism contract of the simulator does the heavy lifting:

* construction is a pure function of :class:`CampaignConfig` (the rack,
  the arrival trace, the fault plan all derive from the seed), so a
  resume **rebuilds** the world from config and then **overlays** the
  runtime-mutated state from the newest valid snapshot;
* steps are deterministic, so the journal only needs to record step
  *intents* and post-step *digests* — replay is re-execution, with the
  digests proving bit-level agreement with the crashed process;
* a step whose intent was journalled but never committed (the crash
  step) is simply executed again.

The acceptance bar is the kill/resume equivalence harness
(``benchmarks/bench_resume_equivalence.py``): SIGKILL the campaign at a
random step, resume it, and the final availability, MTTR and metrics
snapshot must be bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional

from ..core.clock import SimClock
from ..core.exceptions import ConfigurationError, PersistenceError
from ..hypervisor.vm import VirtualMachine
from ..resilience.campaign import CampaignResult
from ..resilience.chaos import ChaosEngine, FaultPlan
from ..resilience.policies import DegradationConfig
from ..workloads.traces import TraceConfig, TraceGenerator
from .auditor import StateAuditor
from .snapshot import Journal, SnapshotStore, payload_checksum

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything needed to rebuild a campaign world from scratch.

    The config is JSON-serializable and rides inside every snapshot, so
    a resume needs nothing but the snapshot directory.  ``plan`` holds
    the serialized :class:`~repro.resilience.chaos.FaultPlan`;
    :meth:`finalized` draws it from the seed when absent, so the plan
    is fixed once and survives restarts verbatim.
    """

    n_nodes: int = 4
    duration_s: float = 3600.0
    seed: int = 0
    policies: str = "on"
    rate_per_hour: float = 6.0
    intensity: float = 0.6
    base_rate_per_hour: float = 12.0
    step_s: float = 60.0
    label: str = "policies-on"
    plan: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError(
                "a chaos campaign needs at least two nodes to fail over to")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.step_s <= 0:
            raise ConfigurationError("step must be positive")
        if self.policies not in ("on", "off"):
            raise ConfigurationError("policies must be 'on' or 'off'")

    def finalized(self) -> "CampaignConfig":
        """This config with the fault plan drawn and pinned."""
        if self.plan is not None:
            return self
        plan = FaultPlan.random(
            [f"node{i}" for i in range(self.n_nodes)], self.duration_s,
            rate_per_hour=self.rate_per_hour, seed=self.seed,
            intensity=self.intensity)
        return replace(self, plan=plan.as_dict())

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for snapshot envelopes."""
        return asdict(self)

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "CampaignConfig":
        """Rebuild a config saved by :meth:`as_dict`."""
        return CampaignConfig(**state)  # type: ignore[arg-type]


class PersistentCampaign:
    """One chaos campaign with durable snapshots and journalled steps."""

    def __init__(self, config: CampaignConfig,
                 snapshot_dir=None,
                 snapshot_every_s: float = 600.0,
                 keep: int = 3,
                 auditor: Optional[StateAuditor] = None) -> None:
        if snapshot_every_s <= 0:
            raise ConfigurationError("snapshot period must be positive")
        self.config = config.finalized()
        self.auditor = auditor
        self.snapshot_every_s = snapshot_every_s
        self._keep = keep
        self.step_index = 0
        self._journal: Optional[Journal] = None
        self._last_snapshot_now = 0.0
        self._build()
        self.store: Optional[SnapshotStore] = None
        if snapshot_dir is not None:
            self.attach_store(snapshot_dir)

    # -- world construction ---------------------------------------------------

    def _build(self) -> None:
        """Deterministically rebuild the campaign world from config."""
        from ..cloudmgr.cloud import CloudController
        from ..cloudmgr.node import build_rack
        from ..cloudmgr.simulation import TraceDrivenSimulation

        config = self.config
        self.plan = FaultPlan.from_dict(config.plan)  # type: ignore[arg-type]
        self.clock = SimClock()
        nodes = build_rack(config.n_nodes, clock=self.clock,
                           seed=config.seed)
        self.chaos = ChaosEngine(self.plan)
        degradation = (DegradationConfig.on() if config.policies == "on"
                       else DegradationConfig.off())
        self.cloud = CloudController(
            self.clock, nodes, degradation=degradation,
            chaos=self.chaos, control_seed=config.seed)
        generator = TraceGenerator(
            TraceConfig(base_rate_per_hour=config.base_rate_per_hour),
            seed=config.seed)
        self.events = generator.generate(config.duration_s)
        self.simulation = TraceDrivenSimulation(
            self.cloud, self.events, step_s=config.step_s)
        self._events_by_name = {e.vm_name: e for e in self.events}

    def _vm_factory(self, name: str) -> VirtualMachine:
        """Rebuild the named VM shell exactly as admission created it."""
        from ..cloudmgr.simulation import vm_from_event

        try:
            event = self._events_by_name[name]
        except KeyError:
            raise PersistenceError(
                f"snapshot references VM {name!r} absent from the "
                "regenerated arrival trace") from None
        return vm_from_event(event)

    # -- state ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The campaign's full mutable state across every layer."""
        return {
            "clock": self.clock.state_dict(),
            "cloud": self.cloud.state_dict(),
            "simulation": self.simulation.state_dict(),
            "step_index": self.step_index,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Overlay saved runtime state onto the freshly-built world."""
        self.clock.load_state_dict(state["clock"])  # type: ignore[arg-type]
        self.cloud.load_state_dict(
            state["cloud"], self._vm_factory)  # type: ignore[arg-type]
        self.simulation.load_state_dict(
            state["simulation"])  # type: ignore[arg-type]
        self.step_index = int(state["step_index"])  # type: ignore[arg-type]

    def _digest(self) -> str:
        """Cheap post-step world digest for journal commit records."""
        return payload_checksum({
            "now": self.clock.now,
            "sim_now": self.simulation.now,
            "launched": self.cloud.stats.launched,
            "completed": self.cloud.stats.completed,
            "node_crashes": self.cloud.stats.node_crashes,
            "heartbeats": self.cloud.stats.heartbeats_received,
            "energy_j": self.cloud.stats.energy_j,
            "admitted": self.simulation.stats.admitted,
            "violations": self.cloud.tracker.violations_total(),
        })

    # -- snapshots ---------------------------------------------------------------

    def attach_store(self, snapshot_dir) -> None:
        """Start persisting into ``snapshot_dir`` (initial snapshot now)."""
        self.store = SnapshotStore(snapshot_dir, keep=self._keep)
        self.take_snapshot()

    def take_snapshot(self) -> None:
        """Audit, write one snapshot generation, rotate the journal."""
        if self.store is None:
            raise PersistenceError("no snapshot store attached")
        if self.auditor is not None:
            self.auditor.audit(self.cloud,
                               context=f"snapshot step {self.step_index}")
        payload = {"config": self.config.as_dict(),
                   "state": self.state_dict()}
        self.store.save(self.step_index, payload)
        if self._journal is not None:
            self._journal.close()
        self._journal = Journal(self.store.journal_path(self.step_index))
        self._last_snapshot_now = self.simulation.now

    # -- execution ----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the campaign has consumed its whole trace window."""
        return self.simulation.now >= self.config.duration_s

    def step(self) -> None:
        """One journalled campaign step, snapshotting on schedule."""
        if self._journal is not None:
            self._journal.append({"type": "intent",
                                  "step": self.step_index})
        self.simulation.step_once()
        self.step_index += 1
        if self._journal is not None:
            self._journal.append({"type": "commit",
                                  "step": self.step_index - 1,
                                  "digest": self._digest()})
        if (self.store is not None and not self.finished
                and self.simulation.now - self._last_snapshot_now
                >= self.snapshot_every_s):
            self.take_snapshot()

    def run(self) -> CampaignResult:
        """Run (or finish) the campaign and reduce it to its headline
        numbers; writes a final snapshot when a store is attached."""
        while not self.finished:
            self.step()
        if self.auditor is not None:
            self.auditor.audit(self.cloud, context="campaign end")
        if self.store is not None:
            self.take_snapshot()
        return self.result()

    def result(self) -> CampaignResult:
        """The same reduction :func:`run_chaos_campaign` performs."""
        from ..cloudmgr.simulation import RackExperiment

        config = self.config
        cloud = self.cloud
        experiment = RackExperiment(cloud=cloud, stats=self.simulation.stats)
        return CampaignResult(
            label=config.label, n_nodes=config.n_nodes,
            duration_s=config.duration_s, seed=config.seed,
            plan_faults=len(self.plan),
            fleet_availability=cloud.fleet_availability(),
            mttr_s=cloud.mttr_s(),
            sla_violations=cloud.tracker.violations_total(),
            evacuation_success_rate=cloud.migrations.success_rate(),
            node_crashes=cloud.stats.node_crashes,
            recoveries=cloud.stats.recoveries,
            failovers=cloud.stats.failovers,
            breaker_trips=cloud.stats.breaker_trips,
            flaps=cloud.stats.flaps,
            heartbeats_missed=cloud.stats.heartbeats_missed,
            admitted=self.simulation.stats.admitted,
            rejected=self.simulation.stats.rejected,
            completed=cloud.stats.completed,
            injections=dict(self.chaos.injections),
            experiment=experiment,
        )

    # -- resume ---------------------------------------------------------------------

    @classmethod
    def resume(cls, snapshot_dir,
               snapshot_every_s: float = 600.0,
               keep: int = 3,
               auditor: Optional[StateAuditor] = None,
               ) -> "PersistentCampaign":
        """Resume from the newest valid snapshot plus journal replay.

        Protocol: load the newest generation that passes its checksum
        (falling back on damage), rebuild the world from the embedded
        config, overlay the snapshot state, then re-execute every
        journalled committed step — verifying each post-step digest
        against the journal, which proves the resumed world is
        bit-identical to the one the crashed process lost.  A trailing
        uncommitted intent (the crash step) is left for the normal run
        loop to execute.
        """
        store = SnapshotStore(snapshot_dir, keep=keep)
        loaded = store.load_newest()
        if loaded is None:
            raise PersistenceError(
                f"no valid snapshot generation in {snapshot_dir}")
        generation, payload = loaded
        config = CampaignConfig.from_dict(payload["config"])  # type: ignore[arg-type]
        campaign = cls(config, snapshot_dir=None,
                       snapshot_every_s=snapshot_every_s, keep=keep,
                       auditor=auditor)
        campaign.load_state_dict(payload["state"])  # type: ignore[arg-type]
        if auditor is not None:
            auditor.reset_monotonic()
            auditor.audit(campaign.cloud,
                          context=f"restore generation {generation}")
        campaign._replay_journal(store.journal_path(generation))
        campaign.store = store
        campaign.take_snapshot()
        return campaign

    def _replay_journal(self, journal_path) -> None:
        """Re-execute the committed steps of one generation's journal."""
        commits = [r for r in Journal.read(journal_path)
                   if r.get("type") == "commit"
                   and int(r.get("step", -1)) >= self.step_index]
        commits.sort(key=lambda r: int(r["step"]))
        for record in commits:
            step = int(record["step"])
            if step != self.step_index:
                raise PersistenceError(
                    f"journal replay out of order: expected step "
                    f"{self.step_index}, journal has {step}")
            self.simulation.step_once()
            self.step_index += 1
            digest = self._digest()
            if digest != record.get("digest"):
                raise PersistenceError(
                    f"journal replay diverged at step {step}: the "
                    "re-executed world does not match the journalled "
                    "digest")
        if commits:
            logger.info("replayed %d journalled step(s) after restore",
                        len(commits))


def run_persistent_campaign(config: CampaignConfig,
                            snapshot_dir=None,
                            snapshot_every_s: float = 600.0,
                            auditor: Optional[StateAuditor] = None,
                            resume: bool = False) -> CampaignResult:
    """Convenience wrapper: fresh run or resume, to completion."""
    if resume:
        if snapshot_dir is None:
            raise ConfigurationError("resume needs a snapshot directory")
        campaign = PersistentCampaign.resume(
            snapshot_dir, snapshot_every_s=snapshot_every_s,
            auditor=auditor)
    else:
        campaign = PersistentCampaign(
            config, snapshot_dir=snapshot_dir,
            snapshot_every_s=snapshot_every_s, auditor=auditor)
    return campaign.run()
