"""Durable snapshots and the write-ahead step journal.

The crash-safe campaign runtime persists two artifacts:

* **Snapshots** — the full ``state_dict`` of every stateful layer,
  wrapped in a checksummed envelope and written with the classical
  atomic-rename protocol (write to a temp file, ``fsync``, then
  ``os.replace``), so a crash mid-write can never leave a half-written
  snapshot masquerading as a good one.  The store keeps the last
  ``keep`` generations; a reader falls back a generation when the
  newest fails its checksum.

* **A write-ahead journal** — one append-only JSONL file per snapshot
  generation.  Before each campaign step executes, its *intent* is
  journalled; after it commits, a *commit* record carries a digest of
  the post-step world.  Because the simulator is deterministic, resume
  is snapshot + re-execution: the digests let the replay prove it is
  re-deriving the exact world the crashed process saw, and a trailing
  intent with no commit (the crash step) is simply re-run.

Every journal line carries its own checksum so a torn final write —
the expected result of a SIGKILL mid-append — truncates cleanly
instead of poisoning the replay.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ConfigurationError, PersistenceError

logger = logging.getLogger(__name__)

#: Bump when the snapshot envelope layout changes incompatibly.
SNAPSHOT_VERSION = 1

_SNAPSHOT_PREFIX = "snapshot-"
_JOURNAL_PREFIX = "journal-"


def _coerce(value):
    """JSON fallback for numpy scalars (``np.int64`` is not ``int``)."""
    item = getattr(value, "item", None)
    if item is not None:
        return item()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def canonical_json(payload: object) -> str:
    """Key-sorted, whitespace-free JSON — the checksum input form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_coerce)


def payload_checksum(payload: object) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def shard_entries(shards) -> List[Dict[str, object]]:
    """Wrap per-shard states in individually checksummed entries.

    ``shards`` is an iterable of ``(lo, hi, state)`` node-range pieces.
    Each entry carries its own digest so a damaged shard inside an
    otherwise-intact snapshot is detected (and named) at resume time —
    the per-shard granularity the supervised fleet executor rebuilds
    crashed workers from.
    """
    return [{"lo": int(lo), "hi": int(hi), "state": state,
             "sha256": payload_checksum(state)}
            for lo, hi, state in shards]


def verify_shard_entries(entries) -> List[Tuple[int, int, Dict[str, object]]]:
    """Checksum-verify entries written by :func:`shard_entries`.

    Returns the ``(lo, hi, state)`` pieces; raises
    :class:`PersistenceError` naming the first damaged shard.
    """
    shards: List[Tuple[int, int, Dict[str, object]]] = []
    for entry in entries:
        lo, hi = int(entry["lo"]), int(entry["hi"])
        state = entry["state"]
        if entry.get("sha256") != payload_checksum(state):
            raise PersistenceError(
                f"shard [{lo}, {hi}) failed its checksum")
        shards.append((lo, hi, state))
    return shards


class SnapshotStore:
    """Versioned, checksummed, atomically-written snapshot directory."""

    def __init__(self, directory, keep: int = 3) -> None:
        if keep < 1:
            raise ConfigurationError("must keep at least one generation")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    # -- paths ---------------------------------------------------------------

    def snapshot_path(self, step: int) -> Path:
        """Snapshot file for the generation starting at ``step``."""
        return self.directory / f"{_SNAPSHOT_PREFIX}{step:08d}.json"

    def journal_path(self, step: int) -> Path:
        """Journal file for the generation starting at ``step``."""
        return self.directory / f"{_JOURNAL_PREFIX}{step:08d}.jsonl"

    def generations(self) -> List[int]:
        """Steps of all on-disk snapshot generations, oldest first."""
        steps = []
        for path in self.directory.glob(f"{_SNAPSHOT_PREFIX}*.json"):
            stem = path.name[len(_SNAPSHOT_PREFIX):-len(".json")]
            try:
                steps.append(int(stem))
            except ValueError:
                continue
        return sorted(steps)

    # -- writing -------------------------------------------------------------

    def save(self, step: int, payload: Dict[str, object]) -> Path:
        """Atomically write one snapshot generation and prune old ones."""
        body = {"version": SNAPSHOT_VERSION, "step": step,
                "payload": payload}
        envelope = {"checksum": payload_checksum(body), "body": body}
        path = self.snapshot_path(step)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, default=_coerce)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._prune(survivor=step)
        return path

    def _prune(self, survivor: int) -> None:
        """Keep the newest ``keep`` generations (and their journals)."""
        steps = [s for s in self.generations() if s != survivor]
        excess = len(steps) + 1 - self.keep
        for step in steps[:max(0, excess)]:
            self.snapshot_path(step).unlink(missing_ok=True)
            self.journal_path(step).unlink(missing_ok=True)

    # -- reading -------------------------------------------------------------

    def load_generation(self, step: int) -> Dict[str, object]:
        """Load and checksum-verify one generation; raises on damage."""
        path = self.snapshot_path(step)
        try:
            with open(path, encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError) as exc:
            # ValueError covers both malformed JSON and bit-flips that
            # break the UTF-8 decoding itself.
            raise PersistenceError(
                f"snapshot {path.name} is unreadable: {exc}") from exc
        body = envelope.get("body")
        if body is None or envelope.get("checksum") != payload_checksum(body):
            raise PersistenceError(
                f"snapshot {path.name} failed its checksum")
        if body.get("version") != SNAPSHOT_VERSION:
            raise PersistenceError(
                f"snapshot {path.name} has version {body.get('version')}, "
                f"expected {SNAPSHOT_VERSION}")
        return body["payload"]

    def load_newest(self) -> Optional[Tuple[int, Dict[str, object]]]:
        """The newest generation that verifies, falling back on damage.

        A corrupted or truncated newest snapshot is logged and skipped —
        crash-safety means degrading to the previous generation, not
        crashing the resume.
        """
        for step in reversed(self.generations()):
            try:
                return step, self.load_generation(step)
            except PersistenceError as exc:
                logger.warning(
                    "snapshot generation %d is damaged (%s); "
                    "falling back to the previous generation", step, exc)
        return None


class Journal:
    """Append-only write-ahead journal with per-line checksums."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record (checksum + flush + fsync)."""
        line = canonical_json(record)
        checksum = hashlib.sha256(line.encode("utf-8")).hexdigest()[:16]
        self._handle.write(f"{checksum} {line}\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    @staticmethod
    def read(path) -> List[Dict[str, object]]:
        """All intact records; truncates at the first damaged line.

        A torn final line is the normal signature of a crash mid-append
        and is dropped with a warning, not an error.
        """
        path = Path(path)
        if not path.exists():
            return []
        records: List[Dict[str, object]] = []
        with open(path, encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                checksum, _, line = raw.partition(" ")
                digest = hashlib.sha256(
                    line.encode("utf-8")).hexdigest()[:16]
                if checksum != digest:
                    logger.warning(
                        "journal %s: line %d failed its checksum "
                        "(torn write); truncating replay there",
                        path.name, lineno)
                    break
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    logger.warning(
                        "journal %s: line %d is not valid JSON; "
                        "truncating replay there", path.name, lineno)
                    break
        return records
