"""Crash-safe execution substrate for rack/chaos campaigns.

Durable checksummed snapshots (:class:`SnapshotStore`), a write-ahead
step journal (:class:`Journal`), cross-layer invariant auditing
(:class:`StateAuditor`) and the resumable campaign runtime
(:class:`PersistentCampaign`).  See ``docs/persistence.md``.
"""

from .auditor import StateAuditor
from .campaign import (
    CampaignConfig,
    PersistentCampaign,
    run_persistent_campaign,
)
from .snapshot import (
    SNAPSHOT_VERSION,
    Journal,
    SnapshotStore,
    canonical_json,
    payload_checksum,
    shard_entries,
    verify_shard_entries,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "CampaignConfig",
    "Journal",
    "PersistentCampaign",
    "SnapshotStore",
    "StateAuditor",
    "canonical_json",
    "payload_checksum",
    "run_persistent_campaign",
    "shard_entries",
    "verify_shard_entries",
]
