"""Cross-layer state-invariant auditing.

A snapshot of a lying world is worse than no snapshot: resume would
faithfully reproduce the corruption.  The :class:`StateAuditor` checks
the invariants that tie the layers together — VM conservation, capacity
accounting, monotonic time and energy, breaker/probation consistency,
non-negative SLA clocks — at every snapshot and again after a restore.

Two modes:

* **strict** — any violation raises
  :class:`~repro.core.exceptions.InvariantViolation`; the regression
  tests run small campaigns this way and require zero violations;
* **tolerant** — violations are logged and counted into the auditor's
  *own* :class:`~repro.core.runtime.MetricsRegistry` (never the
  experiment's registries, which the kill/resume equivalence harness
  compares bit-for-bit).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, List, Optional

from ..core.exceptions import InvariantViolation
from ..core.runtime import MetricsRegistry
from ..resilience.health import NodeStatus

if TYPE_CHECKING:
    from ..cloudmgr.cloud import CloudController

logger = logging.getLogger(__name__)


class StateAuditor:
    """Checks cross-layer invariants of a rack under a controller."""

    def __init__(self, strict: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.strict = strict
        #: Violation counters live in a registry of their own so the
        #: audit never perturbs the experiment's metrics snapshot.
        self.metrics = metrics or MetricsRegistry()
        self.violations: List[str] = []
        self._last_now: Optional[float] = None
        self._last_energy: Optional[float] = None

    @property
    def violation_count(self) -> int:
        """Total violations recorded so far."""
        return len(self.violations)

    def reset_monotonic(self) -> None:
        """Forget the monotonicity watermarks (e.g. for a new world)."""
        self._last_now = None
        self._last_energy = None

    # -- the invariant battery -----------------------------------------------

    def _check_vm_conservation(self, cloud: "CloudController",
                               problems: List[str]) -> None:
        """Every VM resides on exactly one hypervisor, where the
        controller's home table says it does."""
        residents = {}
        for name, node in cloud.nodes.items():
            for vm in node.hypervisor.vms:
                if vm.name in residents:
                    problems.append(
                        f"VM {vm.name!r} is resident on both "
                        f"{residents[vm.name]!r} and {name!r}")
                else:
                    residents[vm.name] = name
        for vm_name, home in cloud._vm_homes.items():
            actual = residents.get(vm_name)
            if actual is not None and actual != home:
                problems.append(
                    f"VM {vm_name!r} is homed on {home!r} but resident "
                    f"on {actual!r}")

    def _check_capacity(self, cloud: "CloudController",
                        problems: List[str]) -> None:
        """vCPU and memory accounting: non-negative, within capacity."""
        for name, node in cloud.nodes.items():
            used_vcpus = node.used_vcpus()
            if used_vcpus < 0:
                problems.append(
                    f"node {name!r} has negative vCPU usage {used_vcpus}")
            if used_vcpus > node.total_vcpus:
                problems.append(
                    f"node {name!r} uses {used_vcpus} vCPUs of "
                    f"{node.total_vcpus}")
            used_mb = node.used_memory_mb()
            total_mb = node.total_memory_mb()
            if used_mb < -1e-6:
                problems.append(
                    f"node {name!r} has negative memory usage "
                    f"{used_mb:.1f} MB")
            if used_mb > total_mb + 1e-6:
                problems.append(
                    f"node {name!r} uses {used_mb:.1f} MB of "
                    f"{total_mb:.1f} MB")

    def _check_monotonicity(self, cloud: "CloudController",
                            problems: List[str]) -> None:
        """Clock and accumulated energy never run backwards."""
        now = cloud.clock.now
        if self._last_now is not None and now < self._last_now - 1e-9:
            problems.append(
                f"clock ran backwards: {self._last_now} -> {now}")
        self._last_now = now
        energy = cloud.stats.energy_j
        if self._last_energy is not None \
                and energy < self._last_energy - 1e-6:
            problems.append(
                f"energy decreased: {self._last_energy} -> {energy}")
        self._last_energy = energy

    def _check_breakers(self, cloud: "CloudController",
                        problems: List[str]) -> None:
        """Quarantine implies an enabled breaker; a quarantined node is
        never simultaneously on post-recovery probation."""
        for view in cloud.health.views():
            breaker = cloud._breakers[view.name]
            if view.state is NodeStatus.QUARANTINED:
                if not breaker.enabled:
                    problems.append(
                        f"node {view.name!r} is quarantined but its "
                        "breaker is disabled")
                if view.name in cloud._probation_until:
                    problems.append(
                        f"node {view.name!r} is quarantined while on "
                        "probation")
            if breaker.consecutive_failures < 0:
                problems.append(
                    f"breaker of {view.name!r} has negative failure "
                    f"count {breaker.consecutive_failures}")

    def _check_sla(self, cloud: "CloudController",
                   problems: List[str]) -> None:
        """SLA uptime/downtime clocks are non-negative."""
        for vm_name in cloud.tracker.tracked_vms():
            record = cloud.tracker.record(vm_name)
            if record.uptime_s < 0 or record.downtime_s < 0:
                problems.append(
                    f"VM {vm_name!r} has negative SLA time "
                    f"(up {record.uptime_s}, down {record.downtime_s})")
            if record.violations < 0:
                problems.append(
                    f"VM {vm_name!r} has negative violation count")

    # -- entry point -----------------------------------------------------------

    def audit(self, cloud: "CloudController",
              context: str = "") -> List[str]:
        """Run the full invariant battery against one controller.

        Returns the violations found this pass (strict mode raises on
        any instead).
        """
        problems: List[str] = []
        self._check_vm_conservation(cloud, problems)
        self._check_capacity(cloud, problems)
        self._check_monotonicity(cloud, problems)
        self._check_breakers(cloud, problems)
        self._check_sla(cloud, problems)
        self.metrics.inc("persistence.auditor.passes")
        if problems:
            where = f" [{context}]" if context else ""
            for problem in problems:
                logger.warning("invariant violation%s: %s", where, problem)
                self.metrics.inc("persistence.auditor.violations")
            self.violations.extend(problems)
            if self.strict:
                raise InvariantViolation(
                    f"{len(problems)} invariant violation(s){where}: "
                    + "; ".join(problems))
        return problems
