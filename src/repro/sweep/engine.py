"""Process-pool parallel campaign sweeps over seeds and config grids.

The paper's headline evidence is statistical — population studies over
many chips, seeds and operating points (Section 3) — yet a single
campaign is one seed in one process.  This module fans one experiment
out over a *seed list* crossed with a *config grid* (chaos A/B arms,
``nodes``/``rate``/``intensity`` axes), exploiting two guarantees the
stack already provides:

* **determinism** — every campaign is a pure function of its
  :class:`~repro.persistence.campaign.CampaignConfig` (the rack, the
  arrival trace and the fault plan all derive from the seed), so a
  sweep's outcome is independent of worker scheduling; and
* **canonical reports** — results reduce to plain dicts whose
  canonical-JSON form is byte-stable, so ``--jobs 1`` and ``--jobs N``
  sweeps produce *byte-identical* aggregate reports (the regression the
  scaling bench enforces).

Workers are shared-nothing subprocesses: each receives one picklable
:class:`SweepTask`, rebuilds the campaign world from config, and sends
back one picklable :class:`SweepRow` (the ``experiment`` drill-down
handle is stripped from :class:`~repro.resilience.campaign.CampaignResult`
before it crosses the process boundary).  The parent retries crashed
workers a bounded number of times and records permanent failures as
rows rather than aborting the sweep.

On platforms with ``fork`` the workers inherit the parent's interpreter
configuration, so jobs-1 and jobs-N sweeps agree byte-for-byte within
any single parent process.  Comparing reports *across* parent processes
additionally needs ``PYTHONHASHSEED`` pinned (the VM application-trace
seeds hash VM names), exactly as the kill/resume bench already does.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from dataclasses import asdict, dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from ..core.exceptions import ConfigurationError
from ..persistence.campaign import CampaignConfig

#: CLI-friendly grid axis name -> (CampaignConfig field, coercion).
GRID_AXES: Dict[str, Tuple[str, Callable]] = {
    "nodes": ("n_nodes", int),
    "duration": ("duration_s", float),
    "rate": ("rate_per_hour", float),
    "intensity": ("intensity", float),
    "base_rate": ("base_rate_per_hour", float),
    "step": ("step_s", float),
    "policies": ("policies", str),
}

#: Axes that shape the drawn fault plan; they cannot vary when the
#: sweep replays one explicit plan across its points.
_PLAN_SHAPING_AXES = ("nodes", "duration", "rate", "intensity")


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a campaign config plus its identity."""

    index: int
    point: str
    seed: int
    config: CampaignConfig
    snapshot_dir: Optional[str] = None
    #: Harvest ledger-labelled prediction observations in the worker
    #: (the experiment handle never crosses the process boundary, so
    #: harvesting must happen where the world still exists).
    harvest: bool = False


@dataclass
class SweepRow:
    """One picklable sweep outcome (a campaign without its world).

    ``result`` holds the plain-dict form of
    :class:`~repro.resilience.campaign.CampaignResult` minus the
    unpicklable ``experiment`` handle; ``metrics_sha256`` digests the
    full cross-layer metrics snapshot the worker saw, so sweep-level
    determinism checks cover every layer, not just the headline numbers.
    """

    index: int
    point: str
    seed: int
    ok: bool
    attempts: int = 1
    error: Optional[str] = None
    metrics_sha256: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    #: Ledger-labelled prediction observations (only when the task was
    #: expanded with ``harvest=True``); reported through the separate
    #: harvest report, never the aggregate sweep report.
    harvest: Optional[List[Dict[str, object]]] = None

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for the aggregate report.

        The harvest payload is excluded: a sweep must produce the same
        aggregate report bytes with and without the harvest hook.
        """
        state = asdict(self)
        state.pop("harvest", None)
        return state


@dataclass
class SweepSpec:
    """One experiment fanned over seeds and a config grid.

    ``grid`` maps axis names (see :data:`GRID_AXES`) to value lists;
    the sweep runs every grid point for every seed.  ``plan`` replays
    one explicit serialized fault plan at every point (the A/B use
    case); without it, each task draws its plan from its own seed —
    note two arms differing only in ``policies`` draw the *same* plan
    for the same seed, because the draw does not depend on the arm.
    """

    seeds: Tuple[int, ...] = (0,)
    n_nodes: int = 4
    duration_s: float = 3600.0
    policies: str = "on"
    rate_per_hour: float = 6.0
    intensity: float = 0.6
    base_rate_per_hour: float = 12.0
    step_s: float = 60.0
    grid: Dict[str, List[object]] = field(default_factory=dict)
    plan: Optional[Dict[str, object]] = None
    #: Per-task crash-safe snapshot directories are created under here.
    snapshot_root: Optional[str] = None
    #: Attach ledger-labelled prediction observations to every row
    #: (``repro sweep --harvest-labels``).  Excluded from
    #: :meth:`as_dict` so the aggregate report is harvest-independent.
    harvest: bool = False

    def __post_init__(self) -> None:
        self.seeds = tuple(int(s) for s in self.seeds)
        if not self.seeds:
            raise ConfigurationError("a sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("sweep seeds must be unique")
        for axis, values in self.grid.items():
            if axis not in GRID_AXES:
                raise ConfigurationError(
                    f"unknown grid axis {axis!r}; known axes: "
                    f"{', '.join(sorted(GRID_AXES))}")
            if not values:
                raise ConfigurationError(f"grid axis {axis!r} is empty")
        if self.plan is not None:
            fixed = [a for a in self.grid if a in _PLAN_SHAPING_AXES]
            if fixed:
                raise ConfigurationError(
                    "an explicit plan fixes the fault schedule; axes "
                    f"{fixed} would redraw it — drop them or the plan")

    def as_dict(self) -> Dict[str, object]:
        """Job-count-independent spec record for the aggregate report.

        ``snapshot_root`` is deliberately excluded: it is a host-local
        path, and reports from equivalent sweeps must stay
        byte-identical wherever their snapshots land.
        """
        return {
            "seeds": list(self.seeds),
            "n_nodes": self.n_nodes,
            "duration_s": self.duration_s,
            "policies": self.policies,
            "rate_per_hour": self.rate_per_hour,
            "intensity": self.intensity,
            "base_rate_per_hour": self.base_rate_per_hour,
            "step_s": self.step_s,
            "grid": {axis: list(values)
                     for axis, values in self.grid.items()},
            "plan": self.plan,
        }

    def points(self) -> List[Tuple[str, Dict[str, object]]]:
        """The expanded grid: (label, config overrides) per point."""
        combos: List[List[Tuple[str, object]]] = [[]]
        for axis, values in self.grid.items():
            combos = [combo + [(axis, value)]
                      for combo in combos for value in values]
        expanded = []
        for combo in combos:
            label = "/".join(f"{axis}={value}" for axis, value in combo) \
                or "base"
            overrides = {
                GRID_AXES[axis][0]: GRID_AXES[axis][1](value)
                for axis, value in combo
            }
            expanded.append((label, overrides))
        return expanded

    def expand(self) -> List[SweepTask]:
        """Every task of the sweep, in deterministic order."""
        tasks: List[SweepTask] = []
        for label, overrides in self.points():
            base = {
                "n_nodes": self.n_nodes,
                "duration_s": self.duration_s,
                "policies": self.policies,
                "rate_per_hour": self.rate_per_hour,
                "intensity": self.intensity,
                "base_rate_per_hour": self.base_rate_per_hour,
                "step_s": self.step_s,
                "plan": self.plan,
            }
            base.update(overrides)
            for seed in self.seeds:
                index = len(tasks)
                snapshot_dir = None
                if self.snapshot_root is not None:
                    snapshot_dir = os.path.join(
                        self.snapshot_root, f"task-{index:04d}")
                tasks.append(SweepTask(
                    index=index, point=label, seed=seed,
                    config=CampaignConfig(seed=seed, label=label, **base),
                    snapshot_dir=snapshot_dir,
                    harvest=self.harvest))
        return tasks


@dataclass
class SweepResult:
    """Every row of one sweep, in task order."""

    spec: SweepSpec
    rows: List[SweepRow]

    @property
    def failures(self) -> List[SweepRow]:
        """Rows whose task failed permanently (after retries)."""
        return [row for row in self.rows if not row.ok]


def campaign_result_from_row(row: SweepRow):
    """Rebuild a :class:`CampaignResult` from a worker's row.

    The ``experiment`` drill-down handle stayed behind in the worker
    process, so it is ``None`` on the rebuilt result.
    """
    from ..resilience.campaign import CampaignResult

    if not row.ok or row.result is None:
        raise ConfigurationError(
            f"row {row.index} ({row.point} seed={row.seed}) carries no "
            f"result: {row.error}")
    return CampaignResult(**row.result)


def run_sweep_task(task: SweepTask) -> SweepRow:
    """Execute one campaign point in the current (worker) process.

    Exceptions become ``ok=False`` rows rather than propagating — the
    parent decides whether to retry.  With a ``snapshot_dir`` the task
    runs through the crash-safe :class:`PersistentCampaign` runtime
    (proven bit-equivalent to the direct path by the kill/resume
    bench); otherwise it runs the direct in-memory campaign.
    """
    from ..persistence import payload_checksum, run_persistent_campaign
    from ..resilience.campaign import run_chaos_campaign
    from ..resilience.chaos import FaultPlan
    from ..resilience.policies import DegradationConfig

    config = task.config.finalized()
    try:
        if task.snapshot_dir is not None:
            result = run_persistent_campaign(
                config, snapshot_dir=task.snapshot_dir)
        else:
            degradation = (DegradationConfig.on()
                           if config.policies == "on"
                           else DegradationConfig.off())
            result = run_chaos_campaign(
                n_nodes=config.n_nodes, duration_s=config.duration_s,
                seed=config.seed,
                plan=FaultPlan.from_dict(config.plan),  # type: ignore[arg-type]
                degradation=degradation,
                base_rate_per_hour=config.base_rate_per_hour,
                step_s=config.step_s, label=config.label)
    except Exception as exc:  # noqa: BLE001 — crossing a process boundary
        return SweepRow(index=task.index, point=task.point,
                        seed=task.seed, ok=False,
                        error=f"{type(exc).__name__}: {exc}")
    metrics_sha = payload_checksum(
        result.experiment.cloud.metrics_snapshot())
    harvest = None
    if task.harvest:
        from .harvest import harvest_observations
        harvest = harvest_observations(result.experiment)
    payload = asdict(replace(result, experiment=None))
    payload.pop("experiment", None)
    return SweepRow(index=task.index, point=task.point, seed=task.seed,
                    ok=True, metrics_sha256=metrics_sha, result=payload,
                    harvest=harvest)


def _worker_main(worker: Callable[[SweepTask], SweepRow],
                 task: SweepTask, conn) -> None:
    """Subprocess entry: run one task, ship the row back, exit."""
    row = worker(task)
    conn.send(row)
    conn.close()


def default_mp_context():
    """Prefer ``fork`` (workers inherit interpreter configuration, so
    jobs-1 and jobs-N agree byte-for-byte); fall back to ``spawn``.

    Shared by the sweep engine and the fleet campaign executor — any
    shared-nothing worker pool in the repo should start workers the
    same way for the same determinism argument.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


#: Backwards-compatible private alias.
_default_context = default_mp_context


def run_sweep(spec: SweepSpec, jobs: int = 1, max_retries: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              worker: Callable[[SweepTask], SweepRow] = run_sweep_task,
              mp_context=None) -> SweepResult:
    """Run every task of ``spec`` across ``jobs`` worker subprocesses.

    All tasks — even at ``jobs=1`` — run in worker subprocesses, so the
    serial and parallel paths are numerically the same code.  A worker
    that crashes (dies without shipping a row) or ships an ``ok=False``
    row is retried up to ``max_retries`` times; a task still failing
    after that is recorded as a failure row and the sweep continues.

    Rows come back in task order regardless of completion order, which
    is what makes the aggregate report independent of ``jobs``.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if max_retries < 0:
        raise ConfigurationError("max_retries must be >= 0")
    tasks = spec.expand()
    ctx = mp_context if mp_context is not None else _default_context()

    pending = deque(tasks)
    attempts: Dict[int, int] = {task.index: 0 for task in tasks}
    rows: Dict[int, SweepRow] = {}
    running: Dict[int, Tuple[object, object, SweepTask]] = {}
    total = len(tasks)

    def _note(line: str) -> None:
        if progress is not None:
            progress(line)

    def _launch(task: SweepTask) -> None:
        receiver, sender = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_worker_main,
                              args=(worker, task, sender), daemon=True)
        attempts[task.index] += 1
        process.start()
        sender.close()
        running[task.index] = (process, receiver, task)

    while pending or running:
        while pending and len(running) < jobs:
            _launch(pending.popleft())
        _connection_wait([conn for _, conn, _ in running.values()],
                         timeout=0.25)
        for index, (process, conn, task) in list(running.items()):
            row: Optional[SweepRow] = None
            if conn.poll():
                try:
                    row = conn.recv()
                except (EOFError, OSError):
                    row = None
            elif process.is_alive():
                continue
            process.join()
            conn.close()
            del running[index]
            if row is not None and row.ok:
                row.attempts = attempts[index]
                rows[index] = row
                availability = (row.result or {}).get(
                    "fleet_availability")
                _note(f"[{len(rows)}/{total}] {task.point} "
                      f"seed={task.seed} ok "
                      f"availability={availability:.4f} "
                      f"(attempt {row.attempts})")
                continue
            error = (row.error if row is not None else
                     f"worker crashed (exit code {process.exitcode})")
            if attempts[index] <= max_retries:
                _note(f"[retry {attempts[index]}/{max_retries + 1}] "
                      f"{task.point} seed={task.seed}: {error}")
                pending.append(task)
            else:
                rows[index] = SweepRow(
                    index=index, point=task.point, seed=task.seed,
                    ok=False, attempts=attempts[index], error=error)
                _note(f"[{len(rows)}/{total}] {task.point} "
                      f"seed={task.seed} FAILED after "
                      f"{attempts[index]} attempts: {error}")
    return SweepResult(spec=spec,
                       rows=[rows[task.index] for task in tasks])
