"""Canonical aggregate reports for sweep results.

The report is the sweep's contract surface: rows in task order, plus
per-grid-point summary statistics over seeds (reusing the
bounded-memory :class:`~repro.core.runtime.HistogramStats` moments).
Serialized through :func:`~repro.persistence.snapshot.canonical_json`,
two equivalent sweeps — whatever their ``--jobs`` — produce
byte-identical report files; :func:`report_digest` is the sha256 the CI
smoke compares.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.runtime import HistogramStats
from ..persistence import canonical_json, payload_checksum
from .engine import SweepResult, SweepRow

#: CampaignResult fields summarized per grid point.  ``mttr_s`` may be
#: None for a given row (no outage); such rows are skipped for that
#: metric only, and the histogram count says how many contributed.
SUMMARY_METRICS = (
    "fleet_availability",
    "mttr_s",
    "sla_violations",
    "evacuation_success_rate",
    "node_crashes",
    "recoveries",
    "failovers",
    "breaker_trips",
    "flaps",
    "heartbeats_missed",
    "admitted",
    "rejected",
    "completed",
    "plan_faults",
)


def summarize(rows: List[SweepRow]) -> Dict[str, Dict[str, Dict]]:
    """Per-point, per-metric summary stats over the successful rows."""
    groups: Dict[str, Dict[str, HistogramStats]] = {}
    for row in rows:
        if not row.ok or row.result is None:
            continue
        table = groups.setdefault(row.point, {})
        for metric in SUMMARY_METRICS:
            value = row.result.get(metric)
            if value is None:
                continue
            table.setdefault(metric, HistogramStats()).observe(
                float(value))
    return {
        point: {metric: stats.as_dict()
                for metric, stats in sorted(table.items())}
        for point, table in sorted(groups.items())
    }


def sweep_report(result: SweepResult) -> Dict[str, object]:
    """The aggregate report payload (canonical-JSON serializable)."""
    return {
        "sweep": result.spec.as_dict(),
        "rows": [row.as_dict() for row in result.rows],
        "summary": summarize(result.rows),
        "failures": [
            {"index": row.index, "point": row.point, "seed": row.seed,
             "attempts": row.attempts, "error": row.error}
            for row in result.failures
        ],
    }


def report_digest(report: Dict[str, object]) -> str:
    """SHA-256 over the canonical-JSON form of a report."""
    return payload_checksum(report)


def write_report(path, report: Dict[str, object]) -> None:
    """Write a report as canonical JSON (newline-terminated)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(report))
        handle.write("\n")
