"""Harvesting labelled prediction observations from sweep campaigns.

The sweep engine is the prediction stack's data factory: every campaign
runs a full seeded world whose ground-truth fault ledger records exactly
when each node crashed.  This module walks a finished campaign and turns
each node's retained telemetry samples into *labelled observations* —
one :data:`~repro.cloudmgr.failure_prediction.HARVEST_FEATURES` row per
sample, labelled per horizon with "did this node crash within the
horizon after the sample?", keyed back to the ledger so the labels are
ground truth, not belief.

Harvesting runs inside the sweep worker (``SweepTask.harvest=True``),
because the experiment world never crosses the process boundary; rows
return in task order, so the aggregate harvest report is byte-identical
between ``--jobs 1`` and ``--jobs N`` like every other sweep artifact.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional

from ..cloudmgr.failure_prediction import (
    HARVEST_FEATURES,
    HORIZONS,
    sample_features,
)
from ..hardware.faults import FaultClass

#: Harvest payload format version (bump on shape changes).
HARVEST_VERSION = 1

#: Domain-attributed fault classes that label DRAM-domain observations.
_DOMAIN_FAULTS = (FaultClass.UNCORRECTABLE,
                  FaultClass.SILENT_DATA_CORRUPTION)


def harvest_observations(experiment) -> List[Dict[str, object]]:
    """Ledger-labelled observations from one finished rack experiment.

    ``experiment`` is a
    :class:`~repro.cloudmgr.simulation.RackExperiment`.  Returns one
    record per retained node-telemetry sample, node-name then timestamp
    ordered, each carrying the feature row, per-horizon node labels,
    the lead time to the next crash (None if the node never crashed
    after the sample) and per-DRAM-domain horizon labels.

    Labels whose horizon window runs past the end of the campaign are
    *censored* (``None``) unless a crash was observed inside the
    truncated window: "no crash within 4 h" is unknowable from the last
    4 h of a shorter campaign, and treating those rows as negatives
    teaches the long-horizon models that late-campaign worlds are safe.
    Training and scoring both skip ``None`` labels.
    """
    observations: List[Dict[str, object]] = []
    cloud = experiment.cloud
    end_s = cloud.clock.now
    for name in sorted(cloud.nodes):
        node = cloud.nodes[name]
        ledger = node.platform.faults
        crash_times = sorted(
            r.timestamp for r in ledger.records
            if r.fault_class is FaultClass.CRASH)
        domain_names = sorted(d.name for d in node.platform.memory.domains())
        domain_fault_times = {
            domain: sorted(
                r.timestamp for r in ledger.records
                if r.fault_class in _DOMAIN_FAULTS
                and r.component == domain)
            for domain in domain_names
        }

        def crashes_within(times: List[float], t: float,
                           horizon_s: float) -> Optional[bool]:
            lo = bisect_right(times, t)
            hi = bisect_right(times, t + horizon_s)
            if hi > lo:
                return True
            # No crash seen, but the window is cut short by campaign
            # end: the true label is unknowable — censor it.
            if t + horizon_s > end_s:
                return None
            return False

        for sample in node.local_telemetry.node_history(name):
            t = sample.timestamp
            nxt = bisect_right(crash_times, t)
            lead_s: Optional[float] = (
                crash_times[nxt] - t if nxt < len(crash_times) else None)
            observations.append({
                "node": name,
                "timestamp": t,
                "features": [float(x) for x in sample_features(sample)],
                "labels": {
                    horizon: crashes_within(crash_times, t, horizon_s)
                    for horizon, horizon_s in HORIZONS
                },
                "lead_s": lead_s,
                "domains": {
                    domain: {
                        horizon: crashes_within(
                            domain_fault_times[domain], t, horizon_s)
                        for horizon, horizon_s in HORIZONS
                    }
                    for domain in domain_names
                },
            })
    return observations


def harvest_report(result) -> Dict[str, object]:
    """The aggregate harvest payload over a whole sweep.

    ``result`` is a :class:`~repro.sweep.engine.SweepResult` whose rows
    were produced with ``harvest=True``.  Observations are flattened in
    task order with their grid point and seed attached, so the payload
    — like the main sweep report — is independent of ``--jobs``.
    """
    observations: List[Dict[str, object]] = []
    for row in result.rows:
        if not row.ok or not row.harvest:
            continue
        for obs in row.harvest:
            tagged = {"point": row.point, "seed": row.seed}
            tagged.update(obs)
            observations.append(tagged)
    return {
        "version": HARVEST_VERSION,
        "sweep": result.spec.as_dict(),
        "horizons": {name: h_s for name, h_s in HORIZONS},
        "features": list(HARVEST_FEATURES),
        "n_observations": len(observations),
        "observations": observations,
    }
