"""Parallel multi-seed campaign sweeps.

Fans one experiment out over seeds and config grids across
shared-nothing worker subprocesses, with bounded crash retries and a
canonical-JSON aggregate report that is byte-identical between
``--jobs 1`` and ``--jobs N``.  See ``docs/sweep.md``.
"""

from .engine import (
    GRID_AXES,
    SweepResult,
    SweepRow,
    SweepSpec,
    SweepTask,
    campaign_result_from_row,
    default_mp_context,
    run_sweep,
    run_sweep_task,
)
from .harvest import (
    HARVEST_VERSION,
    harvest_observations,
    harvest_report,
)
from .report import (
    SUMMARY_METRICS,
    report_digest,
    summarize,
    sweep_report,
    write_report,
)

__all__ = [
    "GRID_AXES",
    "HARVEST_VERSION",
    "SUMMARY_METRICS",
    "SweepResult",
    "SweepRow",
    "SweepSpec",
    "SweepTask",
    "campaign_result_from_row",
    "default_mp_context",
    "harvest_observations",
    "harvest_report",
    "report_digest",
    "run_sweep",
    "run_sweep_task",
    "summarize",
    "sweep_report",
    "write_report",
]
