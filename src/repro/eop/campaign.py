"""Error-injecting EOP campaigns: the governor's proving ground.

A campaign runs one fully characterised node under a chosen
:class:`~repro.eop.policy.EOPPolicy` while a deterministic error
injector feeds correctable errors into named components through the
event bus (so the HealthLog ledger — the governor's evidence — sees
them exactly as it would see organic hardware errors).  The reduction
answers the tentpole questions: did the governor demote every breaching
component, how fast, and how much of the clean-run energy saving
survived the rollbacks.

Everything derives from one seed and the injections are cumulative-count
deterministic, so same-seed campaigns replay bit-for-bit; a mid-campaign
snapshot can be resumed and must land on the same final state table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ConfigurationError

#: Fixed workload horizon: long enough that no campaign VM completes.
_VM_DURATION_CYCLES = 1e12


@dataclass(frozen=True)
class ErrorInjection:
    """A deterministic correctable-error storm against one component.

    Errors are spread evenly over the window at ``rate_per_s``; the
    count emitted by any step is the difference of cumulative counts at
    its endpoints, so the storm is independent of step size.
    """

    component: str
    start_s: float
    duration_s: float
    rate_per_s: float

    def __post_init__(self) -> None:
        if not self.component:
            raise ConfigurationError("injection component must be non-empty")
        if self.start_s < 0 or self.duration_s <= 0 or self.rate_per_s <= 0:
            raise ConfigurationError(
                "injection needs start >= 0, duration > 0 and rate > 0")

    def errors_before(self, t: float) -> int:
        """Cumulative errors injected strictly before time ``t``."""
        elapsed = min(max(0.0, t - self.start_s), self.duration_s)
        return int(math.floor(self.rate_per_s * elapsed + 1e-9))

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {
            "component": self.component,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "rate_per_s": self.rate_per_s,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "ErrorInjection":
        """Inverse of :meth:`as_dict`."""
        return cls(
            component=str(state["component"]),
            start_s=float(state["start_s"]),  # type: ignore[arg-type]
            duration_s=float(state["duration_s"]),  # type: ignore[arg-type]
            rate_per_s=float(state["rate_per_s"]),  # type: ignore[arg-type]
        )

    @classmethod
    def parse(cls, spec: str) -> "ErrorInjection":
        """Parse the CLI form ``COMPONENT:START:DURATION:RATE``."""
        parts = spec.split(":")
        if len(parts) != 4:
            raise ConfigurationError(
                f"injection spec {spec!r} is not COMPONENT:START:DURATION:RATE")
        try:
            return cls(component=parts[0], start_s=float(parts[1]),
                       duration_s=float(parts[2]), rate_per_s=float(parts[3]))
        except ValueError:
            raise ConfigurationError(
                f"injection spec {spec!r} has non-numeric fields") from None


@dataclass(frozen=True)
class EOPCampaignConfig:
    """One error-injecting campaign, fully specified."""

    duration_s: float = 1800.0
    step_s: float = 30.0
    seed: int = 0
    policy: str = "adopt-within-budget"
    n_vms: int = 4
    #: Optional knob overrides on the named policy.
    error_budget: Optional[int] = None
    probation_s: Optional[float] = None
    error_window_s: Optional[float] = None
    injections: Tuple[ErrorInjection, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.step_s <= 0:
            raise ConfigurationError("duration and step must be positive")
        if self.n_vms < 1:
            raise ConfigurationError("campaign needs at least one VM")

    def build_policy(self):
        """The named policy with any knob overrides applied."""
        from .policy import EOPPolicy

        policy = EOPPolicy.from_name(self.policy)
        overrides: Dict[str, object] = {}
        if self.error_budget is not None:
            overrides["error_budget"] = self.error_budget
        if self.probation_s is not None:
            overrides["probation_s"] = self.probation_s
        if self.error_window_s is not None:
            overrides["error_window_s"] = self.error_window_s
        return policy.with_overrides(**overrides) if overrides else policy

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {
            "duration_s": self.duration_s,
            "step_s": self.step_s,
            "seed": self.seed,
            "policy": self.policy,
            "n_vms": self.n_vms,
            "error_budget": self.error_budget,
            "probation_s": self.probation_s,
            "error_window_s": self.error_window_s,
            "injections": [inj.as_dict() for inj in self.injections],
        }


@dataclass
class EOPCampaignResult:
    """One campaign, reduced to the governor's headline numbers."""

    label: str
    duration_s: float
    seed: int
    #: Lifetime transition counters (survive snapshot-resume with the
    #: metrics registry).
    adopted: int
    demotions: int
    promotions: int
    quarantines: int
    #: Seconds from each injection's start to the component's first
    #: demotion, for demotions observed in this process (a resumed run
    #: only sees post-snapshot transitions).
    demotion_delay_s: Dict[str, float]
    energy_saving_fraction: float
    state_counts: Dict[str, int]
    state_table: List[Dict[str, object]]
    transitions: List[Dict[str, object]] = field(default_factory=list)
    #: Mid-campaign snapshot when one was requested (excluded from
    #: reports and comparisons).
    snapshot: Optional[Dict[str, object]] = field(
        default=None, repr=False, compare=False)

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        delays = ", ".join(
            f"{component}:{delay:.0f}s"
            for component, delay in sorted(self.demotion_delay_s.items()))
        return "\n".join([
            f"{self.label}: {self.duration_s:.0f}s, seed {self.seed}",
            f"  adopted={self.adopted} demotions={self.demotions} "
            f"promotions={self.promotions} quarantines={self.quarantines}",
            f"  energy_saving={self.energy_saving_fraction:.4f} "
            f"states={self.state_counts}",
            f"  demotion_delays=[{delays}]" if delays
            else "  demotion_delays=[]",
        ])

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form (snapshot handle excluded)."""
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "adopted": self.adopted,
            "demotions": self.demotions,
            "promotions": self.promotions,
            "quarantines": self.quarantines,
            "demotion_delay_s": dict(sorted(self.demotion_delay_s.items())),
            "energy_saving_fraction": self.energy_saving_fraction,
            "state_counts": self.state_counts,
            "state_table": self.state_table,
            "transitions": self.transitions,
        }


def _build_node(config: EOPCampaignConfig):
    """The campaign's node plus its VM fleet (built, not yet launched)."""
    from ..cloudmgr.node import ComputeNode
    from ..core.clock import SimClock
    from ..core.runtime import NodeRuntime
    from ..hypervisor.vm import make_vm_fleet
    from ..workloads.spec import spec_workload

    clock = SimClock()
    runtime = NodeRuntime(name="eopnode0", clock=clock, seed=config.seed)
    node = ComputeNode("eopnode0", runtime=runtime, characterize=True,
                       eop_policy=config.build_policy())
    fleet = make_vm_fleet(
        spec_workload("hmmer", duration_cycles=_VM_DURATION_CYCLES),
        config.n_vms)
    return clock, node, fleet


def _run_steps(config: EOPCampaignConfig, clock, node,
               start_step: int,
               snapshot_at_s: Optional[float]) -> Tuple[
                   List[Dict[str, object]], Optional[Dict[str, object]]]:
    """Drive the campaign loop; returns (transitions, snapshot)."""
    from ..core.clock import step_count
    from ..core.events import CorrectableErrorEvent, EOPTransitionEvent

    transitions: List[Dict[str, object]] = []

    def _on_transition(event: EOPTransitionEvent) -> None:
        transitions.append({
            "timestamp": event.timestamp,
            "component": event.component,
            "from_state": event.from_state,
            "to_state": event.to_state,
            "reason": event.reason,
        })

    unsubscribe = node.bus.subscribe(EOPTransitionEvent, _on_transition)
    snapshot: Optional[Dict[str, object]] = None
    snapshot_step = (None if snapshot_at_s is None
                     else max(1, step_count(snapshot_at_s, config.step_s)))
    n_steps = step_count(config.duration_s, config.step_s)
    try:
        for index in range(start_step, n_steps):
            now = clock.now
            for injection in config.injections:
                burst = (injection.errors_before(now + config.step_s)
                         - injection.errors_before(now))
                for _ in range(burst):
                    node.bus.publish(CorrectableErrorEvent(
                        timestamp=now, source="eop-injector",
                        component=injection.component,
                        detail="injected error storm"))
            node.step(config.step_s)
            clock.advance_by(config.step_s)
            if snapshot_step is not None and index + 1 == snapshot_step:
                snapshot = {
                    "step_index": index + 1,
                    "clock": clock.state_dict(),
                    "node": node.state_dict(),
                }
    finally:
        unsubscribe()
    return transitions, snapshot


def _reduce(config: EOPCampaignConfig, node,
            transitions: List[Dict[str, object]],
            snapshot: Optional[Dict[str, object]]) -> EOPCampaignResult:
    """Fold the run down to the headline numbers."""
    counter = node.runtime.metrics.counter
    demotion_delay: Dict[str, float] = {}
    starts = {inj.component: inj.start_s for inj in config.injections}
    for transition in transitions:
        component = str(transition["component"])
        if transition["to_state"] not in ("demoted", "quarantined"):
            continue
        if component in starts and component not in demotion_delay:
            demotion_delay[component] = (
                float(transition["timestamp"]) - starts[component])  # type: ignore[arg-type]
    return EOPCampaignResult(
        label=config.policy,
        duration_s=config.duration_s,
        seed=config.seed,
        adopted=int(counter("eop.adopted")),
        demotions=int(counter("eop.demoted")),
        promotions=int(counter("eop.promoted")),
        quarantines=int(counter("eop.quarantined")),
        demotion_delay_s=demotion_delay,
        energy_saving_fraction=node.node.energy_report().saving_fraction,
        state_counts=node.governor.counts(),
        state_table=node.governor.state_table(),
        transitions=transitions,
        snapshot=snapshot,
    )


def run_eop_campaign(config: EOPCampaignConfig,
                     snapshot_at_s: Optional[float] = None
                     ) -> EOPCampaignResult:
    """One seeded error-injecting campaign on a characterised node.

    With ``snapshot_at_s`` the node's full state is captured after the
    covering step and returned on ``result.snapshot`` for
    :func:`resume_eop_campaign`.
    """
    clock, node, fleet = _build_node(config)
    for vm in fleet:
        node.node.launch_vm(vm)
    transitions, snapshot = _run_steps(
        config, clock, node, start_step=0, snapshot_at_s=snapshot_at_s)
    return _reduce(config, node, transitions, snapshot)


def resume_eop_campaign(config: EOPCampaignConfig,
                        snapshot: Dict[str, object]) -> EOPCampaignResult:
    """Continue a campaign from a mid-run snapshot to its end.

    The node is rebuilt from the same config (the snapshot convention
    everywhere in this repo: rebuild the twin, then overlay state), the
    saved state loaded on top, and the remaining steps replayed.  A
    correct governor lands on the same final state table as the
    uninterrupted run.
    """
    from ..hypervisor.vm import make_vm_fleet
    from ..workloads.spec import spec_workload

    clock, node, fleet = _build_node(config)
    for vm in fleet:
        node.node.launch_vm(vm)
    shells = {
        vm.name: vm
        for vm in make_vm_fleet(
            spec_workload("hmmer", duration_cycles=_VM_DURATION_CYCLES),
            config.n_vms)
    }
    clock.load_state_dict(snapshot["clock"])  # type: ignore[arg-type]
    node.load_state_dict(snapshot["node"],  # type: ignore[arg-type]
                         vm_factory=lambda name: shells[name])
    transitions, _ = _run_steps(
        config, clock, node,
        start_step=int(snapshot["step_index"]),  # type: ignore[arg-type]
        snapshot_at_s=None)
    return _reduce(config, node, transitions, None)
