"""The EOP control plane: supervised, transactional margin adoption.

This package closes the paper's Fig. 2 feedback loop.  Margin vectors
out of the StressLog no longer mutate the platform irreversibly; the
per-node :class:`EOPGovernor` adopts them as transactions under a typed
:class:`EOPPolicy` and demotes components whose runtime error behaviour
breaches the budget.
"""

from .campaign import (
    EOPCampaignConfig,
    EOPCampaignResult,
    ErrorInjection,
    resume_eop_campaign,
    run_eop_campaign,
)
from .governor import ComponentRecord, EOPGovernor, EOPTransaction
from .policy import EOPPolicy, EOPState, TierStance

__all__ = [
    "ComponentRecord",
    "EOPCampaignConfig",
    "EOPCampaignResult",
    "EOPGovernor",
    "EOPPolicy",
    "EOPState",
    "EOPTransaction",
    "ErrorInjection",
    "resume_eop_campaign",
    "run_eop_campaign",
    "TierStance",
]
